"""Graphviz (DOT) rendering for machines, CFGs, and constraint graphs.

Debugging and documentation aid: every figure-like artifact in the
paper can be dumped as DOT text — the property automata (Figs 1, 3, 5,
10), program CFGs, and solved constraint graphs (Fig 12).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.cfg.graph import ProgramCFG
from repro.core.solver import Solver
from repro.dfa.automaton import DFA


def _quote(text: object) -> str:
    return '"' + str(text).replace("\\", "\\\\").replace('"', '\\"') + '"'


def dfa_to_dot(
    machine: DFA,
    state_names: Mapping[int, str] | None = None,
    title: str = "M",
) -> str:
    """DOT text for a property automaton (double circles accept)."""
    names = dict(state_names or {})
    lines = [f"digraph {_quote(title)} {{", "  rankdir=LR;"]
    lines.append('  __start [shape=point, label=""];')
    for state in range(machine.n_states):
        label = names.get(state, str(state))
        shape = "doublecircle" if state in machine.accepting else "circle"
        lines.append(f"  s{state} [label={_quote(label)}, shape={shape}];")
    lines.append(f"  __start -> s{machine.start};")
    # Merge parallel edges into one label per (src, dst).
    merged: dict[tuple[int, int], list[str]] = {}
    for (src, symbol), dst in sorted(machine.delta.items(), key=lambda kv: repr(kv)):
        if src == dst:
            continue  # self-loops are noise in property machines
        merged.setdefault((src, dst), []).append(str(symbol))
    for (src, dst), symbols in merged.items():
        label = ", ".join(symbols)
        lines.append(f"  s{src} -> s{dst} [label={_quote(label)}];")
    lines.append("}")
    return "\n".join(lines)


def cfg_to_dot(cfg: ProgramCFG, title: str = "CFG") -> str:
    """DOT text for an interprocedural CFG, clustered per function."""
    lines = [f"digraph {_quote(title)} {{", "  compound=true;"]
    for name, function in cfg.functions.items():
        lines.append(f"  subgraph cluster_{name} {{")
        lines.append(f"    label={_quote(name)};")
        for node in function.nodes:
            shape = {
                "entry": "invhouse",
                "exit": "house",
                "call": "box",
            }.get(node.kind, "ellipse")
            lines.append(
                f"    n{node.id} [label={_quote(node.describe())}, shape={shape}];"
            )
        lines.append("  }")
    for node in cfg.all_nodes():
        for succ in cfg.successors(node):
            lines.append(f"  n{node.id} -> n{succ.id};")
        if node.kind == "call":
            callee = cfg.functions[node.call.callee]
            lines.append(
                f"  n{node.id} -> n{callee.entry.id} [style=dashed, label=call];"
            )
            lines.append(
                f"  n{callee.exit.id} -> n{node.id} [style=dashed, label=ret];"
            )
    lines.append("}")
    return "\n".join(lines)


def constraint_graph_to_dot(solver: Solver, title: str = "constraints") -> str:
    """DOT text for a solved constraint graph (the Fig 12 style).

    Variables are ellipses; constructed lower/upper bounds are boxes;
    edges are labeled with their annotations (ε omitted).
    """
    lines = [f"digraph {_quote(title)} {{", "  rankdir=LR;"]
    seen_vars = sorted(solver.variables(), key=str)
    index = {var: i for i, var in enumerate(seen_vars)}
    for var, i in index.items():
        lines.append(f"  v{i} [label={_quote(var)}, shape=ellipse];")
    extra = 0
    for var, i in index.items():
        for dst, ann in solver.edges_from(var):
            label = "" if ann == solver.algebra.identity else str(ann)
            suffix = f" [label={_quote(label)}]" if label else ""
            lines.append(f"  v{i} -> v{index[dst]}{suffix};")
        for src, ann in solver.lower_bounds(var):
            node = f"b{extra}"
            extra += 1
            lines.append(f"  {node} [label={_quote(src)}, shape=box];")
            label = "" if ann == solver.algebra.identity else str(ann)
            suffix = f" [label={_quote(label)}]" if label else ""
            lines.append(f"  {node} -> v{i}{suffix};")
        for snk, ann in solver.upper_bounds(var):
            node = f"b{extra}"
            extra += 1
            lines.append(f"  {node} [label={_quote(snk)}, shape=box];")
            label = "" if ann == solver.algebra.identity else str(ann)
            suffix = f" [label={_quote(label)}]" if label else ""
            lines.append(f"  v{i} -> {node}{suffix};")
    lines.append("}")
    return "\n".join(lines)
