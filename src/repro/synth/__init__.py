"""Synthetic workload generation for the benchmarks.

* :mod:`repro.synth.programs` — C-like package generator standing in for
  the Table 1 benchmark suite (VixieCron/At/Sendmail/Apache; see
  DESIGN.md §5 for the substitution argument);
* :mod:`repro.synth.workloads` — random annotated constraint graphs for
  the Section 4/5 complexity experiments;
* :mod:`repro.synth.editstream` — per-function-deterministic editable
  packages and edit streams for the incremental re-solving experiments.
"""

from repro.synth.editstream import EditablePackage, EditStep, edit_stream
from repro.synth.programs import PackageSpec, TABLE1_PACKAGES, generate_package
from repro.synth.workloads import (
    cycle_chain,
    random_annotated_graph,
    random_constraint_system,
    solve_bidirectional,
)

__all__ = [
    "EditStep",
    "EditablePackage",
    "PackageSpec",
    "TABLE1_PACKAGES",
    "cycle_chain",
    "edit_stream",
    "generate_package",
    "random_annotated_graph",
    "random_constraint_system",
    "solve_bidirectional",
]
