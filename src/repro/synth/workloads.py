"""Random constraint workloads for the complexity experiments (§4, §5).

Two generators:

* :func:`random_annotated_graph` — an annotated variable/edge reachability
  instance over a given machine's alphabet, consumable both by the
  bidirectional solver (as var ⊆^σ var constraints) and by the
  forward/backward solvers — the instrument for measuring the
  ``|F_M^≡|`` vs ``|S|`` derived-annotation gap.
* :func:`random_constraint_system` — a full set-constraint system with
  constructors and projections, for cubic-scaling measurements of the
  bidirectional solver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.annotations import MonoidAlgebra
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable
from repro.dfa.automaton import DFA


@dataclass
class AnnotatedGraphWorkload:
    """Edges ``(src, dst, word)`` over variable indices, plus sources."""

    n_vars: int
    edges: list[tuple[int, int, tuple]]
    sources: list[int]
    sinks: list[int]


def random_annotated_graph(
    machine: DFA,
    n_vars: int,
    n_edges: int,
    seed: int = 0,
    n_sources: int = 1,
    n_sinks: int = 1,
    annotated_fraction: float = 0.5,
) -> AnnotatedGraphWorkload:
    """A random digraph with word-annotated edges.

    ``annotated_fraction`` of edges carry one random alphabet symbol;
    the rest are ε.  Sources and sinks are sampled distinct nodes.
    """
    rng = random.Random(seed)
    alphabet = sorted(machine.alphabet, key=repr)
    edges: list[tuple[int, int, tuple]] = []
    for _ in range(n_edges):
        src = rng.randrange(n_vars)
        dst = rng.randrange(n_vars)
        if alphabet and rng.random() < annotated_fraction:
            word: tuple = (rng.choice(alphabet),)
        else:
            word = ()
        edges.append((src, dst, word))
    nodes = list(range(n_vars))
    rng.shuffle(nodes)
    return AnnotatedGraphWorkload(
        n_vars=n_vars,
        edges=edges,
        sources=nodes[:n_sources],
        sinks=nodes[n_sources : n_sources + n_sinks],
    )


def solve_bidirectional(
    machine: DFA, workload: AnnotatedGraphWorkload, eager: bool = True
) -> Solver:
    """Load an annotated-graph workload into the bidirectional solver."""
    algebra = MonoidAlgebra(machine, eager=eager)
    solver = Solver(algebra)
    variables = [Variable(f"v{i}") for i in range(workload.n_vars)]
    for index in workload.sources:
        source = Constructor(f"src{index}", 0)()
        solver.add(source, variables[index])
    for src, dst, word in workload.edges:
        solver.add(variables[src], variables[dst], algebra.word(word))
    return solver


def random_constraint_system(
    machine: DFA,
    n_vars: int,
    n_constraints: int,
    seed: int = 0,
    max_arity: int = 2,
) -> Solver:
    """A random full constraint system (constructors, projections, edges).

    Roughly 60% variable-variable constraints (half annotated), 20%
    constructed lower bounds, 10% constructed upper bounds, and 10%
    projections, over a pool of constructors with arities up to
    ``max_arity``.
    """
    rng = random.Random(seed)
    algebra = MonoidAlgebra(machine)
    solver = Solver(algebra)
    alphabet = sorted(machine.alphabet, key=repr)
    variables = [Variable(f"v{i}") for i in range(n_vars)]
    constructors = [
        Constructor(f"c{arity}_{i}", arity)
        for arity in range(1, max_arity + 1)
        for i in range(3)
    ]
    constants = [Constructor(f"k{i}", 0)() for i in range(5)]

    def var() -> Variable:
        return variables[rng.randrange(n_vars)]

    for _ in range(n_constraints):
        roll = rng.random()
        if roll < 0.6:
            if alphabet and rng.random() < 0.5:
                annotation = algebra.symbol(rng.choice(alphabet))
            else:
                annotation = algebra.identity
            solver.add(var(), var(), annotation)
        elif roll < 0.8:
            ctor = rng.choice(constructors)
            args = tuple(var() for _ in range(ctor.arity))
            solver.add(Constructor(ctor.name, ctor.arity)(*args), var())
        elif roll < 0.9:
            solver.add(rng.choice(constants), var())
        else:
            ctor = rng.choice(constructors)
            index = rng.randrange(ctor.arity) + 1
            solver.add(ctor.proj(index, var()), var())
    return solver
