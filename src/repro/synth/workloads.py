"""Random constraint workloads for the complexity experiments (§4, §5).

Two generators:

* :func:`random_annotated_graph` — an annotated variable/edge reachability
  instance over a given machine's alphabet, consumable both by the
  bidirectional solver (as var ⊆^σ var constraints) and by the
  forward/backward solvers — the instrument for measuring the
  ``|F_M^≡|`` vs ``|S|`` derived-annotation gap.
* :func:`random_constraint_system` — a full set-constraint system with
  constructors and projections, for cubic-scaling measurements of the
  bidirectional solver.
* :func:`cycle_chain` — a chain of identity-edge rings (the shape CFG
  loops and mutual aliasing induce), the instrument for measuring
  online cycle elimination (see ``repro.core.cycles``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.annotations import MonoidAlgebra
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable
from repro.dfa.automaton import DFA


@dataclass
class AnnotatedGraphWorkload:
    """Edges ``(src, dst, word)`` over variable indices, plus sources."""

    n_vars: int
    edges: list[tuple[int, int, tuple]]
    sources: list[int]
    sinks: list[int]


def random_annotated_graph(
    machine: DFA,
    n_vars: int,
    n_edges: int,
    seed: int = 0,
    n_sources: int = 1,
    n_sinks: int = 1,
    annotated_fraction: float = 0.5,
) -> AnnotatedGraphWorkload:
    """A random digraph with word-annotated edges.

    ``annotated_fraction`` of edges carry one random alphabet symbol;
    the rest are ε.  Sources and sinks are sampled distinct nodes.
    """
    rng = random.Random(seed)
    alphabet = sorted(machine.alphabet, key=repr)
    edges: list[tuple[int, int, tuple]] = []
    for _ in range(n_edges):
        src = rng.randrange(n_vars)
        dst = rng.randrange(n_vars)
        if alphabet and rng.random() < annotated_fraction:
            word: tuple = (rng.choice(alphabet),)
        else:
            word = ()
        edges.append((src, dst, word))
    nodes = list(range(n_vars))
    rng.shuffle(nodes)
    return AnnotatedGraphWorkload(
        n_vars=n_vars,
        edges=edges,
        sources=nodes[:n_sources],
        sinks=nodes[n_sources : n_sources + n_sinks],
    )


def cycle_chain(
    machine: DFA,
    n_cycles: int,
    cycle_size: int,
    seed: int = 0,
    n_sources: int = 4,
    chords: int = 1,
) -> AnnotatedGraphWorkload:
    """A chain of identity-edge rings joined by annotated edges.

    Each segment is a ring of ``cycle_size`` variables connected by
    ε (identity) edges — the constraint shape CFG loops and cyclic
    aliasing produce — plus ``chords`` extra ε edges between random ring
    members.  One symbol-annotated edge links each ring to the next, so
    facts must traverse every segment.  Without cycle elimination every
    ring member separately accumulates (and re-propagates) every fact
    that enters the ring; with it each ring collapses to one variable.

    Ring edges are emitted in a seed-shuffled order so the online
    detector sees cycles closed at arbitrary points, as a real
    constraint stream would.
    """
    rng = random.Random(seed)
    alphabet = sorted(machine.alphabet, key=repr)
    edges: list[tuple[int, int, tuple]] = []
    n_vars = n_cycles * cycle_size
    for segment in range(n_cycles):
        base = segment * cycle_size
        ring: list[tuple[int, int, tuple]] = [
            (base + i, base + (i + 1) % cycle_size, ())
            for i in range(cycle_size)
        ]
        for _ in range(chords):
            a, b = rng.randrange(cycle_size), rng.randrange(cycle_size)
            if a != b:
                ring.append((base + a, base + b, ()))
        rng.shuffle(ring)
        edges.extend(ring)
        if segment + 1 < n_cycles:
            word: tuple = (rng.choice(alphabet),) if alphabet else ()
            edges.append(
                (base + rng.randrange(cycle_size), base + cycle_size, word)
            )
    # Distinct constants seeded across the first ring (the index names
    # the constant, so indices must differ to get separate sources).
    return AnnotatedGraphWorkload(
        n_vars=n_vars,
        edges=edges,
        sources=list(range(min(n_sources, cycle_size))),
        sinks=[n_vars - 1],
    )


def solve_bidirectional(
    machine: DFA,
    workload: AnnotatedGraphWorkload,
    eager: bool = True,
    cycle_elim: bool = True,
    track_redundant: bool = False,
) -> Solver:
    """Load an annotated-graph workload into the bidirectional solver."""
    algebra = MonoidAlgebra(machine, eager=eager)
    solver = Solver(
        algebra, cycle_elim=cycle_elim, track_redundant=track_redundant
    )
    variables = [Variable(f"v{i}") for i in range(workload.n_vars)]
    for index in workload.sources:
        source = Constructor(f"src{index}", 0)()
        solver.add(source, variables[index])
    for src, dst, word in workload.edges:
        solver.add(variables[src], variables[dst], algebra.word(word))
    return solver


def random_constraint_system(
    machine: DFA,
    n_vars: int,
    n_constraints: int,
    seed: int = 0,
    max_arity: int = 2,
) -> Solver:
    """A random full constraint system (constructors, projections, edges).

    Roughly 60% variable-variable constraints (half annotated), 20%
    constructed lower bounds, 10% constructed upper bounds, and 10%
    projections, over a pool of constructors with arities up to
    ``max_arity``.
    """
    rng = random.Random(seed)
    algebra = MonoidAlgebra(machine)
    solver = Solver(algebra)
    alphabet = sorted(machine.alphabet, key=repr)
    variables = [Variable(f"v{i}") for i in range(n_vars)]
    constructors = [
        Constructor(f"c{arity}_{i}", arity)
        for arity in range(1, max_arity + 1)
        for i in range(3)
    ]
    constants = [Constructor(f"k{i}", 0)() for i in range(5)]

    def var() -> Variable:
        return variables[rng.randrange(n_vars)]

    for _ in range(n_constraints):
        roll = rng.random()
        if roll < 0.6:
            if alphabet and rng.random() < 0.5:
                annotation = algebra.symbol(rng.choice(alphabet))
            else:
                annotation = algebra.identity
            solver.add(var(), var(), annotation)
        elif roll < 0.8:
            ctor = rng.choice(constructors)
            args = tuple(var() for _ in range(ctor.arity))
            solver.add(Constructor(ctor.name, ctor.arity)(*args), var())
        elif roll < 0.9:
            solver.add(rng.choice(constants), var())
        else:
            ctor = rng.choice(constructors)
            index = rng.randrange(ctor.arity) + 1
            solver.add(ctor.proj(index, var()), var())
    return solver
