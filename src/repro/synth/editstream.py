"""Edit-stream workloads for the incremental re-solving experiments.

:func:`repro.synth.generate_package` draws every function body from one
shared RNG, so regenerating with a perturbed parameter changes *every*
function — useless for measuring patch latency, where the whole point
is that a small source edit yields a small constraint diff under the
stable encoding (see :mod:`repro.incremental.diff`).

:class:`EditablePackage` fixes that by generating each function body
from its own RNG seeded by ``(package seed, function index)``: function
``fn_i``'s text depends only on the spec and ``i``, never on its
neighbours.  An edit then rewrites exactly one body, and
``diff_programs(old, new)`` produces a patch proportional to the edit.

:func:`edit_stream` drives a deterministic sequence of such edits —
insert a plain statement, insert a privilege event, delete a statement,
or flip a statement between plain and event — mimicking a developer
editing under an analysis service that re-checks per save.  Each step
yields the *cumulative* source, so consecutive steps differ by one
edit, which is the workload shape the ``patch_vs_cold_vs_warm``
benchmark family replays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.synth.programs import (
    _EVENT_CALLS,
    _PLAIN_STATEMENTS,
    BlockWriter,
    PackageSpec,
)

__all__ = ["EditStep", "EditablePackage", "edit_stream"]

#: Multiplier mixing the package seed with a function index into a
#: fresh RNG seed (a large prime keeps nearby indices uncorrelated).
_FN_SEED_STRIDE = 1_000_003

_EDIT_KINDS = ("insert", "insert_event", "delete", "flip")


@dataclass(frozen=True)
class EditStep:
    """One step of an edit stream: the edit and the resulting program."""

    step: int
    kind: str
    function: str
    #: body-line index the edit touched (in the function's body list)
    line: int
    #: full source text *after* the edit
    source: str


class EditablePackage:
    """A synthetic package whose functions regenerate independently.

    The emitted program matches the :mod:`repro.synth.programs` shape —
    layered acyclic call graph, same statement vocabulary, optional
    seeded violation in ``main`` — but each ``fn_i`` body comes from
    ``Random(seed * stride + i)``, so editing one function leaves every
    other function's text bit-identical.
    """

    def __init__(self, spec: PackageSpec):
        self.spec = spec
        self.names = [f"fn_{i}" for i in range(spec.n_functions)]
        self.per_function = max(
            3, spec.target_lines // (spec.n_functions + 1) - 3
        )
        self._bodies: dict[str, list[str]] = {
            name: self._generate_body(i) for i, name in enumerate(self.names)
        }

    def _generate_body(self, index: int) -> list[str]:
        rng = random.Random(self.spec.seed * _FN_SEED_STRIDE + index)
        callees = list(self.names[index + 1 : index + 1 + 8])
        if rng.random() < 0.05:
            callees.append(self.names[index])  # direct recursion
        writer = BlockWriter(self.spec, rng)
        writer.emit(1, "int x = 0;")
        writer.emit(1, "int y = 1;")
        writer.block(1, self.per_function, callees)
        return writer.lines

    def body(self, function: str) -> list[str]:
        """The current body lines of ``function`` (mutable view)."""
        return self._bodies[function]

    def source(self) -> str:
        """The package's current full source text."""
        lines: list[str] = []
        for name in self.names:
            lines.append(f"void {name}() {{")
            lines.extend(self._bodies[name])
            lines.append("}")
            lines.append("")
        lines.append("int main() {")
        lines.append("  int x = 0;")
        lines.append("  int y = 1;")
        if self.spec.violation:
            lines.append("  seteuid(0);")
            lines.append("  if (x) {")
            lines.append("    seteuid(getuid());")
            lines.append("  }")
            lines.append('  execl("/bin/sh", "sh", 0);')
        for name in self.names[:8]:
            lines.append(f"  {name}();")
        lines.append("  return 0;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    # -- edits -----------------------------------------------------------------

    @staticmethod
    def _is_simple(line: str) -> bool:
        stripped = line.strip()
        return (
            stripped.endswith(";")
            and "{" not in stripped
            and "}" not in stripped
        )

    def _simple_lines(self, body: list[str]) -> list[int]:
        # Skip the two fixed declarations so deletes never strip
        # ``int x``/``int y`` (harmless to the checker, but keeping them
        # makes the stream read like real edits).
        return [
            i for i, line in enumerate(body) if i >= 2 and self._is_simple(line)
        ]

    def apply_edit(self, step: int, rng: random.Random) -> EditStep:
        """Apply one random (seeded) edit in place; return the step record."""
        function = rng.choice(self.names)
        body = self._bodies[function]
        kind = rng.choice(_EDIT_KINDS)
        simple = self._simple_lines(body)
        if kind in ("delete", "flip") and not simple:
            kind = "insert"
        if kind == "insert":
            template = rng.choice(_PLAIN_STATEMENTS)
            line = rng.randrange(2, len(body) + 1)
            body.insert(line, "  " + template.format(v=rng.randrange(100)))
        elif kind == "insert_event":
            line = rng.randrange(2, len(body) + 1)
            body.insert(line, "  " + rng.choice(_EVENT_CALLS))
        elif kind == "delete":
            line = rng.choice(simple)
            del body[line]
        else:  # flip: swap a statement between plain and event vocabulary
            line = rng.choice(simple)
            if body[line].strip() in _EVENT_CALLS:
                template = rng.choice(_PLAIN_STATEMENTS)
                replacement = template.format(v=rng.randrange(100))
            else:
                replacement = rng.choice(_EVENT_CALLS)
            indent = body[line][: len(body[line]) - len(body[line].lstrip())]
            body[line] = indent + replacement
        return EditStep(
            step=step,
            kind=kind,
            function=function,
            line=line,
            source=self.source(),
        )


def edit_stream(
    spec: PackageSpec, n_edits: int, seed: int | None = None
) -> Iterator[EditStep]:
    """Yield ``n_edits`` cumulative edits of ``spec``'s editable package.

    Deterministic in ``(spec, seed)``; ``seed`` defaults to the spec's
    own seed.  Step 0 is always the *unedited* program (kind
    ``"base"``), so consumers can cold-solve the base and then patch
    through steps 1..n — consecutive yields differ by exactly one edit.
    """
    package = EditablePackage(spec)
    rng = random.Random(spec.seed if seed is None else seed)
    yield EditStep(
        step=0, kind="base", function="", line=-1, source=package.source()
    )
    for step in range(1, n_edits + 1):
        yield package.apply_edit(step, rng)
