"""Synthetic C-like packages for the Table 1 experiment.

The paper checks the process-privilege property on four real packages
(VixieCron 4k, At 6k, Sendmail 222k, Apache 229k lines).  Those sources
cannot be shipped, so this generator produces packages of matching size
with the structural features that drive both checkers' costs:

* a call graph with realistic fan-out, depth, and some recursion;
* mostly property-irrelevant statements (straight-line code, branches,
  loops), at roughly real-code density;
* a sprinkling of privilege-relevant system calls (seteuid/setuid/
  setreuid/exec/system), matching the low density such calls have in
  real daemons;
* optionally a seeded violation: a path acquiring privilege that
  reaches an exec without dropping it.

Generation is deterministic in the seed.  Both checkers consume the
same generated program, so the BANSHEE-vs-MOPS comparison is as
apples-to-apples as the paper's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class PackageSpec:
    """Size/shape parameters for one synthetic package."""

    name: str
    target_lines: int
    n_functions: int
    seed: int
    violation: bool = True
    #: fraction of statements that are privilege-relevant calls
    event_density: float = 0.02
    #: fraction of statements that are calls to defined functions
    call_density: float = 0.12


#: Packages mirroring Table 1's benchmark suite (sizes in source lines).
TABLE1_PACKAGES = (
    PackageSpec("vixiecron-3.0.1", 4_000, 60, seed=11),
    PackageSpec("at-3.1.8", 6_000, 90, seed=23),
    PackageSpec("sendmail-8.12.8", 222_000, 2600, seed=37),
    PackageSpec("apache-2.0.40", 229_000, 2700, seed=53),
)

_EVENT_CALLS = (
    'seteuid(0);',
    'seteuid(getuid());',
    'setuid(0);',
    'setuid(getuid());',
    'setreuid(getuid(), getuid());',
    'system("ls");',
)

_PLAIN_STATEMENTS = (
    "x = x + {v};",
    "y = x * {v};",
    "buf[{v}] = x;",
    "x = y - {v};",
    "log_message(x, {v});",
    "x = read_config({v});",
)


class BlockWriter:
    """Statement/block emitter over an explicit RNG.

    Factored out of the package writer so callers that need
    *per-function* determinism (``repro.synth.editstream`` generates
    each function body from its own seeded RNG, keeping edits local)
    can reuse the exact statement vocabulary and block shapes.
    """

    def __init__(self, spec: PackageSpec, rng: random.Random):
        self.spec = spec
        self.rng = rng
        self.lines: list[str] = []

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("  " * depth + text)

    def statement(self, depth: int, callees: list[str]) -> None:
        roll = self.rng.random()
        if roll < self.spec.event_density:
            self.emit(depth, self.rng.choice(_EVENT_CALLS))
        elif roll < self.spec.event_density + self.spec.call_density and callees:
            self.emit(depth, f"{self.rng.choice(callees)}();")
        else:
            template = self.rng.choice(_PLAIN_STATEMENTS)
            self.emit(depth, template.format(v=self.rng.randrange(100)))

    def block(self, depth: int, budget: int, callees: list[str]) -> None:
        while budget > 0:
            roll = self.rng.random()
            if roll < 0.08 and budget >= 4:
                self.emit(depth, "if (x > y) {")
                inner = self.rng.randrange(1, max(2, budget // 3))
                self.block(depth + 1, inner, callees)
                if self.rng.random() < 0.5:
                    self.emit(depth, "} else {")
                    inner2 = self.rng.randrange(1, max(2, budget // 3))
                    self.block(depth + 1, inner2, callees)
                    budget -= inner2
                self.emit(depth, "}")
                budget -= inner + 2
            elif roll < 0.12 and budget >= 4:
                self.emit(depth, "while (x < y) {")
                inner = self.rng.randrange(1, max(2, budget // 3))
                self.block(depth + 1, inner, callees)
                self.emit(depth, "}")
                budget -= inner + 2
            else:
                self.statement(depth, callees)
                budget -= 1


class _PackageWriter(BlockWriter):
    def __init__(self, spec: PackageSpec):
        super().__init__(spec, random.Random(spec.seed))

    def generate(self) -> str:
        spec = self.spec
        names = [f"fn_{i}" for i in range(spec.n_functions)]
        # Layered call graph: function i may call functions with larger
        # index (acyclic), plus occasional self-recursion.
        per_function = max(3, spec.target_lines // (spec.n_functions + 1) - 3)
        for i, name in enumerate(names):
            callees = list(names[i + 1 : i + 1 + 8])
            if self.rng.random() < 0.05:
                callees.append(name)  # direct recursion
            self.emit(0, f"void {name}() {{")
            self.emit(1, "int x = 0;")
            self.emit(1, "int y = 1;")
            self.block(1, per_function, callees)
            self.emit(0, "}")
            self.emit(0, "")
        self.emit(0, "int main() {")
        self.emit(1, "int x = 0;")
        self.emit(1, "int y = 1;")
        if spec.violation:
            # A seeded violation: privilege acquired, conditionally (but
            # not always) dropped, then an exec.
            self.emit(1, "seteuid(0);")
            self.emit(1, "if (x) {")
            self.emit(2, "seteuid(getuid());")
            self.emit(1, "}")
            self.emit(1, 'execl("/bin/sh", "sh", 0);')
        self.block(1, max(3, per_function), names[:8])
        self.emit(1, "return 0;")
        self.emit(0, "}")
        return "\n".join(self.lines) + "\n"


def generate_package(spec: PackageSpec) -> str:
    """Generate one synthetic package's mini-C source text."""
    return _PackageWriter(spec).generate()
