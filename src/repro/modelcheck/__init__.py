"""Pushdown model checking with annotated constraints (Section 6)."""

from repro.modelcheck.checker import AnnotatedChecker, CheckResult, Violation
from repro.modelcheck.combine import combine_properties, component_errors
from repro.modelcheck.demand import DemandChecker
from repro.modelcheck.properties import (
    PROPERTY_FACTORIES,
    Property,
    chroot_property,
    file_state_property,
    full_privilege_property,
    heap_state_property,
    simple_privilege_property,
)

__all__ = [
    "PROPERTY_FACTORIES",
    "AnnotatedChecker",
    "CheckResult",
    "DemandChecker",
    "Property",
    "Violation",
    "chroot_property",
    "combine_properties",
    "component_errors",
    "file_state_property",
    "full_privilege_property",
    "heap_state_property",
    "simple_privilege_property",
]
