"""Checking several regular properties in one pass (§2.2's product).

The paper's formalism handles "a combination of a context-free and any
number of regular reachability properties" by a single machine:
"Because regular languages are closed under products, it is sufficient
to deal only with a single machine representing the product of all the
regular reachability properties for a given application."

:func:`combine_properties` builds that machine.  The product alphabet
is the set of *joint events* — tuples with one component per property,
``None`` where a property is indifferent — and the transition function
steps every component (indifferent components stay put, exactly like
the per-property self-loop convention of the specification language).
The combined accept set is the union: an error in *any* component is a
violation, and :func:`component_errors` recovers which.

Parametric properties are excluded (their product is what substitution
environments compute lazily; combining them eagerly would defeat the
point of Section 6.4).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Sequence

from repro.cfg.graph import CFGNode
from repro.dfa.automaton import DFA
from repro.modelcheck.properties import Event, Property

JointSymbol = tuple  # one (symbol | None) per component property


def combine_properties(
    properties: Sequence[Property], name: str | None = None
) -> Property:
    """One property whose machine is the product of all the inputs.

    The product is built over the *reachable* joint states only (BFS
    from the joint start), so combining k small properties does not
    materialize the full cartesian space unless the program could
    actually drive it there.
    """
    if not properties:
        raise ValueError("combine_properties needs at least one property")
    for prop in properties:
        if prop.parametric_symbols:
            raise ValueError(
                f"property {prop.name!r} is parametric; products of "
                "parametric properties are handled lazily by substitution "
                "environments, not eagerly"
            )
    machines = [prop.machine for prop in properties]

    # Joint alphabet: all combinations of per-property symbols (or None)
    # that some single program event could plausibly emit.  Statically we
    # must admit any combination — different mappers may react to the
    # same statement — so the alphabet is the product of (Σᵢ ∪ {None})
    # minus the all-None tuple.
    alphabets = [sorted(m.alphabet, key=repr) + [None] for m in machines]
    joint_symbols = [
        combo
        for combo in itertools.product(*alphabets)
        if any(part is not None for part in combo)
    ]

    start = tuple(m.start for m in machines)
    index: dict[tuple, int] = {start: 0}
    order = [start]
    edges = []
    work = deque([start])
    while work:
        state = work.popleft()
        src = index[state]
        for joint in joint_symbols:
            nxt = tuple(
                m.step(component, part) if part is not None else component
                for m, component, part in zip(machines, state, joint)
            )
            if nxt not in index:
                index[nxt] = len(order)
                order.append(nxt)
                work.append(nxt)
            edges.append((src, joint, index[nxt]))
    accepting = {
        index[state]
        for state in order
        if any(
            component in m.accepting for m, component in zip(machines, state)
        )
    }
    machine = DFA.from_partial(
        n_states=len(order),
        alphabet=set(joint_symbols),
        start=0,
        accepting=accepting,
        edges=edges,
    )

    mappers = [prop.event_of for prop in properties]

    def joint_event(node: CFGNode) -> Event | None:
        parts = []
        fired = False
        for mapper in mappers:
            event = mapper(node)
            if event is None:
                parts.append(None)
            else:
                symbol, labels = event
                if labels is not None:  # pragma: no cover - guarded above
                    raise ValueError("parametric event in combined property")
                parts.append(symbol)
                fired = True
        if not fired:
            return None
        return (tuple(parts), None)

    combined = Property(
        name=name or "+".join(prop.name for prop in properties),
        machine=machine,
        event_of=joint_event,
    )
    # Metadata for component_errors: joint state -> per-component states.
    combined.component_states = {index[s]: s for s in order}  # type: ignore[attr-defined]
    combined.components = list(properties)  # type: ignore[attr-defined]
    return combined


def component_errors(
    combined: Property, joint_state: int
) -> list[str]:
    """Names of the component properties in error at a joint state."""
    states = combined.component_states[joint_state]  # type: ignore[attr-defined]
    return [
        prop.name
        for prop, state in zip(combined.components, states)  # type: ignore[attr-defined]
        if state in prop.machine.accepting
    ]
