"""Temporal safety properties: machines plus program-event mappers.

A :class:`Property` packages a property automaton with an *event
mapper* that decides which CFG nodes are "relevant to the security
property" (Section 6.1) and which alphabet symbol (and, for parametric
properties, which concrete labels) they emit.

Three properties from the paper are provided:

* :func:`simple_privilege_property` — the Fig 3 teaching model;
* :func:`full_privilege_property` — the reconstructed MOPS Property 1
  (Table 1's experiment);
* :func:`file_state_property` — the parametric open/close property of
  Fig 5 / Section 6.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cfg import ast
from repro.cfg.graph import CFGNode
from repro.dfa.automaton import DFA
from repro.dfa.spec import parse_spec
from repro.dfa.gallery import (
    FULL_PRIVILEGE_SYMBOLS,
    file_state_machine,
    full_privilege_machine,
    privilege_machine,
)

#: An event is ``(alphabet symbol, labels)``; labels is ``None`` for
#: non-parametric symbols and a tuple of concrete labels otherwise.
Event = tuple[str, tuple[str, ...] | None]

EventMapper = Callable[[CFGNode], Event | None]


@dataclass
class Property:
    """A checkable temporal safety property."""

    name: str
    machine: DFA
    event_of: EventMapper
    parametric_symbols: dict[str, tuple[str, ...]] = field(default_factory=dict)


def _is_zero(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.Number) and expr.value == 0


_EXEC_NAMES = {"execl", "execle", "execlp", "execv", "execve", "execvp"}


def _simple_privilege_event(node: CFGNode) -> Event | None:
    call = node.call
    if call is None:
        return None
    if call.callee == "seteuid":
        if call.args and _is_zero(call.args[0]):
            return ("seteuid_zero", None)
        return ("seteuid_nonzero", None)
    if call.callee in _EXEC_NAMES:
        return ("execl", None)
    return None


def simple_privilege_property() -> Property:
    """The three-state Fig 3 property (the Section 6.3 example)."""
    return Property(
        name="simple-privilege",
        machine=privilege_machine(),
        event_of=_simple_privilege_event,
    )


def _full_privilege_event(node: CFGNode) -> Event | None:
    call = node.call
    if call is None:
        return None
    name = call.callee
    zero = bool(call.args) and _is_zero(call.args[0])
    if name == "setuid":
        return ("setuid_zero" if zero else "setuid_user", None)
    if name == "seteuid":
        return ("seteuid_zero" if zero else "seteuid_user", None)
    if name == "setreuid":
        zeros = sum(1 for a in call.args[:2] if _is_zero(a))
        if zeros == 2:
            return ("setreuid_zero_zero", None)
        if zeros == 0:
            return ("setreuid_user_user", None)
        return ("setreuid_user_zero", None)
    if name in _EXEC_NAMES or name == "popen":
        return ("exec", None)
    if name == "system":
        return ("system", None)
    return None


def full_privilege_property() -> Property:
    """The reconstructed MOPS Property 1 used for the Table 1 benchmark."""
    machine = full_privilege_machine()
    assert set(FULL_PRIVILEGE_SYMBOLS) == set(machine.alphabet)
    return Property(
        name="full-privilege",
        machine=machine,
        event_of=_full_privilege_event,
    )


def _descriptor_label(node: CFGNode) -> str | None:
    """The descriptor a call refers to.

    For ``close(fd)``/``read(fd, ...)`` it is the first identifier
    argument; for ``fd = open(...)`` (declaration or assignment) it is
    the variable the result is stored into.
    """
    call = node.call
    assert call is not None
    if call.callee == "open":
        owner = node.owner
        if isinstance(owner, ast.Decl):
            return owner.name
        if isinstance(owner, ast.ExprStmt) and isinstance(owner.expr, ast.Assign):
            target = owner.expr.target
            if isinstance(target, ast.Ident):
                return target.name
        return None
    if call.args and isinstance(call.args[0], ast.Ident):
        return call.args[0].name
    return None


def _file_state_event(node: CFGNode) -> Event | None:
    call = node.call
    if call is None or call.callee not in ("open", "close"):
        return None
    label = _descriptor_label(node)
    if label is None:
        return None
    return (call.callee, (label,))


CHROOT_SPEC = """
start state Outside :
    | chroot -> Jailed;

state Jailed :
    | chdir_root -> Safe
    | open -> Error
    | execl -> Error;

state Safe :
    | chroot -> Jailed;

accept state Error;
"""


def _chroot_event(node: CFGNode) -> Event | None:
    call = node.call
    if call is None:
        return None
    if call.callee == "chroot":
        return ("chroot", None)
    if call.callee == "chdir":
        if call.args and isinstance(call.args[0], ast.String) and call.args[0].value == "/":
            return ("chdir_root", None)
        return None
    if call.callee == "open":
        return ("open", None)
    if call.callee in _EXEC_NAMES:
        return ("execl", None)
    return None


def chroot_property() -> Property:
    """The classic MOPS chroot jail property.

    After ``chroot(dir)`` a process must ``chdir("/")`` before touching
    the filesystem or exec'ing, or relative paths escape the jail.
    """
    from repro.dfa.spec import parse_spec

    return Property(
        name="chroot-jail",
        machine=parse_spec(CHROOT_SPEC).to_dfa(),
        event_of=_chroot_event,
    )


HEAP_STATE_SPEC = """
start state Unallocated :
    | alloc(p) -> Live
    | free(p) -> Error
    | use(p) -> Error;

state Live :
    | free(p) -> Freed
    | alloc(p) -> Live;

state Freed :
    | use(p) -> Error
    | free(p) -> Error
    | alloc(p) -> Live;

accept state Error;
"""


def _heap_label(node: CFGNode) -> str | None:
    call = node.call
    assert call is not None
    if call.callee == "malloc":
        owner = node.owner
        if isinstance(owner, ast.Decl):
            return owner.name
        if isinstance(owner, ast.ExprStmt) and isinstance(owner.expr, ast.Assign):
            target = owner.expr.target
            if isinstance(target, ast.Ident):
                return target.name
        return None
    if call.args and isinstance(call.args[0], ast.Ident):
        return call.args[0].name
    return None


def _heap_event(node: CFGNode) -> Event | None:
    call = node.call
    if call is None:
        return None
    if call.callee == "malloc":
        label = _heap_label(node)
        return ("alloc", (label,)) if label else None
    if call.callee == "free":
        label = _heap_label(node)
        return ("free", (label,)) if label else None
    if call.callee in ("memcpy", "strcpy", "read_into", "write_from", "deref"):
        label = _heap_label(node)
        return ("use", (label,)) if label else None
    return None


def heap_state_property() -> Property:
    """A parametric heap-safety property: double free and use after free.

    ``p = malloc(...)`` allocates; ``free(p)`` frees; a set of
    buffer-consuming primitives count as uses.  Freeing or using an
    unallocated/freed pointer drives that pointer's automaton instance
    to Error — the same lazy-instantiation machinery as the file-state
    property (Section 6.4)."""
    spec = parse_spec(HEAP_STATE_SPEC)
    return Property(
        name="heap-state",
        machine=spec.to_dfa(),
        event_of=_heap_event,
        parametric_symbols={
            "alloc": ("p",),
            "free": ("p",),
            "use": ("p",),
        },
    )


def file_state_property() -> Property:
    """The Fig 5 parametric property: ``open(x)`` / ``close(x)``.

    The accept (Error) state flags double-open and double-close of the
    same descriptor; "descriptor left open" queries target the Opened
    state instead (see :meth:`repro.modelcheck.checker.AnnotatedChecker.states_at`).
    """
    return Property(
        name="file-state",
        machine=file_state_machine(),
        event_of=_file_state_event,
        parametric_symbols={"open": ("x",), "close": ("x",)},
    )


#: The canonical name → factory registry of checkable properties, shared
#: by the CLI and the analysis service (:mod:`repro.service`).
PROPERTY_FACTORIES: dict[str, Callable[[], Property]] = {
    "simple-privilege": simple_privilege_property,
    "full-privilege": full_privilege_property,
    "file-state": file_state_property,
    "chroot-jail": chroot_property,
    "heap-state": heap_state_property,
}
