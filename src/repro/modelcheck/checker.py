"""The annotated-constraint pushdown model checker (Section 6).

The encoding follows Section 6.1 exactly:

1. every CFG node ``s`` gets a set variable ``S``;
2. an edge from an irrelevant statement adds ``S ⊆ S'``;
3. an edge from a property-relevant statement adds ``S ⊆^s S'``, the
   annotation being the statement's alphabet symbol (a substitution
   environment when the symbol is parametric, Section 6.4);
4. a call to ``f`` at site ``i`` adds ``o_i(S) ⊆ F_entry`` and
   ``o_i^{-1}(F_exit) ⊆ S'`` — calls and returns are matched by the
   *context-free* constructor/projection mechanism while the property
   runs in the *regular* annotations;
5. ``pc ⊆ S_main`` seeds the program counter.

A violation is the entailment of ``pc^{f}`` at some node variable with
``f`` driving the property machine into its error set; the query uses
PN reachability (descending into unreturned calls), so errors inside
callees with pending frames are found.  Witness traces come from the
solver's provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.cfg.graph import CFGNode, ProgramCFG
from repro.core.annotations import Annotation, CompiledMonoidAlgebra, MonoidAlgebra
from repro.core.budget import Budget
from repro.core.flatcore import FlatSolver
from repro.core.parametric import EntryKey, ParametricAlgebra
from repro.core.queries import Reachability
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable
from repro.modelcheck.properties import Property


@dataclass(frozen=True)
class Violation:
    """A property violation at a program point.

    ``instantiation`` is None for non-parametric properties, else the
    parameter bindings (e.g. which file descriptor erred).  ``trace``
    lists the CFG nodes of one witness path, in execution order.
    """

    node: CFGNode
    annotation: Annotation
    instantiation: tuple[tuple[str, str], ...] | None
    trace: tuple[CFGNode, ...]

    def describe(self) -> str:
        where = self.node.describe()
        if self.instantiation:
            bindings = ", ".join(f"{p}={label}" for p, label in self.instantiation)
            return f"violation at {where} [{bindings}]"
        return f"violation at {where}"


@dataclass
class CheckResult:
    violations: list[Violation] = field(default_factory=list)
    constraints: int = 0
    facts: int = 0

    @property
    def has_violation(self) -> bool:
        return bool(self.violations)

    def violation_lines(self) -> set[int]:
        return {v.node.line for v in self.violations}


def _epsilon_scc_representatives(cfg: ProgramCFG, event_of) -> dict[int, int]:
    """Map each CFG node to its ε-SCC representative.

    Two nodes are merged when they lie on a cycle of edges that carry
    the identity annotation (no property event, no call constructor) —
    the loops a structured CFG is full of.  Nodes on such a cycle are
    mutually ε-included, hence equal in every solution, so the merge is
    exact.  Kosaraju's algorithm, iteratively, on the ε-edge subgraph.
    """
    epsilon_succ: dict[int, list[int]] = {}
    epsilon_pred: dict[int, list[int]] = {}
    identity_nodes = set()
    for node in cfg.all_nodes():
        if node.kind == "call":
            continue
        if event_of(node) is not None:
            continue
        identity_nodes.add(node.id)
        for succ in cfg.successors(node):
            epsilon_succ.setdefault(node.id, []).append(succ.id)
            epsilon_pred.setdefault(succ.id, []).append(node.id)

    # First pass: finish order over the ε-subgraph.
    order: list[int] = []
    visited: set[int] = set()
    for start in list(identity_nodes):
        if start in visited:
            continue
        stack: list[tuple[int, int]] = [(start, 0)]
        visited.add(start)
        while stack:
            node, index = stack.pop()
            successors = epsilon_succ.get(node, [])
            if index < len(successors):
                stack.append((node, index + 1))
                nxt = successors[index]
                if nxt not in visited and nxt in identity_nodes:
                    visited.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(node)
    # Second pass: components in reverse finish order over reversed edges.
    representative: dict[int, int] = {}
    assigned: set[int] = set()
    for start in reversed(order):
        if start in assigned:
            continue
        component = [start]
        assigned.add(start)
        cursor = 0
        while cursor < len(component):
            node = component[cursor]
            cursor += 1
            for prev in epsilon_pred.get(node, []):
                if prev not in assigned and prev in identity_nodes:
                    assigned.add(prev)
                    component.append(prev)
        root = min(component)
        for node in component:
            representative[node] = root
    return representative


class AnnotatedChecker:
    """Model-check a program CFG against a temporal safety property.

    ``algebra`` reuses a prebuilt annotation algebra (the analysis
    service caches one compiled monoid per property machine and shares
    it across checks); it must be an algebra over ``prop.machine``.

    ``solver`` warm-starts the checker from an already-solved system
    (e.g. one reloaded via :func:`repro.core.persist.load_solver`):
    encoding is skipped entirely and queries run against the loaded
    solved form.  The solver must have been produced by encoding the
    *same* CFG/property pair — variable names (``S<node_id>``) are
    deterministic, so the node↔variable correspondence is recovered
    without re-encoding.
    """

    def __init__(
        self,
        cfg: ProgramCFG,
        prop: Property,
        eager: bool = True,
        collapse_cycles: bool = False,
        algebra: Any | None = None,
        solver: Solver | None = None,
        compiled: bool = False,
        record_reasons: bool = True,
        budget: Budget | None = None,
        cycle_elim: bool = True,
        flat: bool = False,
        track_redundant: bool = False,
        shards: int = 1,
        shard_executor: Any | None = None,
        partition: str = "greedy",
    ):
        self.cfg = cfg
        self.property = prop
        self._shards = max(1, shards)
        self._shard_executor = shard_executor
        self._partition = partition
        #: The :class:`repro.core.partition.ShardedSolution` when the
        #: encoding was solved with ``shards > 1`` (None otherwise).
        self.sharded: Any | None = None
        if self._shards > 1 and solver is not None:
            raise ValueError("shards and a warm-start solver are exclusive")
        if self._shards > 1 and record_reasons:
            # Sharded solves have no provenance (the merged view is
            # installed, not derived); witness traces come back empty.
            record_reasons = False
        if solver is not None:
            self.algebra = solver.algebra
            self.solver = solver
            if budget is not None:
                self.solver.budget = budget
        else:
            if algebra is not None:
                self.algebra = algebra
            elif prop.parametric_symbols:
                self.algebra = ParametricAlgebra(
                    prop.machine, prop.parametric_symbols, eager=eager
                )
            elif compiled or flat:
                # The §8 specializer: annotations become table indices.
                self.algebra = CompiledMonoidAlgebra(prop.machine)
            else:
                self.algebra = MonoidAlgebra(prop.machine, eager=eager)
            if self._shards > 1:
                # Deferred: _encode routes the whole batch through
                # repro.core.partition.solve_sharded and installs the
                # merged solver (flat whenever the algebra is compiled).
                self._shard_budget = budget
                self._shard_cycle_elim = cycle_elim
                self.solver = None  # type: ignore[assignment]
            elif flat:
                # The flat-array core: int-indexed columns, no
                # provenance (see :mod:`repro.core.flatcore`).
                self.solver = FlatSolver(
                    self.algebra,
                    budget=budget,
                    cycle_elim=cycle_elim,
                    track_redundant=track_redundant,
                )
            else:
                self.solver = Solver(
                    self.algebra,
                    record_reasons=record_reasons,
                    budget=budget,
                    cycle_elim=cycle_elim,
                    track_redundant=track_redundant,
                )
        self.pc = Constructor("pc", 0)()
        self._vars: dict[int, Variable] = {}
        self._constraints = 0
        #: ε-cycle elimination (the online cycle-elimination optimization
        #: BANSHEE applies, §8 / Fähndrich et al.): nodes on a cycle of
        #: identity-annotated edges share one set variable.
        self._rep: dict[int, int] = {}
        if collapse_cycles:
            self._rep = _epsilon_scc_representatives(cfg, prop.event_of)
        if solver is None:
            self._encode()
        else:
            # Warm start: recover the node ↔ variable correspondence the
            # original encode produced (names are deterministic), so the
            # query loops in check()/has_violation() see every node.
            for node in cfg.all_nodes():
                self.node_var(node)
        self._reachability: Reachability | None = None

    # -- encoding ---------------------------------------------------------------

    def node_var(self, node: CFGNode) -> Variable:
        node_id = self._rep.get(node.id, node.id)
        var = self._vars.get(node_id)
        if var is None:
            var = Variable(f"S{node_id}")
            self._vars[node_id] = var
        return var

    def _annotation_of(self, node: CFGNode) -> Annotation:
        event = self.property.event_of(node)
        if event is None:
            return self.algebra.identity
        symbol, labels = event
        if isinstance(self.algebra, ParametricAlgebra):
            return self.algebra.symbol(symbol, labels)
        if labels is not None:
            raise ValueError(
                f"property {self.property.name!r} is not parametric but the "
                f"event mapper returned labels {labels!r}"
            )
        return self.algebra.symbol(symbol)

    def _encode(self) -> None:
        cfg = self.cfg
        batch: list[tuple] = [(self.pc, self.node_var(cfg.main.entry))]
        for node in cfg.all_nodes():
            src = self.node_var(node)
            if node.kind == "call":
                callee = cfg.functions[node.call.callee]
                wrapper = Constructor(f"o{node.site}", 1)
                batch.append(
                    (wrapper(src), self.node_var(callee.entry), None, node)
                )
                exit_var = self.node_var(callee.exit)
                for succ in cfg.successors(node):
                    batch.append(
                        (wrapper.proj(1, exit_var), self.node_var(succ), None, node)
                    )
                continue
            annotation = self._annotation_of(node)
            for succ in cfg.successors(node):
                batch.append((src, self.node_var(succ), annotation, node))
        self._constraints = len(batch)
        if self._shards > 1:
            # Sharded solving: partition the encoded graph, solve the
            # regions (optionally on an executor), stitch the frontier,
            # and query the merged solved form.
            from repro.core.partition import solve_sharded

            self.sharded = solve_sharded(
                batch,
                self.algebra,
                shards=self._shards,
                cycle_elim=self._shard_cycle_elim,
                budget=self._shard_budget,
                executor=self._shard_executor,
                partition=self._partition,
            )
            self.solver = self.sharded.merged()
            return
        # One drain for the whole program instead of one per constraint.
        self.solver.add_many(batch)

    # -- queries ------------------------------------------------------------------

    def reachability(self) -> Reachability:
        if self._reachability is None:
            self._reachability = Reachability(self.solver, through_constructors=True)
        return self._reachability

    def check(self, traces: bool = False) -> CheckResult:
        """Find all program points whose annotations reach the error set.

        One violation is reported per (program point, instantiation)
        pair.  Witness traces are extracted only with ``traces=True``
        (they dominate the cost on large programs); use
        :meth:`witness` to reconstruct a single violation's trace
        after the fact.
        """
        reach = self.reachability()
        result = CheckResult(constraints=self._constraints, facts=self.solver.fact_count())
        parametric = isinstance(self.algebra, ParametricAlgebra)
        for node in self.cfg.all_nodes():
            var = self._vars.get(self._rep.get(node.id, node.id))
            if var is None:
                continue
            seen: set[tuple[tuple[str, str], ...] | None] = set()
            for annotation in reach.annotations_of(var, self.pc):
                if parametric:
                    keys = self.algebra.accepting_instantiations(annotation)
                    hits: list[tuple[tuple[str, str], ...] | None] = [
                        tuple(sorted(key)) for key in keys
                    ]
                    if self.algebra.base.is_accepting(annotation.residual):
                        hits.append(None)
                else:
                    hits = [None] if self.algebra.is_accepting(annotation) else []
                for instantiation in hits:
                    if instantiation in seen:
                        continue
                    seen.add(instantiation)
                    trace: tuple[CFGNode, ...] = ()
                    if traces:
                        trace = tuple(
                            step
                            for step in reach.witness(var, self.pc, annotation)
                            if isinstance(step, CFGNode)
                        )
                    result.violations.append(
                        Violation(node, annotation, instantiation, trace)
                    )
        return result

    def witness(self, violation: Violation) -> tuple[CFGNode, ...]:
        """Witness trace for one violation (lazy counterpart of
        ``check(traces=True)``)."""
        reach = self.reachability()
        var = self.node_var(violation.node)
        return tuple(
            step
            for step in reach.witness(var, self.pc, violation.annotation)
            if isinstance(step, CFGNode)
        )

    def has_violation(self) -> bool:
        """Fast boolean check (stops scanning at the first violation)."""
        reach = self.reachability()
        parametric = isinstance(self.algebra, ParametricAlgebra)
        for node in self.cfg.all_nodes():
            var = self._vars.get(self._rep.get(node.id, node.id))
            if var is None:
                continue
            for annotation in reach.annotations_of(var, self.pc):
                if parametric:
                    if self.algebra.is_accepting(annotation):
                        return True
                elif self.algebra.is_accepting(annotation):
                    return True
        return False

    def states_at(self, node: CFGNode) -> set[int] | dict[EntryKey, set[int]]:
        """Property-machine states reachable at a program point.

        For a plain property: the set of states ``f(s0)`` over all path
        classes ``f``.  For a parametric property: a map from
        instantiation keys to their state sets (the general query of
        Section 3.2 — e.g. "is ``fd2`` in the Opened state here?").
        """
        reach = self.reachability()
        var = self.node_var(node)
        annotations = reach.annotations_of(var, self.pc)
        if not isinstance(self.algebra, ParametricAlgebra):
            # state_after handles both representations: representative
            # functions (object mode) and table indices (compiled mode).
            return {self.algebra.state_after(ann) for ann in annotations}
        states: dict[EntryKey, set[int]] = {}
        start = self.property.machine.start
        for env in annotations:
            for key, fn in env.entries:
                states.setdefault(key, set()).add(fn(start))
            states.setdefault(frozenset(), set()).add(env.residual(start))
        return states
