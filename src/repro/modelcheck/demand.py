"""Model checking on the demand-driven forward solver (§5 in practice).

Same Section 6.1 encoding as :class:`~repro.modelcheck.checker.AnnotatedChecker`,
loaded into :class:`~repro.core.demand.DemandForwardSolver` and solved
on demand from the single ``pc`` source.  Derived annotations are
machine states — at most ``|S|`` per program point — which is the
paper's argument for why whole-program analysis is asymptotically
cheaper than the separate-analysis-capable bidirectional strategy.

Parametric properties are not supported here: substitution environments
are inherently bidirectional-style annotations (their domain grows with
the composition, which is exactly what the right congruence cannot
express without the explicit product).
"""

from __future__ import annotations

from repro.cfg.graph import CFGNode, ProgramCFG
from repro.core.demand import DemandForwardSolver, DemandSolution
from repro.core.terms import Constructor, Variable
from repro.modelcheck.properties import Property


class DemandChecker:
    """Forward, demand-driven model checker for non-parametric properties."""

    def __init__(self, cfg: ProgramCFG, prop: Property):
        if prop.parametric_symbols:
            raise ValueError(
                "the demand forward checker does not support parametric "
                "properties (see module docstring)"
            )
        self.cfg = cfg
        self.property = prop
        self.solver = DemandForwardSolver(prop.machine)
        self._vars: dict[int, Variable] = {}
        self._encode()
        self._solution: DemandSolution | None = None

    def node_var(self, node: CFGNode) -> Variable:
        var = self._vars.get(node.id)
        if var is None:
            var = Variable(f"S{node.id}")
            self._vars[node.id] = var
        return var

    def _encode(self) -> None:
        cfg = self.cfg
        solver = self.solver
        solver.add_source("pc", self.node_var(cfg.main.entry))
        for node in cfg.all_nodes():
            src = self.node_var(node)
            if node.kind == "call":
                callee = cfg.functions[node.call.callee]
                wrapper = Constructor(f"o{node.site}", 1)
                solver.add(wrapper(src), self.node_var(callee.entry))
                exit_var = self.node_var(callee.exit)
                for succ in cfg.successors(node):
                    solver.add(wrapper.proj(1, exit_var), self.node_var(succ))
                continue
            event = self.property.event_of(node)
            word = () if event is None else (event[0],)
            for succ in cfg.successors(node):
                solver.add(src, self.node_var(succ), word)

    def solution(self) -> DemandSolution:
        if self._solution is None:
            self._solution = self.solver.solve("pc")
        return self._solution

    def has_violation(self) -> bool:
        solution = self.solution()
        accepting = self.property.machine.accepting
        return any(
            solution.states_of(var) & accepting for var in solution.variables()
        )

    def violation_nodes(self) -> list[CFGNode]:
        solution = self.solution()
        accepting = self.property.machine.accepting
        hits = []
        for node in self.cfg.all_nodes():
            var = self._vars.get(node.id)
            if var is not None and solution.states_of(var) & accepting:
                hits.append(node)
        return hits

    def states_at(self, node: CFGNode) -> set[int]:
        return self.solution().states_of(self.node_var(node))

    def witness(self, node: CFGNode, state: int) -> list[CFGNode]:
        """A statement path driving the property to ``state`` at ``node``.

        Reconstructed from the tabulation's parent chain; entries map
        back from set variables to CFG nodes in execution order.
        """
        by_var = {var.name: node_id for node_id, var in self._vars.items()}
        steps: list[CFGNode] = []
        for var, _state in self.solution().trace(self.node_var(node), state):
            node_id = by_var.get(var.name)
            if node_id is not None:
                steps.append(self.cfg.nodes[node_id])
        return steps
