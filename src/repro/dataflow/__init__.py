"""Interprocedural bit-vector dataflow analysis (Sections 3.3 and 6).

Two solvers over the same problem definition:

* :mod:`repro.dataflow.bitvector` — the paper's approach: gen/kill
  effects become regular annotations (a product of 1-bit machines,
  Fig 1) on the Section 6 constraint encoding of the CFG; a fact may
  hold at a node iff some path class reaching the node accepts on that
  bit.
* :mod:`repro.dataflow.classic` — the Sharir–Pnueli functional approach
  (procedure summaries as gen/kill pairs), which is exact for
  distributive bit-vector frameworks and serves as the correctness
  baseline and performance comparator.

:mod:`repro.dataflow.problems` defines concrete problems (which program
events gen/kill which facts) over the mini-C CFGs.
"""

from repro.dataflow.bitvector import AnnotatedBitVectorAnalysis
from repro.dataflow.classic import FunctionalBitVectorAnalysis
from repro.dataflow.problems import (
    BitVectorProblem,
    call_tracking_problem,
    live_variable_problem,
    privilege_fact_problem,
    variable_def_problem,
)

__all__ = [
    "AnnotatedBitVectorAnalysis",
    "BitVectorProblem",
    "FunctionalBitVectorAnalysis",
    "call_tracking_problem",
    "live_variable_problem",
    "privilege_fact_problem",
    "variable_def_problem",
]
