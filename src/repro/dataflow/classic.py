"""Classic interprocedural bit-vector dataflow: the functional approach.

The Sharir–Pnueli functional approach computes, per procedure, a
*summary* of its effect on the fact vector and then propagates concrete
fact sets top-down.  For gen/kill (distributive) frameworks the
summaries have a closed form — a (gen, kill) pair — under both
composition and union-join, so the method is exact for the
meet-over-realizable-paths solution.  That makes it the ideal
cross-validation baseline for the annotation-based solver: both must
produce identical may-hold sets at every node (a hypothesis property
test in the suite), while their algorithms share nothing.
"""

from __future__ import annotations

from collections import deque

from repro.cfg.graph import CFGNode, ProgramCFG
from repro.dataflow.problems import BitVectorProblem, GenKill

#: The identity transfer function (no gens, no kills).
IDENTITY: GenKill = (frozenset(), frozenset())


def compose(first: GenKill, second: GenKill) -> GenKill:
    """Transfer function of ``first`` followed by ``second``."""
    gen1, kill1 = first
    gen2, kill2 = second
    return ((gen1 - kill2) | gen2, kill1 | kill2)


def join(left: GenKill | None, right: GenKill | None) -> GenKill | None:
    """Union-join (may analysis): combine path functions.

    ``None`` is bottom — "no path".  ``join(f, g)(X) = f(X) ∪ g(X)``,
    which for gen/kill pairs is (gen union, kill intersection).
    """
    if left is None:
        return right
    if right is None:
        return left
    return (left[0] | right[0], left[1] & right[1])


def apply(fn: GenKill, facts: frozenset[int]) -> frozenset[int]:
    gen, kill = fn
    return gen | (facts - kill)


class FunctionalBitVectorAnalysis:
    """Exact interprocedural may-analysis via procedure summaries."""

    def __init__(self, cfg: ProgramCFG, problem: BitVectorProblem):
        self.cfg = cfg
        self.problem = problem
        self._callers: dict[str, set[str]] = {}
        self._call_nodes: dict[str, list[CFGNode]] = {}
        for node in cfg.all_nodes():
            if node.kind == "call":
                callee = node.call.callee
                self._callers.setdefault(callee, set()).add(node.function)
                self._call_nodes.setdefault(callee, []).append(node)
        #: per-function summaries (entry → exit path function)
        self.summaries: dict[str, GenKill | None] = {
            name: None for name in cfg.functions
        }
        #: per-node path functions from the enclosing function's entry
        self.path_functions: dict[int, GenKill | None] = {}
        self._compute_summaries()
        #: concrete fact sets at each function's entry
        self.entry_facts: dict[str, frozenset[int] | None] = {}
        self._propagate_entries()

    # -- phase 1: summaries ------------------------------------------------------

    def _transfer_of(self, node: CFGNode) -> GenKill | None:
        """Effect of *executing* ``node`` (None = callee has no summary yet)."""
        if node.kind == "call":
            return self.summaries[node.call.callee]
        if node.kind in ("entry", "exit"):
            return IDENTITY
        gen, kill = self.problem.effect_of(node)
        return (gen, kill)

    def _intra_fixpoint(self, function: str) -> GenKill | None:
        """Path functions entry → node within one function; returns the
        function's summary (the exit node's path function)."""
        fcfg = self.cfg.functions[function]
        values: dict[int, GenKill | None] = {
            node.id: None for node in fcfg.nodes
        }
        values[fcfg.entry.id] = IDENTITY
        work = deque([fcfg.entry])
        while work:
            node = work.popleft()
            current = values[node.id]
            if current is None:
                continue
            transfer = self._transfer_of(node)
            if transfer is None:
                continue  # call to a function with no terminating path yet
            outgoing = compose(current, transfer)
            for succ in self.cfg.successors(node):
                merged = join(values[succ.id], outgoing)
                if merged != values[succ.id]:
                    values[succ.id] = merged
                    work.append(succ)
        for node in fcfg.nodes:
            self.path_functions[node.id] = values[node.id]
        return values[fcfg.exit.id]

    def _compute_summaries(self) -> None:
        work = deque(self.cfg.functions)
        queued = set(work)
        while work:
            function = work.popleft()
            queued.discard(function)
            summary = self._intra_fixpoint(function)
            if summary != self.summaries[function]:
                self.summaries[function] = summary
                for caller in self._callers.get(function, ()):
                    if caller not in queued:
                        queued.add(caller)
                        work.append(caller)
        # Path functions were computed per-function possibly before all
        # callee summaries stabilized; one final intra pass fixes them.
        for function in self.cfg.functions:
            self._intra_fixpoint(function)

    # -- phase 2: top-down propagation ----------------------------------------------

    def _propagate_entries(self) -> None:
        self.entry_facts = {name: None for name in self.cfg.functions}
        if "main" in self.cfg.functions:
            self.entry_facts["main"] = frozenset()
        work = deque(["main"]) if "main" in self.cfg.functions else deque()
        queued = set(work)
        while work:
            function = work.popleft()
            queued.discard(function)
            entry = self.entry_facts[function]
            if entry is None:
                continue
            for node in self.cfg.functions[function].nodes:
                if node.kind != "call":
                    continue
                path = self.path_functions.get(node.id)
                if path is None:
                    continue  # call site unreachable within the function
                at_call = apply(path, entry)
                callee = node.call.callee
                previous = self.entry_facts[callee]
                merged = at_call if previous is None else (previous | at_call)
                if merged != previous:
                    self.entry_facts[callee] = merged
                    if callee not in queued:
                        queued.add(callee)
                        work.append(callee)

    # -- queries ------------------------------------------------------------------

    def may_hold(self, node: CFGNode) -> frozenset[int]:
        """Facts that may hold at ``node`` over some realizable path."""
        entry = self.entry_facts.get(node.function)
        path = self.path_functions.get(node.id)
        if entry is None or path is None:
            return frozenset()
        return apply(path, entry)

    def solution(self) -> dict[int, frozenset[int]]:
        return {node.id: self.may_hold(node) for node in self.cfg.all_nodes()}
