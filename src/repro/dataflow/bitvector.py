"""Interprocedural bit-vector dataflow via regular annotations.

This is Section 3.3 realized on real control-flow graphs: each of the
``n`` facts gets its own 1-bit machine (Fig 1), the annotation domain is
their product (a tuple of 1-bit representative functions — the lazy
alternative to the ``2^n``-state product machine), and the CFG is
encoded exactly as in the model checker, with ``o_i`` constructors
matching calls and returns.  Because the 1-bit monoid is
``{f_ε, f_g, f_k}``, at most ``3^n`` distinct annotations exist, and in
practice far fewer — this automatic collapsing of order-independent
gen/kill sequences is the paper's Section 4 observation that
``X ⊆^{g1 g2} Y`` subsumes ``X ⊆^{g2 g1} Y``.

The analysis answers *may* queries over realizable (call-matched)
paths: ``fact i`` may hold at node ``s`` iff some valid path from
program entry to ``s`` ends with the bit set.
"""

from __future__ import annotations

from typing import Any

from repro.cfg.graph import CFGNode, ProgramCFG
from repro.core.budget import Budget
from repro.core.annotations import (
    CompiledGenKillAlgebra,
    MonoidAlgebra,
    ProductAlgebra,
)
from repro.core.flatcore import FlatSolver
from repro.core.queries import Reachability
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable
from repro.dataflow.problems import BitVectorProblem
from repro.dfa.gallery import one_bit_machine


class AnnotatedBitVectorAnalysis:
    """Solve a bit-vector problem with the annotated-constraint solver.

    ``algebra`` reuses a prebuilt annotation domain (the analysis
    service shares one per bit width so repeated requests skip
    recompiling the monoids): either a :class:`ProductAlgebra` of
    one-bit monoid algebras with exactly ``problem.n_bits`` components,
    or a :class:`CompiledGenKillAlgebra` of the same width.  With
    ``compiled=True`` (and no shared algebra) the compiled packed-int
    domain is built here.

    Dataflow queries never extract witness traces, so the solver runs
    with provenance recording off.
    """

    def __init__(
        self,
        cfg: ProgramCFG,
        problem: BitVectorProblem,
        algebra: ProductAlgebra | CompiledGenKillAlgebra | None = None,
        compiled: bool = False,
        flat: bool = False,
        budget: Budget | None = None,
        track_redundant: bool = False,
        shards: int = 1,
        shard_executor: Any | None = None,
    ):
        self.cfg = cfg
        self.problem = problem
        self._shards = max(1, shards)
        self._shard_executor = shard_executor
        self._shard_budget = budget
        #: The ShardedSolution when solved with ``shards > 1``.
        self.sharded: Any | None = None
        if algebra is None:
            if compiled or flat:
                algebra = CompiledGenKillAlgebra(problem.n_bits)
            else:
                bit_algebra = MonoidAlgebra(one_bit_machine())
                algebra = ProductAlgebra([bit_algebra] * problem.n_bits)
        self._compiled = isinstance(algebra, CompiledGenKillAlgebra)
        if self._compiled:
            if algebra.n_bits != problem.n_bits:
                raise ValueError(
                    f"shared algebra packs {algebra.n_bits} bits "
                    f"but the problem tracks {problem.n_bits} facts"
                )
        else:
            if len(algebra.components) != problem.n_bits:
                raise ValueError(
                    f"shared algebra has {len(algebra.components)} components "
                    f"but the problem tracks {problem.n_bits} facts"
                )
            bit_algebra = algebra.components[0]
            self._gen = bit_algebra.symbol("g")
            self._kill = bit_algebra.symbol("k")
            self._eps = bit_algebra.identity
        self.algebra = algebra
        if self._shards > 1:
            # Deferred: _encode routes the batch through
            # repro.core.partition.solve_sharded (flat shards whenever
            # the algebra is compiled) and installs the merged solver.
            self.solver = None  # type: ignore[assignment]
        elif flat:
            if not self._compiled:
                raise ValueError(
                    "flat=True needs the compiled gen/kill algebra "
                    "(pass compiled=True or a CompiledGenKillAlgebra)"
                )
            self.solver: Solver | FlatSolver = FlatSolver(
                self.algebra, budget=budget, track_redundant=track_redundant
            )
        else:
            self.solver = Solver(
                self.algebra,
                record_reasons=False,
                budget=budget,
                track_redundant=track_redundant,
            )
        self.pc = Constructor("pc", 0)()
        self._vars: dict[int, Variable] = {}
        self._encode()
        self._reachability: Reachability | None = None

    def node_var(self, node: CFGNode) -> Variable:
        var = self._vars.get(node.id)
        if var is None:
            var = Variable(f"S{node.id}")
            self._vars[node.id] = var
        return var

    def _annotation_of(self, node: CFGNode):
        gen, kill = self.problem.effect_of(node)
        if not gen and not kill:
            return self.algebra.identity
        if self._compiled:
            return self.algebra.of_effect(gen, kill)
        return tuple(
            self._gen if i in gen else self._kill if i in kill else self._eps
            for i in range(self.problem.n_bits)
        )

    def _encode(self) -> None:
        cfg = self.cfg
        batch: list[tuple] = [(self.pc, self.node_var(cfg.main.entry))]
        for node in cfg.all_nodes():
            src = self.node_var(node)
            if node.kind == "call":
                callee = cfg.functions[node.call.callee]
                wrapper = Constructor(f"o{node.site}", 1)
                batch.append((wrapper(src), self.node_var(callee.entry)))
                exit_var = self.node_var(callee.exit)
                for succ in cfg.successors(node):
                    batch.append((wrapper.proj(1, exit_var), self.node_var(succ)))
                continue
            annotation = self._annotation_of(node)
            for succ in cfg.successors(node):
                batch.append((src, self.node_var(succ), annotation))
        if self._shards > 1:
            from repro.core.partition import solve_sharded

            self.sharded = solve_sharded(
                batch,
                self.algebra,
                shards=self._shards,
                budget=self._shard_budget,
                executor=self._shard_executor,
            )
            self.solver = self.sharded.merged()
            return
        self.solver.add_many(batch)

    # -- queries -------------------------------------------------------------

    def reachability(self) -> Reachability:
        if self._reachability is None:
            self._reachability = Reachability(self.solver, through_constructors=True)
        return self._reachability

    def may_hold(self, node: CFGNode) -> frozenset[int]:
        """Facts that may hold at ``node`` over some realizable path."""
        reach = self.reachability()
        var = self.node_var(node)
        facts: set[int] = set()
        for annotation in reach.annotations_of(var, self.pc):
            bits = self.algebra.accepting_bits(annotation)
            facts.update(i for i, holds in enumerate(bits) if holds)
        return frozenset(facts)

    def must_not_hold(self, node: CFGNode) -> frozenset[int]:
        """Facts that hold on *no* realizable path to ``node``."""
        return frozenset(range(self.problem.n_bits)) - self.may_hold(node)

    def solution(self) -> dict[int, frozenset[int]]:
        """May-hold fact sets for every CFG node, keyed by node id."""
        return {node.id: self.may_hold(node) for node in self.cfg.all_nodes()}
