"""Inclusion-based points-to analysis over mini-C, via set constraints.

The front half (:func:`extract_pointer_ops`) lowers a parsed program to
four primitive pointer operations over abstract *locations* —

* ``("addr",  dst, src)`` — ``dst = &src``
* ``("copy",  dst, src)`` — ``dst = src``
* ``("load",  dst, src)`` — ``dst = *src``
* ``("store", dst, src)`` — ``*dst = src``

— shared with the :class:`~repro.pointsto.naive.NaiveAndersen`
baseline, so both solvers answer for exactly the same abstraction:

* locations are function-scoped variables (``f::x``), per-site heap
  objects (``heap@line``), and per-function return slots;
* calls copy actuals to formals and the return slot to the use site
  (context-insensitive, as in classic Andersen);
* everything non-pointer is simply absorbed (no values, no effect).

The back half encodes the operations as set constraints with the
``ref(get, set)`` constructor — ``get`` covariant, ``set``
contravariant — and reads points-to sets out of the solved form.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cfg import ast
from repro.core.solver import Solver
from repro.core.terms import Constructed, Constructor, Variable

#: One primitive pointer operation; operands are location names.
PointerOp = tuple[str, str, str]


@dataclass
class _Lowering:
    program: ast.Program
    ops: list[PointerOp] = field(default_factory=list)
    locations: set[str] = field(default_factory=set)
    _temps: itertools.count = field(default_factory=itertools.count)

    def location(self, name: str) -> str:
        self.locations.add(name)
        return name

    def temp(self, function: str) -> str:
        return self.location(f"{function}::$t{next(self._temps)}")

    def local(self, function: str, name: str) -> str:
        return self.location(f"{function}::{name}")

    def return_slot(self, function: str) -> str:
        return self.location(f"{function}::$ret")

    # -- expression lowering: returns the location holding the value ------

    def value_of(self, function: str, expr: ast.Expr | None) -> str | None:
        """Lower an expression; return the location holding its value,
        or None for non-pointer-producing expressions."""
        if expr is None:
            return None
        if isinstance(expr, ast.Ident):
            return self.local(function, expr.name)
        if isinstance(expr, ast.Unary):
            if expr.op == "&" and isinstance(expr.operand, ast.Ident):
                temp = self.temp(function)
                self.ops.append(
                    ("addr", temp, self.local(function, expr.operand.name))
                )
                return temp
            if expr.op == "*":
                inner = self.value_of(function, expr.operand)
                if inner is None:
                    return None
                temp = self.temp(function)
                self.ops.append(("load", temp, inner))
                return temp
            return self.value_of(function, expr.operand)
        if isinstance(expr, ast.Assign):
            value = self.value_of(function, expr.value)
            self.assign(function, expr.target, value)
            return value
        if isinstance(expr, ast.Call):
            return self.call(function, expr)
        if isinstance(expr, ast.Binary):
            # Pointer arithmetic etc.: both sides evaluated, the
            # pointer-valued one (if any) is the result — conservative
            # join via a temp.
            left = self.value_of(function, expr.left)
            right = self.value_of(function, expr.right)
            if left is None:
                return right
            if right is None:
                return left
            temp = self.temp(function)
            self.ops.append(("copy", temp, left))
            self.ops.append(("copy", temp, right))
            return temp
        return None  # literals, strings

    def assign(
        self, function: str, target: ast.Expr | None, value: str | None
    ) -> None:
        if value is None or target is None:
            # still lower the target for its side effects
            if target is not None:
                self.value_of(function, target)
            return
        if isinstance(target, ast.Ident):
            self.ops.append(("copy", self.local(function, target.name), value))
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            pointer = self.value_of(function, target.operand)
            if pointer is not None:
                self.ops.append(("store", pointer, value))
            return
        # struct fields / array cells: collapse onto the base object
        if isinstance(target, ast.Binary) and target.op in (".", "->", "[]"):
            base = self.value_of(function, target.left)
            if base is not None:
                if target.op == "->":
                    self.ops.append(("store", base, value))
                else:
                    self.ops.append(("copy", base, value))
            return
        self.value_of(function, target)

    def call(self, function: str, expr: ast.Call) -> str | None:
        if expr.callee == "malloc":
            for arg in expr.args:
                self.value_of(function, arg)
            heap = self.location(f"heap@{expr.line}")
            temp = self.temp(function)
            self.ops.append(("addr", temp, heap))
            return temp
        arg_values = [self.value_of(function, arg) for arg in expr.args]
        if expr.callee not in self.program.function_names:
            return None  # unknown primitive: no pointer effects
        callee = self.program.function(expr.callee)
        for param, value in zip(callee.params, arg_values):
            if value is not None:
                self.ops.append(
                    ("copy", self.local(callee.name, param), value)
                )
        return self.return_slot(callee.name)

    # -- statement walk ------------------------------------------------------

    def statement(self, function: str, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self.statement(function, inner)
        elif isinstance(stmt, ast.Decl):
            value = self.value_of(function, stmt.init)
            if value is not None:
                self.ops.append(("copy", self.local(function, stmt.name), value))
        elif isinstance(stmt, ast.ExprStmt):
            self.value_of(function, stmt.expr)
        elif isinstance(stmt, ast.If):
            self.value_of(function, stmt.cond)
            self.statement(function, stmt.then)
            if stmt.orelse is not None:
                self.statement(function, stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.value_of(function, stmt.cond)
            self.statement(function, stmt.body)
        elif isinstance(stmt, ast.Return):
            value = self.value_of(function, stmt.value)
            if value is not None:
                self.ops.append(("copy", self.return_slot(function), value))
        # Break/Continue: no pointer effects

    def run(self) -> None:
        for definition in self.program.functions:
            for stmt in definition.body.body:
                self.statement(definition.name, stmt)


def extract_pointer_ops(
    program: ast.Program,
) -> tuple[list[PointerOp], set[str]]:
    """Lower a program to primitive pointer operations and locations.

    Flow-insensitive: statement order is irrelevant to the result, as
    in classic Andersen analysis."""
    lowering = _Lowering(program)
    lowering.run()
    return lowering.ops, lowering.locations


REF = Constructor("ref", 2, variance=(True, False))


class AndersenAnalysis:
    """Set-constraint Andersen analysis (``ref`` encoding, see module doc)."""

    def __init__(self, program: ast.Program | str):
        if isinstance(program, str):
            from repro.cfg.parser import parse_program

            program = parse_program(program)
        self.program = program
        self.ops, self.locations = extract_pointer_ops(program)
        self.solver = Solver()
        self._content: dict[str, Variable] = {}
        self._by_content_var: dict[Variable, str] = {}
        self._encode()

    def content_var(self, location: str) -> Variable:
        var = self._content.get(location)
        if var is None:
            var = Variable(f"pt::{location}")
            self._content[location] = var
            self._by_content_var[var] = location
        return var

    def _ref_term(self, location: str) -> Constructed:
        content = self.content_var(location)
        return REF(content, content)

    def _encode(self) -> None:
        solver = self.solver
        for kind, dst, src in self.ops:
            if kind == "addr":
                solver.add(self._ref_term(src), self.content_var(dst))
            elif kind == "copy":
                solver.add(self.content_var(src), self.content_var(dst))
            elif kind == "load":
                solver.add(
                    REF.proj(1, self.content_var(src)), self.content_var(dst)
                )
            elif kind == "store":
                # *dst = src: P ⊆ ref(⊤, Q); the contravariant second
                # field pours Q into every pointed-to location.
                top = self.solver.fresh("top")
                solver.add(
                    self.content_var(dst),
                    REF(top, self.content_var(src)),
                )
            else:  # pragma: no cover - defensive
                raise AssertionError(kind)

    # -- queries -----------------------------------------------------------------

    def points_to(self, location: str) -> frozenset[str]:
        """The abstract locations ``location`` may point to."""
        var = self._content.get(location)
        if var is None:
            return frozenset()
        result = set()
        for src, _ann in self.solver.lower_bounds(var):
            if src.constructor.name == "ref" and src.args:
                target = self._by_content_var.get(src.args[0])
                if target is not None:
                    result.add(target)
        return frozenset(result)

    def solution(self) -> dict[str, frozenset[str]]:
        """Points-to sets for every location."""
        return {location: self.points_to(location) for location in self.locations}

    def may_alias(self, left: str, right: str) -> bool:
        return bool(self.points_to(left) & self.points_to(right))
