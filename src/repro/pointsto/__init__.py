"""Andersen-style points-to analysis for mini-C.

The paper's §7.5 discussion assumes a points-to analysis expressed in
set constraints; this package supplies one for the mini-C front end —
the classic inclusion-based (Andersen) analysis in its set-constraint
form, using the ``ref(get, set)`` constructor with a contravariant
write field (the encoding BANSHEE's points-to clients used):

    p = &x      ref(X_x, X_x) ⊆ P
    p = q       Q ⊆ P
    p = *q      ref^{-1}(Q) ⊆ P
    *p = q      P ⊆ ref(⊤, Q)        (contravariant field: Q ⊆ X_l
                                       for every location l in pt(p))

:class:`~repro.pointsto.analysis.AndersenAnalysis` runs on a parsed
program; :class:`~repro.pointsto.naive.NaiveAndersen` is an independent
textbook worklist implementation used to cross-validate it.
"""

from repro.pointsto.analysis import AndersenAnalysis, extract_pointer_ops
from repro.pointsto.naive import NaiveAndersen

__all__ = ["AndersenAnalysis", "NaiveAndersen", "extract_pointer_ops"]
