"""Textbook Andersen solver — the independent cross-validation baseline.

Operates on the same primitive operations as the set-constraint
encoding but shares none of its machinery: points-to sets are plain
Python sets, copy edges form a graph, and ``load``/``store`` are
*complex constraints* re-evaluated as points-to sets grow — the
standard worklist formulation from the literature.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.pointsto.analysis import PointerOp


class NaiveAndersen:
    """Classic worklist Andersen analysis over primitive pointer ops."""

    def __init__(self, ops: Iterable[PointerOp], locations: Iterable[str]):
        self.locations = set(locations)
        self.pts: dict[str, set[str]] = {loc: set() for loc in self.locations}
        self.copy_edges: dict[str, set[str]] = {}
        self.load_into: dict[str, set[str]] = {}  # src -> dsts with dst = *src
        self.store_from: dict[str, set[str]] = {}  # dst -> srcs with *dst = src
        work: deque[str] = deque()

        for kind, dst, src in ops:
            if kind == "addr":
                if src not in self.pts[dst]:
                    self.pts[dst].add(src)
                    work.append(dst)
            elif kind == "copy":
                self.copy_edges.setdefault(src, set()).add(dst)
            elif kind == "load":
                self.load_into.setdefault(src, set()).add(dst)
            elif kind == "store":
                self.store_from.setdefault(dst, set()).add(src)
            else:  # pragma: no cover - defensive
                raise AssertionError(kind)

        # Initial propagation over static copy edges.
        work.extend(self.locations)
        while work:
            node = work.popleft()
            node_pts = self.pts[node]
            # dynamic edges from loads: dst = *node
            for dst in self.load_into.get(node, ()):
                for pointee in node_pts:
                    self.copy_edges.setdefault(pointee, set()).add(dst)
                    if not self.pts[pointee] <= self.pts[dst]:
                        self.pts[dst] |= self.pts[pointee]
                        work.append(dst)
            # dynamic edges from stores: *node = src
            for src in self.store_from.get(node, ()):
                for pointee in node_pts:
                    self.copy_edges.setdefault(src, set()).add(pointee)
                    if not self.pts[src] <= self.pts[pointee]:
                        self.pts[pointee] |= self.pts[src]
                        work.append(pointee)
            # static propagation
            for dst in self.copy_edges.get(node, ()):
                if not node_pts <= self.pts[dst]:
                    self.pts[dst] |= node_pts
                    work.append(dst)

    def points_to(self, location: str) -> frozenset[str]:
        return frozenset(self.pts.get(location, set()))

    def solution(self) -> dict[str, frozenset[str]]:
        return {loc: frozenset(pts) for loc, pts in self.pts.items()}
