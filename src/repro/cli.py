"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``check FILE.c --property NAME`` — model-check a mini-C program
  against a temporal safety property (``simple-privilege``,
  ``full-privilege``, ``file-state``, ``chroot-jail``) with either
  engine;
* ``dataflow FILE.c --track PRIM ...`` — interprocedural "has PRIM been
  called" facts at every exec point;
* ``flow FILE.flow --query SRC DST`` — the Section 7 label-flow
  analysis on a flow-language program;
* ``machine NAME --dot`` — print a gallery machine (or its monoid
  size / DOT rendering);
* ``spec FILE.spec`` — compile a Section 8 automaton specification and
  report its states, symbols, and representative-function count;
* ``patch FILE.c --property NAME`` — differentially re-check an edited
  program through the service's hot patch session (in-process, or a
  running server with ``--connect``);
* ``serve`` — run the analysis service (stdio JSON-lines or TCP);
* ``query`` — send one service request (to a TCP server with
  ``--connect``, or to an in-process engine).

Operational errors — unreadable input files, parse failures — exit
with status 2 and a one-line diagnostic on stderr (no traceback).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

import repro
from repro.cfg import build_cfg
from repro.core.errors import SolverInterrupted
from repro.dfa.gallery import (
    adversarial_machine,
    file_state_machine,
    full_privilege_machine,
    one_bit_machine,
    pair_machine,
    privilege_machine,
)
from repro.dfa.monoid import TransitionMonoid
from repro.dfa.spec import parse_spec
from repro.modelcheck import PROPERTY_FACTORIES, AnnotatedChecker
from repro.mops import MopsChecker

#: Backwards-compatible alias; the canonical registry lives with the
#: properties so the service shares it.
PROPERTIES = PROPERTY_FACTORIES

MACHINES: dict[str, Callable] = {
    "one-bit": one_bit_machine,
    "privilege": privilege_machine,
    "full-privilege": full_privilege_machine,
    "file-state": file_state_machine,
    "pair": pair_machine,
    "adversarial-4": lambda: adversarial_machine(4),
}


def _cmd_check(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    cfg = build_cfg(source)
    prop = PROPERTIES[args.property]()
    budget = None
    if args.budget_steps is not None or args.budget_seconds is not None:
        from repro.core.budget import Budget

        budget = Budget(
            max_steps=args.budget_steps, max_seconds=args.budget_seconds
        )
    if args.engine in ("annotated", "both"):
        flat = getattr(args, "flat", False)
        shards = getattr(args, "shards", 1)
        if flat and args.traces:
            print("error: --flat records no provenance; drop --traces",
                  file=sys.stderr)
            return 2
        if shards > 1 and args.traces:
            print("error: sharded solving records no provenance; "
                  "drop --traces", file=sys.stderr)
            return 2
        checker = AnnotatedChecker(
            cfg,
            prop,
            collapse_cycles=args.collapse_cycles,
            budget=budget,
            cycle_elim=not args.no_cycle_elim,
            flat=flat,
            shards=shards,
            partition=getattr(args, "partition", "greedy"),
            # Verbose runs measure the difference-propagation invariant:
            # at the fixpoint no (fact, edge) pair composes twice.
            track_redundant=args.verbose,
        )
        result = checker.check(traces=args.traces)
        print(f"[annotated] {'VIOLATION' if result.has_violation else 'clean'} "
              f"({len(result.violations)} finding(s), "
              f"{result.facts} solved-form facts)")
        if checker.sharded is not None and args.verbose:
            solution = checker.sharded
            print(f"  shards: {solution.shards} "
                  f"(sizes {solution.plan.sizes}, "
                  f"partition {solution.plan.partition}, "
                  f"{solution.plan.frontier_edges} frontier edge(s)), "
                  f"{solution.rounds} exchange round(s), "
                  f"{solution.exchanged} fact(s) exchanged")
            for row in solution.shard_stats():
                print(f"    shard {row['shard']}: {row['facts']} facts, "
                      f"{row['compositions']} compositions, "
                      f"{row['frontier_edges']} frontier edge(s)")
        if args.verbose:
            for field, value in checker.solver.stats.as_dict().items():
                print(f"  {field:22} {value}")
            redundant = checker.solver.stats.redundant_compositions
            status = "OK" if redundant == 0 else "VIOLATED"
            print(f"  fixpoint invariant: redundant_compositions == 0 [{status}]")
        shown = 0
        for violation in result.violations:
            if shown >= args.max_findings:
                remaining = len(result.violations) - shown
                print(f"  ... and {remaining} more")
                break
            print(f"  {violation.describe()}")
            if args.traces:
                for step in violation.trace:
                    print(f"      {step.describe()}")
            shown += 1
    if args.engine == "demand":
        from repro.modelcheck import DemandChecker

        checker = DemandChecker(cfg, prop)
        result_has = checker.has_violation()
        print(f"[demand]    {'VIOLATION' if result_has else 'clean'} "
              f"({len(checker.violation_nodes())} error node(s))")
        for node in checker.violation_nodes()[: args.max_findings]:
            print(f"  error reachable at {node.describe()}")
        return 1 if result_has else 0
    if args.engine in ("mops", "both"):
        result = MopsChecker(cfg, prop).check()
        print(f"[mops]      {'VIOLATION' if result.has_violation else 'clean'} "
              f"({len(result.error_nodes)} error node(s))")
        for node in result.error_nodes[: args.max_findings]:
            print(f"  error reachable at {node.describe()}")
    has = (
        AnnotatedChecker(cfg, prop).has_violation()
        if args.engine == "mops"
        else result.has_violation
    )
    return 1 if has else 0


def _cmd_dataflow(args: argparse.Namespace) -> int:
    from repro.dataflow import AnnotatedBitVectorAnalysis
    from repro.dataflow.problems import call_tracking_problem

    with open(args.file) as handle:
        source = handle.read()
    cfg = build_cfg(source)
    problem = call_tracking_problem(cfg, args.track)
    analysis = AnnotatedBitVectorAnalysis(cfg, problem)
    print(f"facts: {', '.join(problem.facts)}")
    for node in cfg.all_nodes():
        if node.call is None:
            continue
        held = analysis.may_hold(node)
        if held:
            names = ", ".join(problem.facts[i] for i in sorted(held))
            print(f"  {node.describe():40} may-hold: {names}")
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.flow import FlowAnalysis

    with open(args.file) as handle:
        source = handle.read()
    analysis = FlowAnalysis(source, pn=args.pn)
    print(f"labels: {', '.join(sorted(analysis.labels))}")
    print(f"bracket machine: {analysis.machine_states} states, "
          f"monoid {analysis.monoid_size}")
    if args.query:
        src, dst = args.query
        verdict = analysis.flows(src, dst)
        print(f"{src} -> {dst}: {verdict}")
        return 0 if verdict else 1
    for src, dst in sorted(analysis.flow_pairs()):
        print(f"  {src} -> {dst}")
    return 0


def _cmd_machine(args: argparse.Namespace) -> int:
    machine = MACHINES[args.name]()
    monoid = TransitionMonoid(machine, max_size=100_000)
    print(f"machine {args.name}: {machine.n_states} states, "
          f"{len(machine.alphabet)} symbols, |F_M| = {monoid.size()}")
    if args.dot:
        from repro.render import dfa_to_dot

        print(dfa_to_dot(machine, title=args.name))
    return 0


def _cmd_specialize(args: argparse.Namespace) -> int:
    import json

    with open(args.file) as handle:
        spec = parse_spec(handle.read())
    machine = spec.to_dfa()
    monoid = TransitionMonoid(machine, max_size=args.max_size)
    elements, table = monoid.composition_table()
    payload = {
        "states": spec.states,
        "start": spec.start,
        "accepting": sorted(spec.accepting),
        "alphabet": sorted(spec.symbols),
        "functions": [list(fn.mapping) for fn in elements],
        "accepting_functions": [
            i for i, fn in enumerate(elements) if monoid.is_accepting(fn)
        ],
        "compose": table,
    }
    text = json.dumps(payload, indent=None if args.compact else 2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"specialized {len(elements)} representative functions "
              f"-> {args.output}")
    else:
        print(text)
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        spec = parse_spec(handle.read())
    machine = spec.to_dfa()
    monoid = TransitionMonoid(machine, max_size=200_000)
    print(f"states: {', '.join(spec.states)} (start {spec.start}, "
          f"accept {sorted(spec.accepting)})")
    print(f"symbols: {', '.join(sorted(spec.symbols))}")
    if spec.parametric_symbols:
        print(f"parametric: {', '.join(sorted(spec.parametric_symbols))}")
    print(f"|F_M| = {monoid.size()}")
    if args.dot:
        from repro.render import dfa_to_dot

        names = {i: name for i, name in enumerate(spec.states)}
        print(dfa_to_dot(machine, state_names=names, title="spec"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service import AnalysisEngine, AnalysisServer

    engine = AnalysisEngine(
        cache_size=args.cache_size,
        snapshot_dir=args.snapshot_dir,
        journal_dir=args.journal_dir,
        journal_fsync_every=args.journal_fsync_batch,
        journal_compact_every=args.journal_compact_every,
        shards=args.shards,
        partition=args.partition,
    )
    if engine.recoveries:
        print(
            f"repro service recovered {engine.recoveries} hot session(s) "
            "from the journal",
            file=sys.stderr,
        )
    if args.process_pool:
        return _serve_process_pool(args, engine)
    server = AnalysisServer(
        engine,
        workers=args.workers,
        timeout=args.timeout,
        max_queue=args.max_queue,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )

    def _on_signal(signum: int, _frame: object) -> None:
        # Only flag shutdown here; the main thread runs the drain so the
        # handler stays async-signal-safe.
        print(
            f"repro service caught {signal.Signals(signum).name}; draining",
            file=sys.stderr,
        )
        server.signal_shutdown()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    if args.tcp:
        host, _sep, port_text = args.tcp.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            raise CLIError(f"invalid --tcp address {args.tcp!r} (want HOST:PORT)")
        bound_host, bound_port = server.start_tcp(host, port)
        print(f"repro service listening on {bound_host}:{bound_port}", file=sys.stderr)
    else:
        # stdio serving runs on a helper thread so the main thread can
        # still observe SIGTERM/SIGINT and run the graceful drain.
        threading.Thread(target=server.serve_stdio, daemon=True).start()
    try:
        server.wait()
    except KeyboardInterrupt:  # pragma: no cover - handler normally wins
        pass
    outcome = server.drain(args.drain_seconds)
    print(
        f"repro service drained: {outcome['drained']} request(s) finished, "
        f"{outcome['cancelled']} cancelled, "
        f"{outcome['checkpointed']} session(s) checkpointed",
        file=sys.stderr,
    )
    return 0


def _serve_process_pool(args: argparse.Namespace, engine) -> int:
    """``serve --process-pool``: the selectors front door + worker pool."""
    import signal

    from repro.modelcheck import PROPERTY_FACTORIES
    from repro.service.frontdoor import AsyncAnalysisServer

    if not args.tcp:
        raise CLIError("--process-pool requires --tcp HOST:PORT")
    if args.preload == "all":
        preload = sorted(PROPERTY_FACTORIES)
    else:
        preload = [name for name in args.preload.split(",") if name]
    host, _sep, port_text = args.tcp.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise CLIError(f"invalid --tcp address {args.tcp!r} (want HOST:PORT)")
    server = AsyncAnalysisServer(
        engine,
        workers=args.workers,
        preload=preload,
        shards=args.shards,
        partition=args.partition,
        timeout=args.timeout,
        max_queue=args.max_queue,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )

    def _on_signal(signum: int, _frame: object) -> None:
        print(
            f"repro service caught {signal.Signals(signum).name}; draining",
            file=sys.stderr,
        )
        server._shutdown.set()
        server._wake()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    bound_host, bound_port = server.start(host, port)
    print(
        f"repro service listening on {bound_host}:{bound_port} "
        f"({args.workers} process worker(s), {args.shards} shard(s), "
        f"{len(preload)} preloaded propert{'y' if len(preload) == 1 else 'ies'})",
        file=sys.stderr,
    )
    try:
        server.wait()
    except KeyboardInterrupt:  # pragma: no cover - handler normally wins
        pass
    server.close(drain_timeout=args.drain_seconds)
    print("repro service stopped", file=sys.stderr)
    return 0


def _cmd_patch(args: argparse.Namespace) -> int:
    import time as _time

    with open(args.file) as handle:
        program = handle.read()
    params: dict = {"program": program, "property": args.property}
    if args.base:
        params["base"] = args.base
    if args.deadline_seconds is not None:
        params["deadline"] = _time.time() + args.deadline_seconds
    if args.connect:
        from repro.service import ServiceClient, ServiceError

        host, _sep, port_text = args.connect.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            raise CLIError(f"invalid --connect address {args.connect!r}")
        try:
            with ServiceClient(host, port, retries=args.retries) as client:
                # client.patch attaches the idempotency key, so the
                # CLI's transport retries are safe for this
                # state-advancing op too.
                result = client.patch(key=args.key, **params)
        except ServiceError as exc:
            raise CLIError(f"service error {exc.code}: {exc.message}")
        except OSError as exc:
            raise CLIError(f"cannot reach {host}:{port}: {exc}")
    else:
        from repro.service import AnalysisEngine, EngineError

        try:
            result = AnalysisEngine().dispatch("patch", params)
        except EngineError as exc:
            raise CLIError(f"{exc.code}: {exc.message}")
    print(json.dumps(result, indent=2, sort_keys=True))
    return 1 if result.get("has_violation") else 0


def _cmd_query(args: argparse.Namespace) -> int:
    params: dict = {}
    if args.op in ("check", "dataflow", "flow"):
        if not args.file:
            raise CLIError(f"query {args.op} requires a program FILE")
        with open(args.file) as handle:
            params["program"] = handle.read()
    if args.op == "check":
        if not args.property:
            raise CLIError("query check requires --property")
        params["property"] = args.property
        params["traces"] = args.traces
    elif args.op == "dataflow":
        if not args.track:
            raise CLIError("query dataflow requires --track")
        params["track"] = args.track
    elif args.op == "flow":
        if args.flow_query:
            params["query"] = list(args.flow_query)
        if args.assume:
            for pair in args.assume:
                if ":" not in pair:
                    raise CLIError(
                        f"invalid --assume value {pair!r} (want SRC:DST)"
                    )
            params["assume"] = [pair.split(":", 1) for pair in args.assume]
        params["pn"] = args.pn
    if args.deadline_seconds is not None and args.op in (
        "check",
        "dataflow",
        "flow",
    ):
        import time as _time

        params["deadline"] = _time.time() + args.deadline_seconds

    if args.connect:
        from repro.service import ServiceClient, ServiceError

        host, _sep, port_text = args.connect.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            raise CLIError(f"invalid --connect address {args.connect!r}")
        try:
            with ServiceClient(host, port, retries=args.retries) as client:
                result = client.request(args.op, **params)
        except ServiceError as exc:
            raise CLIError(f"service error {exc.code}: {exc.message}")
        except OSError as exc:
            raise CLIError(f"cannot reach {host}:{port}: {exc}")
    else:
        from repro.service import AnalysisEngine, EngineError

        try:
            result = AnalysisEngine().dispatch(args.op, params)
        except EngineError as exc:
            raise CLIError(f"{exc.code}: {exc.message}")
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regularly annotated set constraints (PLDI 2007)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="model-check a mini-C program")
    check.add_argument("file")
    check.add_argument("--property", choices=sorted(PROPERTIES), required=True)
    check.add_argument(
        "--engine",
        choices=["annotated", "mops", "demand", "both"],
        default="annotated",
    )
    check.add_argument("--traces", action="store_true", help="print witnesses")
    check.add_argument(
        "--flat",
        action="store_true",
        help="solve on the flat-array core (compiled algebra, no witness "
        "provenance; incompatible with --traces)",
    )
    check.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="partition the constraint graph into K regions solved "
        "independently and stitched to the same solved form "
        "(repro.core.partition; no witness provenance)",
    )
    check.add_argument(
        "--partition",
        choices=["greedy", "roundrobin"],
        default="greedy",
        help="shard placement strategy: 'greedy' refines a locality-"
        "aware min-cut (fewer frontier edges, smaller exchange); "
        "'roundrobin' is the baseline — both reach the same solved form",
    )
    check.add_argument("--collapse-cycles", action="store_true")
    check.add_argument(
        "--no-cycle-elim",
        action="store_true",
        help="disable online cycle elimination (identity-annotated SCC merging)",
    )
    check.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print solver statistics (facts, merges, find calls, ...)",
    )
    check.add_argument("--max-findings", type=int, default=10)
    check.add_argument(
        "--budget-steps",
        type=int,
        metavar="N",
        help="abort the solve after N worklist steps (exit status 3)",
    )
    check.add_argument(
        "--budget-seconds",
        type=float,
        metavar="S",
        help="abort the solve after S wall-clock seconds (exit status 3)",
    )
    check.set_defaults(handler=_cmd_check)

    dataflow = commands.add_parser("dataflow", help="interprocedural gen/kill")
    dataflow.add_argument("file")
    dataflow.add_argument("--track", nargs="+", required=True)
    dataflow.set_defaults(handler=_cmd_dataflow)

    flow = commands.add_parser("flow", help="Section 7 label-flow analysis")
    flow.add_argument("file")
    flow.add_argument("--query", nargs=2, metavar=("SRC", "DST"))
    flow.add_argument("--pn", action="store_true", help="partially matched paths")
    flow.set_defaults(handler=_cmd_flow)

    machine = commands.add_parser("machine", help="inspect a gallery machine")
    machine.add_argument("name", choices=sorted(MACHINES))
    machine.add_argument("--dot", action="store_true")
    machine.set_defaults(handler=_cmd_machine)

    spec = commands.add_parser("spec", help="compile a §8 automaton spec")
    spec.add_argument("file")
    spec.add_argument("--dot", action="store_true")
    spec.set_defaults(handler=_cmd_spec)

    specialize = commands.add_parser(
        "specialize",
        help="emit the §8 specializer output: F_M and its ∘ lookup table",
    )
    specialize.add_argument("file")
    specialize.add_argument("-o", "--output")
    specialize.add_argument("--compact", action="store_true")
    specialize.add_argument("--max-size", type=int, default=100_000)
    specialize.set_defaults(handler=_cmd_specialize)

    serve = commands.add_parser(
        "serve", help="run the analysis service (stdio JSON-lines or TCP)"
    )
    serve.add_argument(
        "--tcp", metavar="HOST:PORT", help="listen on TCP instead of stdio"
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="partition each cold solve into K stitched regions "
        "(repro.core.partition)",
    )
    serve.add_argument(
        "--partition",
        choices=["greedy", "roundrobin"],
        default="greedy",
        help="shard placement strategy for cold solves (see 'check')",
    )
    serve.add_argument(
        "--process-pool",
        action="store_true",
        help="serve through the selectors front door with a pool of "
        "worker *processes* (true CPU parallelism; requires --tcp); "
        "patches stay in this process (single journal writer)",
    )
    serve.add_argument(
        "--preload",
        metavar="PROPS",
        default="",
        help="comma-separated property names every pool worker compiles "
        "at startup ('all' = every known property)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, help="per-request timeout (seconds)"
    )
    serve.add_argument("--cache-size", type=int, default=64)
    serve.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="analysis requests queued beyond the workers before shedding",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive failures before a request fingerprint is refused",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        help="seconds a tripped fingerprint stays refused before a probe",
    )
    serve.add_argument(
        "--snapshot-dir", help="persist/reload solved systems in this directory"
    )
    serve.add_argument(
        "--journal-dir",
        help="crash-durable write-ahead journal for hot patch sessions; "
        "a restarted server replays it and recovers the sessions warm",
    )
    serve.add_argument(
        "--journal-fsync-batch",
        type=int,
        default=1,
        metavar="N",
        help="fsync the journal every N appends (group commit; 1 = "
        "every record durable before its patch applies)",
    )
    serve.add_argument(
        "--journal-compact-every",
        type=int,
        default=256,
        metavar="N",
        help="snapshot-compact a session's journal every N records",
    )
    serve.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        metavar="S",
        help="on SIGTERM/SIGINT, wait up to S seconds for in-flight "
        "requests before cancelling them and checkpointing sessions",
    )
    serve.set_defaults(handler=_cmd_serve)

    patch = commands.add_parser(
        "patch",
        help="differentially re-check an edited program via the service",
    )
    patch.add_argument("file")
    patch.add_argument("--property", choices=sorted(PROPERTIES), required=True)
    patch.add_argument(
        "--base",
        help="expected base version token (the 'version' of a prior response); "
        "a mismatch falls back to a cold solve",
    )
    patch.add_argument(
        "--connect", metavar="HOST:PORT", help="send to a running TCP service"
    )
    patch.add_argument("--retries", type=int, default=0)
    patch.add_argument(
        "--key",
        help="explicit idempotency key (defaults to a generated one); "
        "a retried, already-applied patch returns the recorded result",
    )
    patch.add_argument(
        "--deadline-seconds",
        type=float,
        metavar="S",
        help="absolute deadline S seconds from now, propagated end to "
        "end (expired work is refused with deadline-exceeded)",
    )
    patch.set_defaults(handler=_cmd_patch)

    query = commands.add_parser(
        "query", help="send one analysis-service request and print the result"
    )
    query.add_argument("op", choices=["check", "dataflow", "flow", "stats", "ping"])
    query.add_argument("file", nargs="?", help="program file (check/dataflow/flow)")
    query.add_argument(
        "--connect", metavar="HOST:PORT", help="query a running TCP server"
    )
    query.add_argument("--property", choices=sorted(PROPERTIES))
    query.add_argument("--traces", action="store_true")
    query.add_argument("--track", nargs="+")
    query.add_argument("--flow-query", nargs=2, metavar=("SRC", "DST"))
    query.add_argument(
        "--assume",
        nargs="+",
        metavar="SRC:DST",
        help="speculative label flows for a what-if flow query",
    )
    query.add_argument("--pn", action="store_true")
    query.add_argument(
        "--retries",
        type=int,
        default=2,
        help="reconnect attempts on connection failure (--connect only)",
    )
    query.add_argument(
        "--deadline-seconds",
        type=float,
        metavar="S",
        help="absolute deadline S seconds from now (analysis ops only)",
    )
    query.set_defaults(handler=_cmd_query)

    return parser


class CLIError(Exception):
    """An operational CLI failure: reported on one line, exit status 2."""


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except CLIError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except SolverInterrupted as exc:
        # Budget exhaustion / cancellation is a governed outcome, not a
        # crash: distinct exit status so drivers can tell it apart.
        print(
            f"repro: interrupted: {exc} (progress: {exc.progress})",
            file=sys.stderr,
        )
        return 3
    except OSError as exc:
        target = getattr(exc, "filename", None)
        where = f" {target!r}" if target else ""
        print(f"repro: error: cannot read{where}: {exc.strerror or exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # ParseError / LexError / FlowSyntaxError / SpecSyntaxError all
        # derive from ValueError: a one-line diagnostic, not a traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
