"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``check FILE.c --property NAME`` — model-check a mini-C program
  against a temporal safety property (``simple-privilege``,
  ``full-privilege``, ``file-state``, ``chroot-jail``) with either
  engine;
* ``dataflow FILE.c --track PRIM ...`` — interprocedural "has PRIM been
  called" facts at every exec point;
* ``flow FILE.flow --query SRC DST`` — the Section 7 label-flow
  analysis on a flow-language program;
* ``machine NAME --dot`` — print a gallery machine (or its monoid
  size / DOT rendering);
* ``spec FILE.spec`` — compile a Section 8 automaton specification and
  report its states, symbols, and representative-function count.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.cfg import build_cfg
from repro.dfa.gallery import (
    adversarial_machine,
    file_state_machine,
    full_privilege_machine,
    one_bit_machine,
    pair_machine,
    privilege_machine,
)
from repro.dfa.monoid import TransitionMonoid
from repro.dfa.spec import parse_spec
from repro.modelcheck import (
    AnnotatedChecker,
    chroot_property,
    file_state_property,
    full_privilege_property,
    simple_privilege_property,
)
from repro.mops import MopsChecker

PROPERTIES: dict[str, Callable] = {
    "simple-privilege": simple_privilege_property,
    "full-privilege": full_privilege_property,
    "file-state": file_state_property,
    "chroot-jail": chroot_property,
}

MACHINES: dict[str, Callable] = {
    "one-bit": one_bit_machine,
    "privilege": privilege_machine,
    "full-privilege": full_privilege_machine,
    "file-state": file_state_machine,
    "pair": pair_machine,
    "adversarial-4": lambda: adversarial_machine(4),
}


def _cmd_check(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    cfg = build_cfg(source)
    prop = PROPERTIES[args.property]()
    if args.engine in ("annotated", "both"):
        checker = AnnotatedChecker(cfg, prop, collapse_cycles=args.collapse_cycles)
        result = checker.check(traces=args.traces)
        print(f"[annotated] {'VIOLATION' if result.has_violation else 'clean'} "
              f"({len(result.violations)} finding(s), "
              f"{result.facts} solved-form facts)")
        shown = 0
        for violation in result.violations:
            if shown >= args.max_findings:
                remaining = len(result.violations) - shown
                print(f"  ... and {remaining} more")
                break
            print(f"  {violation.describe()}")
            if args.traces:
                for step in violation.trace:
                    print(f"      {step.describe()}")
            shown += 1
    if args.engine == "demand":
        from repro.modelcheck import DemandChecker

        checker = DemandChecker(cfg, prop)
        result_has = checker.has_violation()
        print(f"[demand]    {'VIOLATION' if result_has else 'clean'} "
              f"({len(checker.violation_nodes())} error node(s))")
        for node in checker.violation_nodes()[: args.max_findings]:
            print(f"  error reachable at {node.describe()}")
        return 1 if result_has else 0
    if args.engine in ("mops", "both"):
        result = MopsChecker(cfg, prop).check()
        print(f"[mops]      {'VIOLATION' if result.has_violation else 'clean'} "
              f"({len(result.error_nodes)} error node(s))")
        for node in result.error_nodes[: args.max_findings]:
            print(f"  error reachable at {node.describe()}")
    has = (
        AnnotatedChecker(cfg, prop).has_violation()
        if args.engine == "mops"
        else result.has_violation
    )
    return 1 if has else 0


def _cmd_dataflow(args: argparse.Namespace) -> int:
    from repro.dataflow import AnnotatedBitVectorAnalysis
    from repro.dataflow.problems import call_tracking_problem

    with open(args.file) as handle:
        source = handle.read()
    cfg = build_cfg(source)
    problem = call_tracking_problem(cfg, args.track)
    analysis = AnnotatedBitVectorAnalysis(cfg, problem)
    print(f"facts: {', '.join(problem.facts)}")
    for node in cfg.all_nodes():
        if node.call is None:
            continue
        held = analysis.may_hold(node)
        if held:
            names = ", ".join(problem.facts[i] for i in sorted(held))
            print(f"  {node.describe():40} may-hold: {names}")
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.flow import FlowAnalysis

    with open(args.file) as handle:
        source = handle.read()
    analysis = FlowAnalysis(source, pn=args.pn)
    print(f"labels: {', '.join(sorted(analysis.labels))}")
    print(f"bracket machine: {analysis.machine_states} states, "
          f"monoid {analysis.monoid_size}")
    if args.query:
        src, dst = args.query
        verdict = analysis.flows(src, dst)
        print(f"{src} -> {dst}: {verdict}")
        return 0 if verdict else 1
    for src, dst in sorted(analysis.flow_pairs()):
        print(f"  {src} -> {dst}")
    return 0


def _cmd_machine(args: argparse.Namespace) -> int:
    machine = MACHINES[args.name]()
    monoid = TransitionMonoid(machine, max_size=100_000)
    print(f"machine {args.name}: {machine.n_states} states, "
          f"{len(machine.alphabet)} symbols, |F_M| = {monoid.size()}")
    if args.dot:
        from repro.render import dfa_to_dot

        print(dfa_to_dot(machine, title=args.name))
    return 0


def _cmd_specialize(args: argparse.Namespace) -> int:
    import json

    with open(args.file) as handle:
        spec = parse_spec(handle.read())
    machine = spec.to_dfa()
    monoid = TransitionMonoid(machine, max_size=args.max_size)
    elements, table = monoid.composition_table()
    payload = {
        "states": spec.states,
        "start": spec.start,
        "accepting": sorted(spec.accepting),
        "alphabet": sorted(spec.symbols),
        "functions": [list(fn.mapping) for fn in elements],
        "accepting_functions": [
            i for i, fn in enumerate(elements) if monoid.is_accepting(fn)
        ],
        "compose": table,
    }
    text = json.dumps(payload, indent=None if args.compact else 2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"specialized {len(elements)} representative functions "
              f"-> {args.output}")
    else:
        print(text)
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        spec = parse_spec(handle.read())
    machine = spec.to_dfa()
    monoid = TransitionMonoid(machine, max_size=200_000)
    print(f"states: {', '.join(spec.states)} (start {spec.start}, "
          f"accept {sorted(spec.accepting)})")
    print(f"symbols: {', '.join(sorted(spec.symbols))}")
    if spec.parametric_symbols:
        print(f"parametric: {', '.join(sorted(spec.parametric_symbols))}")
    print(f"|F_M| = {monoid.size()}")
    if args.dot:
        from repro.render import dfa_to_dot

        names = {i: name for i, name in enumerate(spec.states)}
        print(dfa_to_dot(machine, state_names=names, title="spec"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regularly annotated set constraints (PLDI 2007)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="model-check a mini-C program")
    check.add_argument("file")
    check.add_argument("--property", choices=sorted(PROPERTIES), required=True)
    check.add_argument(
        "--engine",
        choices=["annotated", "mops", "demand", "both"],
        default="annotated",
    )
    check.add_argument("--traces", action="store_true", help="print witnesses")
    check.add_argument("--collapse-cycles", action="store_true")
    check.add_argument("--max-findings", type=int, default=10)
    check.set_defaults(handler=_cmd_check)

    dataflow = commands.add_parser("dataflow", help="interprocedural gen/kill")
    dataflow.add_argument("file")
    dataflow.add_argument("--track", nargs="+", required=True)
    dataflow.set_defaults(handler=_cmd_dataflow)

    flow = commands.add_parser("flow", help="Section 7 label-flow analysis")
    flow.add_argument("file")
    flow.add_argument("--query", nargs=2, metavar=("SRC", "DST"))
    flow.add_argument("--pn", action="store_true", help="partially matched paths")
    flow.set_defaults(handler=_cmd_flow)

    machine = commands.add_parser("machine", help="inspect a gallery machine")
    machine.add_argument("name", choices=sorted(MACHINES))
    machine.add_argument("--dot", action="store_true")
    machine.set_defaults(handler=_cmd_machine)

    spec = commands.add_parser("spec", help="compile a §8 automaton spec")
    spec.add_argument("file")
    spec.add_argument("--dot", action="store_true")
    spec.set_defaults(handler=_cmd_spec)

    specialize = commands.add_parser(
        "specialize",
        help="emit the §8 specializer output: F_M and its ∘ lookup table",
    )
    specialize.add_argument("file")
    specialize.add_argument("-o", "--output")
    specialize.add_argument("--compact", action="store_true")
    specialize.add_argument("--max-size", type=int, default=100_000)
    specialize.set_defaults(handler=_cmd_specialize)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
