"""Concurrent JSON-lines server for the analysis engine.

Two transports over the same :mod:`repro.service.protocol`:

* **stdio** — requests on stdin, responses on stdout, one JSON object
  per line.  The mode an editor/driver process embeds.
* **TCP** — a listening socket; each connection is served by its own
  reader thread and may pipeline requests (responses carry the request
  id and may arrive out of order).

All analysis work runs on a shared worker pool bounded by ``workers``,
so a flood of connections cannot oversubscribe the process.  Each
request gets:

* a **timeout** (optional): if the analysis does not finish in time the
  client receives a ``timeout`` error (the worker finishes in the
  background and warms the cache for a retry);
* **fault isolation**: any exception — a parse error in the submitted
  program, an inconsistent system, a bug — is converted into an error
  response on that request alone; the server keeps serving.

Shutdown is graceful: the ``shutdown`` op (or :meth:`AnalysisServer.close`)
stops accepting new work, acknowledges the requester, unblocks the
accept loop, and drains the pool.
"""

from __future__ import annotations

import socket
import sys
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import IO, Any

from repro.service import protocol
from repro.service.engine import AnalysisEngine, EngineError
from repro.service.metrics import Metrics


class AnalysisServer:
    """A front door serving protocol requests against one engine."""

    def __init__(
        self,
        engine: AnalysisEngine | None = None,
        workers: int = 4,
        timeout: float | None = None,
        metrics: Metrics | None = None,
    ):
        if engine is None:
            engine = AnalysisEngine(metrics=metrics)
        self.engine = engine
        self.metrics = engine.metrics
        self.timeout = timeout
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-worker"
        )
        self._shutdown = threading.Event()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()

    @property
    def closing(self) -> bool:
        return self._shutdown.is_set()

    # -- request handling ------------------------------------------------------

    def _run(self, request: protocol.Request) -> protocol.Response:
        """Execute one request on the calling thread (fault-isolated)."""
        try:
            result = self.engine.dispatch(request.op, request.params)
            return protocol.ok_response(request.id, result)
        except EngineError as exc:
            return protocol.error_response(request.id, exc.code, exc.message)
        except Exception as exc:  # fault isolation: never kill the server
            return protocol.error_response(
                request.id,
                protocol.E_INTERNAL,
                f"{type(exc).__name__}: {exc}",
            )

    def process_line(self, line: str) -> str:
        """Handle one raw request line, always returning a response line.

        This is the whole per-request pipeline (decode → dispatch on the
        pool with timeout → encode) and is what both transports call; it
        is also handy for tests and in-process embedding.
        """
        self.metrics.incr("requests.total")
        try:
            request = protocol.decode_request(line)
        except protocol.ProtocolError as exc:
            self.metrics.incr("requests.failed")
            return protocol.encode_response(
                protocol.error_response(exc.request_id, exc.code, exc.message)
            )
        self.metrics.incr(f"requests.{request.op}")
        if request.op == "shutdown":
            self._shutdown.set()
            return protocol.encode_response(
                protocol.ok_response(request.id, {"closing": True})
            )
        if self._shutdown.is_set():
            self.metrics.incr("requests.failed")
            return protocol.encode_response(
                protocol.error_response(
                    request.id, protocol.E_SHUTTING_DOWN, "server is shutting down"
                )
            )
        with self.metrics.time("request"):
            future: Future = self._pool.submit(self._run, request)
            try:
                response = future.result(timeout=self.timeout)
            except FutureTimeoutError:
                self.metrics.incr("requests.timeout")
                response = protocol.error_response(
                    request.id,
                    protocol.E_TIMEOUT,
                    f"request did not finish within {self.timeout}s",
                )
        if not response.ok:
            self.metrics.incr("requests.failed")
        return protocol.encode_response(response)

    # -- stdio transport -------------------------------------------------------

    def serve_stdio(
        self, stdin: IO[str] | None = None, stdout: IO[str] | None = None
    ) -> None:
        """Serve requests from ``stdin`` until EOF or shutdown."""
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            stdout.write(self.process_line(line) + "\n")
            stdout.flush()
            if self._shutdown.is_set():
                break
        self.close()

    # -- TCP transport ---------------------------------------------------------

    def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start accepting in a background thread.

        Returns the bound ``(host, port)`` — pass ``port=0`` to let the
        OS pick one (tests do).
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        self._accept_thread.start()
        return listener.getsockname()[:2]

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed
            with self._conn_lock:
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        pending: list[threading.Thread] = []

        def answer(raw: bytes) -> None:
            reply = self.process_line(raw.decode("utf-8", "replace"))
            with write_lock:
                try:
                    conn.sendall(reply.encode("utf-8") + b"\n")
                except OSError:
                    pass  # client went away; nothing to do

        try:
            buffer = b""
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    raw, buffer = buffer.split(b"\n", 1)
                    if not raw.strip():
                        continue
                    # Pipelining: each request is answered from its own
                    # thread; process_line already bounds real work via
                    # the shared pool.
                    worker = threading.Thread(
                        target=answer, args=(raw,), daemon=True
                    )
                    worker.start()
                    pending.append(worker)
                if self._shutdown.is_set():
                    break
        except OSError:
            pass
        finally:
            for worker in pending:
                worker.join(timeout=5)
            try:
                conn.close()
            except OSError:
                pass
            with self._conn_lock:
                self._connections.discard(conn)
            if self._shutdown.is_set():
                self.close()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until shutdown is requested; True if it was."""
        return self._shutdown.wait(timeout)

    def close(self) -> None:
        """Stop accepting, close the listener and connections, drain."""
        self._shutdown.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "AnalysisServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
