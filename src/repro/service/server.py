"""Concurrent JSON-lines server for the analysis engine.

Two transports over the same :mod:`repro.service.protocol`:

* **stdio** — requests on stdin, responses on stdout, one JSON object
  per line.  The mode an editor/driver process embeds.
* **TCP** — a listening socket; each connection is served by its own
  reader thread and may pipeline requests (responses carry the request
  id and may arrive out of order).

All analysis work runs on a shared worker pool bounded by ``workers``,
so a flood of connections cannot oversubscribe the process.  Each
request gets:

* a **timeout** (optional): if the analysis does not finish in time the
  client receives a ``timeout`` error *and* the worker is actually
  revoked — a :class:`~repro.core.budget.CancellationToken` is
  cancelled, the solver stops at its next budget check point, and the
  pool slot is released (no leaked busy thread warming a cache nobody
  asked for);
* **deadline propagation**: a client-sent absolute ``deadline`` param
  is honored end to end — expired work is refused before admission
  (``deadline-exceeded``), and the remaining time caps both the waiter
  and the solve budget, so a solve never outlives its caller;
* **admission control**: at most ``workers + max_queue`` analysis
  requests are in flight; beyond that new work is shed immediately with
  the ``overloaded`` error instead of queueing unboundedly;
* a **circuit breaker**: a request fingerprint (op + params) that keeps
  failing on resource grounds is refused with ``circuit-open`` until a
  cooldown elapses, then a single probe is admitted (half-open);
* **fault isolation**: any exception — a parse error in the submitted
  program, an inconsistent system, a bug — is converted into an error
  response on that request alone; the server keeps serving.

Shutdown is graceful: the ``shutdown`` op (or :meth:`AnalysisServer.close`)
stops accepting new work, acknowledges the requester, unblocks the
accept loop, cancels every outstanding request's token, and drains the
pool.  :meth:`AnalysisServer.drain` is the stronger form the CLI wires
to SIGTERM/SIGINT: it *waits* for in-flight work (up to a drain
deadline) before cancelling, then checkpoints hot patch sessions to
their journals so a restarted server recovers them warm.
"""

from __future__ import annotations

import hashlib
import json
import socket
import sys
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import IO, Any

from repro.core.budget import Budget, CancellationToken
from repro.service import protocol
from repro.service.engine import AnalysisEngine, EngineError
from repro.service.metrics import Metrics

#: Ops that run real analysis work — governed by admission control,
#: budgets, and the circuit breaker.  ``ping``/``stats`` stay exempt so
#: health checks keep answering while the server sheds load.
ANALYSIS_OPS = frozenset({"check", "patch", "dataflow", "flow"})

#: Error codes that count as breaker failures: resource exhaustion and
#: crashes, not deterministic client mistakes like parse errors.
_BREAKER_CODES = frozenset(
    {
        protocol.E_TIMEOUT,
        protocol.E_CANCELLED,
        protocol.E_BUDGET,
        protocol.E_INTERNAL,
    }
)


def request_fingerprint(op: str, params: dict) -> str:
    """A stable identity for "the same request" (breaker bucketing)."""
    payload = json.dumps(
        {"op": op, "params": params}, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class CircuitBreaker:
    """Consecutive-failure breaker keyed by request fingerprint.

    After ``threshold`` consecutive failures the fingerprint is *open*:
    requests are refused without running.  Once ``cooldown`` seconds
    have passed one probe request is admitted (*half-open*); success
    closes the circuit, another failure re-opens it for a fresh
    cooldown.  Thread-safe.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 30.0):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold!r}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown!r}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        # fingerprint -> (consecutive failures, time of last transition)
        self._state: dict[str, tuple[int, float]] = {}

    def is_open(self, fingerprint: str) -> bool:
        """True if the request must be refused (and no probe is due)."""
        with self._lock:
            entry = self._state.get(fingerprint)
            if entry is None:
                return False
            failures, stamp = entry
            if failures < self.threshold:
                return False
            if time.monotonic() - stamp >= self.cooldown:
                # Half-open: admit this one probe and restart the clock
                # so concurrent callers don't all pile onto it.
                self._state[fingerprint] = (failures, time.monotonic())
                return False
            return True

    def record_success(self, fingerprint: str) -> None:
        with self._lock:
            self._state.pop(fingerprint, None)

    def record_failure(self, fingerprint: str) -> None:
        with self._lock:
            failures, _stamp = self._state.get(fingerprint, (0, 0.0))
            self._state[fingerprint] = (failures + 1, time.monotonic())


class AnalysisServer:
    """A front door serving protocol requests against one engine."""

    def __init__(
        self,
        engine: AnalysisEngine | None = None,
        workers: int = 4,
        timeout: float | None = None,
        metrics: Metrics | None = None,
        max_queue: int = 32,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
    ):
        if engine is None:
            engine = AnalysisEngine(metrics=metrics)
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue!r}")
        self.engine = engine
        self.metrics = engine.metrics
        self.timeout = timeout
        self.workers = workers
        self.max_queue = max_queue
        self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-worker"
        )
        self._shutdown = threading.Event()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        # Admission state: analysis requests currently admitted (queued
        # or running) and their cancellation tokens (for shutdown).
        self._admit_lock = threading.Lock()
        self._inflight = 0
        self._tokens: set[CancellationToken] = set()

    @property
    def closing(self) -> bool:
        return self._shutdown.is_set()

    # -- admission -------------------------------------------------------------

    def _admit(self, token: CancellationToken) -> bool:
        """Claim an admission slot; False means shed (queue full).

        The gauges publish *under* the admission lock: a racing
        admit/release pair publishing outside it can interleave so the
        stale count lands last, leaving ``queue.depth`` wrong (even
        clamped negative values showed as 0 while slots were free) until
        the next request corrects it.
        """
        with self._admit_lock:
            if self._inflight >= self.workers + self.max_queue:
                return False
            self._inflight += 1
            self._tokens.add(token)
            inflight = self._inflight
            self.metrics.set_gauge("requests.inflight", inflight)
            self.metrics.set_gauge(
                "queue.depth", max(0, inflight - self.workers)
            )
        return True

    def _release(self, token: CancellationToken) -> None:
        with self._admit_lock:
            self._inflight -= 1
            self._tokens.discard(token)
            inflight = self._inflight
            self.metrics.set_gauge("requests.inflight", inflight)
            self.metrics.set_gauge(
                "queue.depth", max(0, inflight - self.workers)
            )

    # -- request handling ------------------------------------------------------

    def _run(
        self,
        request: protocol.Request,
        budget: Budget | None = None,
        fingerprint: str | None = None,
    ) -> protocol.Response:
        """Execute one request on the calling thread (fault-isolated)."""
        try:
            result = self.engine.dispatch(request.op, request.params, budget=budget)
            response = protocol.ok_response(request.id, result)
        except EngineError as exc:
            if exc.code == protocol.E_CANCELLED:
                self.metrics.incr("requests.cancelled")
            elif exc.code == protocol.E_BUDGET:
                self.metrics.incr("requests.budget_exceeded")
            response = protocol.error_response(request.id, exc.code, exc.message)
        except Exception as exc:  # fault isolation: never kill the server
            response = protocol.error_response(
                request.id,
                protocol.E_INTERNAL,
                f"{type(exc).__name__}: {exc}",
            )
        if fingerprint is not None:
            if response.ok:
                self.breaker.record_success(fingerprint)
            elif response.error is not None and response.error["code"] in _BREAKER_CODES:
                self.breaker.record_failure(fingerprint)
        return response

    def process_line(self, line: str) -> str:
        """Handle one raw request line, always returning a response line.

        This is the whole per-request pipeline (decode → breaker →
        admission → dispatch on the pool with timeout/cancellation →
        encode) and is what both transports call; it is also handy for
        tests and in-process embedding.
        """
        self.metrics.incr("requests.total")
        try:
            request = protocol.decode_request(line)
        except protocol.ProtocolError as exc:
            self.metrics.incr("requests.failed")
            return protocol.encode_response(
                protocol.error_response(exc.request_id, exc.code, exc.message)
            )
        self.metrics.incr(f"requests.{request.op}")
        if request.op == "shutdown":
            self._shutdown.set()
            return protocol.encode_response(
                protocol.ok_response(request.id, {"closing": True})
            )
        if self._shutdown.is_set():
            self.metrics.incr("requests.failed")
            return protocol.encode_response(
                protocol.error_response(
                    request.id, protocol.E_SHUTTING_DOWN, "server is shutting down"
                )
            )
        governed = request.op in ANALYSIS_OPS
        deadline: float | None = None
        if governed and "deadline" in request.params:
            # Strip the deadline before fingerprinting — an absolute
            # timestamp varies per send, and must not split the breaker
            # buckets for what is otherwise the same request.
            raw_deadline = request.params.pop("deadline")
            if isinstance(raw_deadline, bool) or not isinstance(
                raw_deadline, (int, float)
            ):
                self.metrics.incr("requests.failed")
                return protocol.encode_response(
                    protocol.error_response(
                        request.id,
                        protocol.E_BAD_REQUEST,
                        "deadline must be an absolute unix timestamp (seconds)",
                    )
                )
            deadline = float(raw_deadline)
            expired = time.time() - deadline
            if expired >= 0:
                # Already-dead work is refused *before* admission — it
                # must not occupy a pool slot or trip the breaker.
                self.metrics.incr("requests.deadline_exceeded")
                self.metrics.incr("requests.failed")
                return protocol.encode_response(
                    protocol.error_response(
                        request.id,
                        protocol.E_DEADLINE,
                        f"deadline expired {expired:.3f}s before admission",
                    )
                )
        fingerprint = (
            request_fingerprint(request.op, request.params) if governed else None
        )
        if fingerprint is not None and self.breaker.is_open(fingerprint):
            self.metrics.incr("breaker.open")
            self.metrics.incr("requests.failed")
            return protocol.encode_response(
                protocol.error_response(
                    request.id,
                    protocol.E_CIRCUIT_OPEN,
                    "request fingerprint is failing repeatedly; "
                    f"retry after {self.breaker.cooldown}s",
                )
            )
        token: CancellationToken | None = None
        budget: Budget | None = None
        if governed:
            token = CancellationToken()
            if not self._admit(token):
                self.metrics.incr("requests.shed")
                self.metrics.incr("requests.failed")
                return protocol.encode_response(
                    protocol.error_response(
                        request.id,
                        protocol.E_OVERLOADED,
                        f"admission queue full "
                        f"({self.workers} workers + {self.max_queue} queued)",
                    )
                )
            # The token (cancelled when the waiter times out) is the
            # real deadline; max_seconds at 2× is a dead-man's switch in
            # case the waiting thread itself is gone.  A client deadline
            # caps both: the solve itself never outlives the caller.
            backstop = None if self.timeout is None else self.timeout * 2
            if deadline is not None:
                remaining = max(0.001, deadline - time.time())
                backstop = (
                    remaining if backstop is None else min(backstop, remaining)
                )
            budget = Budget(max_seconds=backstop, token=token)
        with self.metrics.time("request"):
            if not governed:
                # ping/stats answer inline on the transport thread, so
                # health stays observable even when every pool worker is
                # busy (or wedged) with analysis work.
                response = self._run(request)
                if not response.ok:
                    self.metrics.incr("requests.failed")
                return protocol.encode_response(response)
            assert token is not None

            def run_and_release(
                request=request,
                budget=budget,
                fingerprint=fingerprint,
                token=token,
            ) -> protocol.Response:
                try:
                    return self._run(request, budget, fingerprint)
                finally:
                    self._release(token)

            future: Future = self._pool.submit(run_and_release)
            wait_timeout = self.timeout
            if deadline is not None:
                remaining = max(0.001, deadline - time.time())
                wait_timeout = (
                    remaining
                    if wait_timeout is None
                    else min(wait_timeout, remaining)
                )
            try:
                response = future.result(timeout=wait_timeout)
            except FutureTimeoutError:
                if token is not None:
                    # Revoke the work: a queued future is dropped (and
                    # its slot released here); a running one observes
                    # the token at its next budget check, stops, and
                    # records the breaker failure itself (E_CANCELLED).
                    token.cancel()
                    if future.cancel():
                        self._release(token)
                if deadline is not None and time.time() >= deadline:
                    self.metrics.incr("requests.deadline_exceeded")
                    response = protocol.error_response(
                        request.id,
                        protocol.E_DEADLINE,
                        "deadline expired while the request was running",
                    )
                else:
                    self.metrics.incr("requests.timeout")
                    response = protocol.error_response(
                        request.id,
                        protocol.E_TIMEOUT,
                        f"request did not finish within {self.timeout}s",
                    )
        if not response.ok:
            self.metrics.incr("requests.failed")
        return protocol.encode_response(response)

    # -- stdio transport -------------------------------------------------------

    def serve_stdio(
        self, stdin: IO[str] | None = None, stdout: IO[str] | None = None
    ) -> None:
        """Serve requests from ``stdin`` until EOF or shutdown."""
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            stdout.write(self.process_line(line) + "\n")
            stdout.flush()
            if self._shutdown.is_set():
                break
        self.close()

    # -- TCP transport ---------------------------------------------------------

    def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start accepting in a background thread.

        Returns the bound ``(host, port)`` — pass ``port=0`` to let the
        OS pick one (tests do).
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        self._accept_thread.start()
        return listener.getsockname()[:2]

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed
            with self._conn_lock:
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        pending: list[threading.Thread] = []

        def answer(raw: bytes) -> None:
            reply = self.process_line(raw.decode("utf-8", "replace"))
            with write_lock:
                try:
                    conn.sendall(reply.encode("utf-8") + b"\n")
                except OSError:
                    pass  # client went away; nothing to do

        try:
            buffer = b""
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    raw, buffer = buffer.split(b"\n", 1)
                    if not raw.strip():
                        continue
                    # Pipelining: each request is answered from its own
                    # thread; process_line already bounds real work via
                    # the shared pool.
                    worker = threading.Thread(
                        target=answer, args=(raw,), daemon=True
                    )
                    worker.start()
                    pending.append(worker)
                if self._shutdown.is_set():
                    break
        except OSError:
            pass
        finally:
            for worker in pending:
                worker.join(timeout=5)
            try:
                conn.close()
            except OSError:
                pass
            with self._conn_lock:
                self._connections.discard(conn)
            if self._shutdown.is_set():
                self.close()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until shutdown is requested; True if it was."""
        return self._shutdown.wait(timeout)

    def signal_shutdown(self) -> None:
        """Request shutdown without tearing anything down yet.

        Safe to call from a signal handler: it only sets the shutdown
        event, unblocking :meth:`wait` so the owning thread can run the
        graceful :meth:`drain`.
        """
        self._shutdown.set()

    def drain(self, drain_seconds: float = 5.0) -> dict:
        """Gracefully stop: finish in-flight work, checkpoint, close.

        Stops accepting (shutdown flag + listener closed), waits up to
        ``drain_seconds`` for admitted requests to finish, cancels
        whatever is still running via its token, checkpoints hot patch
        sessions to their journals, and tears the server down.  Returns
        ``{"drained": n, "cancelled": m, "checkpointed": k}`` — the
        requests that completed during the drain window, the ones
        revoked at the deadline, and the sessions checkpointed.
        """
        self._shutdown.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._admit_lock:
            start = self._inflight
        deadline = time.monotonic() + max(0.0, drain_seconds)
        while time.monotonic() < deadline:
            with self._admit_lock:
                if self._inflight == 0:
                    break
            time.sleep(0.02)
        with self._admit_lock:
            cancelled = self._inflight
            tokens = list(self._tokens)
        for token in tokens:
            token.cancel()
        # Give revoked workers a moment to observe the token and unwind
        # so checkpointing sees settled sessions, not mid-repair ones.
        grace = time.monotonic() + 2.0
        while cancelled and time.monotonic() < grace:
            with self._admit_lock:
                if self._inflight == 0:
                    break
            time.sleep(0.02)
        checkpoint = getattr(self.engine, "checkpoint_sessions", None)
        checkpointed = checkpoint() if callable(checkpoint) else 0
        self.metrics.incr("drain.completed", max(0, start - cancelled))
        self.metrics.incr("drain.cancelled", cancelled)
        self.close()
        return {
            "drained": max(0, start - cancelled),
            "cancelled": cancelled,
            "checkpointed": checkpointed,
        }

    def close(self) -> None:
        """Stop accepting, close the listener and connections, drain.

        Outstanding analysis requests are revoked via their cancellation
        tokens so workers wind down at their next budget check point
        instead of solving on into a dead process.
        """
        self._shutdown.set()
        with self._admit_lock:
            tokens = list(self._tokens)
        for token in tokens:
            token.cancel()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._pool.shutdown(wait=False)
        engine_close = getattr(self.engine, "close", None)
        if callable(engine_close):
            engine_close()

    def __enter__(self) -> "AnalysisServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
