"""Single-thread async front door over the process dispatch pool.

The threaded :class:`~repro.service.server.AnalysisServer` spends one
OS thread per connection plus a worker-pool thread per request, and all
of them share a GIL with the solver.  This module is the scale-out
shape: **one** event-loop thread owns every socket via
:mod:`selectors`, does the cheap inline work itself — protocol parsing,
admission control, deadline bookkeeping, circuit breaking, metrics —
and ships the actual solves to a
:class:`~repro.service.dispatch.DispatchPool` of worker *processes*.

Division of labor:

* **inline (loop thread)**: accept, buffered reads/writes, request
  decode, ``ping``, ``stats`` (aggregating per-worker metrics),
  shutdown, deadline refusal, load shedding, breaker refusal;
* **process pool**: ``check``/``dataflow``/``flow`` — CPU-bound solves,
  preloaded machines, true parallelism;
* **parent, single thread**: ``patch`` — hot patch sessions mutate
  journaled state, and the journal has exactly one writer, so patches
  run on a dedicated one-thread executor in this process, serialized
  in arrival order.

Cross-process revocation: there is no cancellation token to share with
a worker, so the loop folds its own ``timeout`` and any client
``deadline`` into one absolute timestamp, answers the client the moment
it expires, and *forwards the same timestamp* as the wire ``deadline``
param — the worker engine's budget checks stop the orphaned solve at
the same wall-clock instant.  A worker that dies instead of stopping
(``kill -9``) surfaces as a typed ``unavailable`` and the pool rebuilds
itself (see :meth:`DispatchPool._heal`).

The wake-up path is a self-pipe (``socketpair``): pool futures resolve
on executor threads, which enqueue the completion and poke the pipe so
the ``select`` call returns immediately instead of waiting out its
timeout.
"""

from __future__ import annotations

import heapq
import selectors
import socket
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Iterable

from repro.service import protocol
from repro.service.dispatch import DispatchPool
from repro.service.engine import AnalysisEngine, EngineError
from repro.service.metrics import Metrics
from repro.service.server import ANALYSIS_OPS, _BREAKER_CODES, CircuitBreaker, request_fingerprint

__all__ = ["AsyncAnalysisServer"]

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE


class _Conn:
    """Per-connection buffers owned by the loop thread."""

    __slots__ = ("sock", "rbuf", "wbuf", "closed")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.rbuf = b""
        self.wbuf = b""
        self.closed = False


class _Pending:
    """One admitted analysis request awaiting its future."""

    __slots__ = ("conn", "request_id", "op", "fingerprint", "future",
                 "pool", "expiry", "client_deadline", "done")

    def __init__(
        self,
        conn: _Conn,
        request_id: Any,
        op: str,
        fingerprint: str | None,
        future: Future,
        pool: Any,
        expiry: float | None,
        client_deadline: float | None,
    ):
        self.conn = conn
        self.request_id = request_id
        self.op = op
        self.fingerprint = fingerprint
        self.future = future
        self.pool = pool  # ProcessPoolExecutor handle, or None for patch
        self.expiry = expiry  # absolute unix seconds, or None
        self.client_deadline = client_deadline
        self.done = False


class AsyncAnalysisServer:
    """Selectors event loop dispatching solves to worker processes.

    ``engine`` is the *parent* engine: it owns the journal and serves
    ``patch`` and ``stats``; analysis ops run on ``pool`` (built here
    when not supplied, with ``workers``/``preload``/``shards``/
    ``partition`` forwarded).  The parent engine and the pool share one
    :class:`Metrics` instance, so parent-side counters and the merged
    worker snapshots land in the same ``stats`` report.
    """

    def __init__(
        self,
        engine: AnalysisEngine | None = None,
        pool: DispatchPool | None = None,
        workers: int = 2,
        preload: Iterable[str] = (),
        shards: int = 1,
        partition: str = "greedy",
        timeout: float | None = None,
        max_queue: int = 32,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        metrics: Metrics | None = None,
    ):
        if engine is None:
            engine = AnalysisEngine(
                metrics=metrics, shards=shards, partition=partition
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue!r}")
        self.engine = engine
        self.metrics = engine.metrics
        if pool is None:
            pool = DispatchPool(
                workers=workers,
                preload=preload,
                cache_size=engine.cache_size,
                shards=shards,
                metrics=self.metrics,
                partition=partition,
            )
        self.pool = pool
        self.timeout = timeout
        self.max_queue = max_queue
        self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown)
        # Patches mutate journaled sessions; one thread = one writer,
        # serialized in submission order.
        self._patch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-patch"
        )
        self._selector = selectors.DefaultSelector()
        self._listener: socket.socket | None = None
        self._loop_thread: threading.Thread | None = None
        self._shutdown = threading.Event()
        # Self-pipe: executor threads poke _wake_w, the loop drains _wake_r.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._completions: deque[_Pending] = deque()
        self._completion_lock = threading.Lock()
        # Loop-thread-only state (no locks needed):
        self._inflight = 0
        self._expiries: list[tuple[float, int, _Pending]] = []  # min-heap
        self._seq = 0

    @property
    def closing(self) -> bool:
        return self._shutdown.is_set()

    # -- lifecycle -------------------------------------------------------------

    def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind, start the loop thread, return the bound ``(host, port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        listener.setblocking(False)
        self._listener = listener
        self._selector.register(listener, _READ, "listener")
        self._selector.register(self._wake_r, _READ, "wake")
        self._loop_thread = threading.Thread(
            target=self._loop, name="repro-frontdoor", daemon=True
        )
        self._loop_thread.start()
        return listener.getsockname()[:2]

    def wait(self) -> None:
        """Block until the loop exits (shutdown op or :meth:`close`)."""
        thread = self._loop_thread
        if thread is None:
            return
        while thread.is_alive():
            thread.join(timeout=0.2)

    def close(self, drain_timeout: float = 5.0) -> None:
        """Stop the loop (draining in-flight responses) and the pools."""
        self._shutdown.set()
        self._wake()
        thread = self._loop_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=drain_timeout)
        self.pool.shutdown(wait=False)
        self._patch_pool.shutdown(wait=False, cancel_futures=True)
        self.engine.close()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except OSError:
            pass

    # -- event loop ------------------------------------------------------------

    def _loop(self) -> None:
        try:
            while True:
                if self._shutdown.is_set() and self._drained():
                    break
                timeout = self._next_timeout()
                for key, _mask in self._selector.select(timeout):
                    if key.data == "listener":
                        self._accept()
                    elif key.data == "wake":
                        try:
                            while self._wake_r.recv(4096):
                                pass
                        except (BlockingIOError, OSError):
                            pass
                    else:
                        self._service_conn(key.data, _mask)
                self._drain_completions()
                self._expire_overdue()
        finally:
            self._teardown()

    def _drained(self) -> bool:
        if self._inflight:
            return False
        return all(
            not key.data.wbuf
            for key in list(self._selector.get_map().values())
            if isinstance(key.data, _Conn)
        )

    def _next_timeout(self) -> float | None:
        if self._shutdown.is_set():
            return 0.05  # poll toward drained exit
        while self._expiries and self._expiries[0][2].done:
            heapq.heappop(self._expiries)
        if not self._expiries:
            return None
        return max(0.0, self._expiries[0][0] - time.time())

    def _teardown(self) -> None:
        for key in list(self._selector.get_map().values()):
            if isinstance(key.data, _Conn):
                self._close_conn(key.data)
        if self._listener is not None:
            try:
                self._selector.unregister(self._listener)
            except KeyError:
                pass
            self._listener.close()
        self._selector.close()

    # -- connections -----------------------------------------------------------

    def _accept(self) -> None:
        assert self._listener is not None
        try:
            sock, _addr = self._listener.accept()
        except OSError:
            return
        if self._shutdown.is_set():
            sock.close()
            return
        sock.setblocking(False)
        self._selector.register(sock, _READ, _Conn(sock))

    def _service_conn(self, conn: _Conn, mask: int) -> None:
        if mask & _READ:
            try:
                data = conn.sock.recv(65536)
            except BlockingIOError:
                data = None
            except OSError:
                self._close_conn(conn)
                return
            if data == b"":
                self._close_conn(conn)
                return
            if data:
                conn.rbuf += data
                while b"\n" in conn.rbuf:
                    line, conn.rbuf = conn.rbuf.split(b"\n", 1)
                    text = line.decode("utf-8", errors="replace").strip()
                    if text:
                        self._handle_line(conn, text)
        if mask & _WRITE and not conn.closed:
            self._flush(conn)

    def _close_conn(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.closed = True
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _send(self, conn: _Conn, response: protocol.Response) -> None:
        if not response.ok:
            self.metrics.incr("requests.failed")
        if conn.closed:
            return
        conn.wbuf += (protocol.encode_response(response) + "\n").encode("utf-8")
        self._flush(conn)

    def _flush(self, conn: _Conn) -> None:
        while conn.wbuf:
            try:
                sent = conn.sock.send(conn.wbuf)
            except BlockingIOError:
                break
            except OSError:
                self._close_conn(conn)
                return
            conn.wbuf = conn.wbuf[sent:]
        try:
            self._selector.modify(
                conn.sock, _READ | (_WRITE if conn.wbuf else 0), conn
            )
        except (KeyError, ValueError):
            pass

    # -- request handling ------------------------------------------------------

    def _handle_line(self, conn: _Conn, line: str) -> None:
        self.metrics.incr("requests.total")
        try:
            request = protocol.decode_request(line)
        except protocol.ProtocolError as exc:
            self._send(
                conn,
                protocol.error_response(exc.request_id, exc.code, exc.message),
            )
            return
        self.metrics.incr(f"requests.{request.op}")
        if request.op == "shutdown":
            self._send(conn, protocol.ok_response(request.id, {"closing": True}))
            self._shutdown.set()
            return
        if self._shutdown.is_set():
            self._send(
                conn,
                protocol.error_response(
                    request.id,
                    protocol.E_SHUTTING_DOWN,
                    "server is shutting down",
                ),
            )
            return
        if request.op not in ANALYSIS_OPS:
            self._send(conn, self._control(request))
            return
        self._admit_analysis(conn, request)

    def _control(self, request: protocol.Request) -> protocol.Response:
        """``ping``/``stats`` — cheap enough to answer on the loop."""
        try:
            result = self.engine.dispatch(request.op, request.params)
            if request.op == "stats":
                merged = self.pool.aggregate_metrics()
                result["counters"] = merged["counters"]
                result["gauges"] = merged["gauges"]
                result["timers"] = merged["timers"]
                result["pool"] = self.pool.stats()
                result["frontdoor"] = {"inflight": self._inflight}
            return protocol.ok_response(request.id, result)
        except EngineError as exc:
            return protocol.error_response(request.id, exc.code, exc.message)
        except Exception as exc:  # fault isolation
            return protocol.error_response(
                request.id, protocol.E_INTERNAL, f"{type(exc).__name__}: {exc}"
            )

    def _admit_analysis(self, conn: _Conn, request: protocol.Request) -> None:
        """Inline governance, then hand the solve to a pool."""
        params = dict(request.params)
        client_deadline: float | None = None
        if "deadline" in params:
            # Popped before fingerprinting — an absolute timestamp varies
            # per send and must not split the breaker buckets.
            raw = params.pop("deadline")
            if isinstance(raw, bool) or not isinstance(raw, (int, float)):
                self._send(
                    conn,
                    protocol.error_response(
                        request.id,
                        protocol.E_BAD_REQUEST,
                        "deadline must be an absolute unix timestamp (seconds)",
                    ),
                )
                return
            client_deadline = float(raw)
            expired = time.time() - client_deadline
            if expired >= 0:
                self.metrics.incr("requests.deadline_exceeded")
                self._send(
                    conn,
                    protocol.error_response(
                        request.id,
                        protocol.E_DEADLINE,
                        f"deadline expired {expired:.3f}s before admission",
                    ),
                )
                return
        fingerprint = request_fingerprint(request.op, params)
        if self.breaker.is_open(fingerprint):
            self.metrics.incr("breaker.open")
            self._send(
                conn,
                protocol.error_response(
                    request.id,
                    protocol.E_CIRCUIT_OPEN,
                    "request fingerprint is failing repeatedly; "
                    f"retry after {self.breaker.cooldown}s",
                ),
            )
            return
        capacity = self.pool.workers + self.max_queue
        if self._inflight >= capacity:
            self.metrics.incr("requests.shed")
            self._send(
                conn,
                protocol.error_response(
                    request.id,
                    protocol.E_OVERLOADED,
                    f"admission queue full "
                    f"({self.pool.workers} workers + {self.max_queue} queued)",
                ),
            )
            return
        # One absolute expiry governs the wait *and* (forwarded as the
        # wire deadline) the worker-side solve budget.
        expiry: float | None = None
        if self.timeout is not None:
            expiry = time.time() + self.timeout
        if client_deadline is not None:
            expiry = (
                client_deadline if expiry is None else min(expiry, client_deadline)
            )
        if expiry is not None:
            params["deadline"] = expiry
        if request.op == "patch":
            future: Future = self._patch_pool.submit(self._run_patch, params)
            pool_handle = None
        else:
            try:
                future, pool_handle = self.pool.submit(request.op, params)
            except EngineError as exc:
                self._send(
                    conn,
                    protocol.error_response(request.id, exc.code, exc.message),
                )
                return
        pending = _Pending(
            conn,
            request.id,
            request.op,
            fingerprint,
            future,
            pool_handle,
            expiry,
            client_deadline,
        )
        self._inflight += 1
        self.metrics.set_gauge("requests.inflight", self._inflight)
        self.metrics.set_gauge(
            "queue.depth", max(0, self._inflight - self.pool.workers)
        )
        if expiry is not None:
            self._seq += 1
            heapq.heappush(self._expiries, (expiry, self._seq, pending))
        future.add_done_callback(lambda _f, p=pending: self._enqueue(p))

    def _run_patch(self, params: dict) -> dict:
        """Parent-side patch, returning a worker-style envelope."""
        try:
            return {"ok": True, "result": self.engine.dispatch("patch", params)}
        except EngineError as exc:
            return {"ok": False, "code": exc.code, "message": exc.message}
        except Exception as exc:  # fault isolation
            return {
                "ok": False,
                "code": protocol.E_INTERNAL,
                "message": f"{type(exc).__name__}: {exc}",
            }

    # -- completion / expiry ---------------------------------------------------

    def _enqueue(self, pending: _Pending) -> None:
        """Future done-callback: runs on an executor thread."""
        with self._completion_lock:
            self._completions.append(pending)
        self._wake()

    def _drain_completions(self) -> None:
        while True:
            with self._completion_lock:
                if not self._completions:
                    return
                pending = self._completions.popleft()
            self._finish(pending)

    def _settle(self, pending: _Pending) -> None:
        pending.done = True
        self._inflight -= 1
        self.metrics.set_gauge("requests.inflight", self._inflight)
        self.metrics.set_gauge(
            "queue.depth", max(0, self._inflight - self.pool.workers)
        )

    def _finish(self, pending: _Pending) -> None:
        if pending.done:
            return  # already answered by deadline expiry; drop the late result
        self._settle(pending)
        try:
            if pending.op == "patch":
                envelope = pending.future.result()
                if envelope.get("ok"):
                    result = envelope["result"]
                else:
                    raise EngineError(
                        envelope.get("code", protocol.E_INTERNAL),
                        envelope.get("message", "patch failed"),
                    )
            else:
                result = self.pool.collect(pending.future, pending.pool)
            response = protocol.ok_response(pending.request_id, result)
        except EngineError as exc:
            if exc.code == protocol.E_CANCELLED:
                self.metrics.incr("requests.cancelled")
            elif exc.code == protocol.E_BUDGET:
                self.metrics.incr("requests.budget_exceeded")
            elif exc.code == protocol.E_DEADLINE:
                self.metrics.incr("requests.deadline_exceeded")
            response = protocol.error_response(
                pending.request_id, exc.code, exc.message
            )
        except Exception as exc:  # fault isolation
            response = protocol.error_response(
                pending.request_id,
                protocol.E_INTERNAL,
                f"{type(exc).__name__}: {exc}",
            )
        if pending.fingerprint is not None:
            if response.ok:
                self.breaker.record_success(pending.fingerprint)
            elif (
                response.error is not None
                and response.error["code"] in _BREAKER_CODES
            ):
                self.breaker.record_failure(pending.fingerprint)
        self._send(pending.conn, response)

    def _expire_overdue(self) -> None:
        now = time.time()
        while self._expiries and self._expiries[0][0] <= now:
            _expiry, _seq, pending = heapq.heappop(self._expiries)
            if pending.done:
                continue
            self._settle(pending)
            pending.future.cancel()
            if (
                pending.client_deadline is not None
                and now >= pending.client_deadline
            ):
                self.metrics.incr("requests.deadline_exceeded")
                response = protocol.error_response(
                    pending.request_id,
                    protocol.E_DEADLINE,
                    "deadline expired while the request was running",
                )
            else:
                self.metrics.incr("requests.timeout")
                if pending.fingerprint is not None:
                    self.breaker.record_failure(pending.fingerprint)
                response = protocol.error_response(
                    pending.request_id,
                    protocol.E_TIMEOUT,
                    f"request did not finish within {self.timeout}s",
                )
            self._send(pending.conn, response)
