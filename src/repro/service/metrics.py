"""Thread-safe counters and timers for the analysis service.

A single :class:`Metrics` instance is shared by the engine and the
server.  Counters are plain named integers; timers accumulate wall
seconds (and a count, so means can be derived).  The conventional keys:

* ``requests.total`` / ``requests.failed`` / ``requests.<op>`` — server
  traffic, per operation;
* ``cache.machine.hits`` / ``cache.machine.misses`` — compiled
  property-machine/monoid cache;
* ``cache.solve.hits`` / ``cache.solve.misses`` — solved-system cache
  keyed by (machine fingerprint, program hash);
* ``cache.snapshot.warm`` — cold solves avoided by reloading a
  :mod:`repro.core.persist` snapshot;
* ``cache.solve.evictions`` — LRU pressure;
* ``cache.snapshot.corrupt`` — snapshots rejected by checksum
  verification (each falls back to a cold solve);
* ``whatif.queries`` — speculative mark/rollback queries answered;
* ``requests.shed`` / ``requests.cancelled`` /
  ``requests.budget_exceeded`` / ``breaker.open`` — resource-governance
  outcomes (admission-queue overflow, revoked work that stopped, budget
  exhaustion, circuit-breaker refusals);
* ``transfer.bytes`` / ``transfer.shm_attaches`` /
  ``transfer.pickle_fallbacks`` — cross-process result movement: wire
  bytes actually copied (segment names under shm, whole dumps under
  pickle), solved columns adopted zero-copy from a worker's
  shared-memory segment, and solves that fell back to the pickled
  flat dump;
* ``preload.properties`` / ``preload.shm_attached`` /
  ``preload.deduped`` / ``preload.failed`` — pool-worker warm-up:
  algebras warmed, warmed by attaching the parent's published arena
  instead of recompiling, names skipped because another name already
  warmed the same machine fingerprint, and per-name failures;
* ``shm.stale_reaped`` — orphaned shared-memory arenas unlinked at
  pool build/heal (owners died without cleaning up);
* timer ``solve`` — wall time spent building + solving systems (cache
  misses only); timer ``request`` — end-to-end handler time.

Gauges are instantaneous levels rather than monotone counts — the
conventional keys are ``requests.inflight`` (admitted requests not yet
answered) and ``queue.depth`` (admitted requests beyond the worker
count, i.e. waiting for a pool slot).

The ``stats`` operation additionally reports aggregated
:class:`repro.core.solver.SolverStats` counters (edges added,
transitive compositions, rollbacks) summed over every live cached
solver.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class Metrics:
    """Monotone named counters plus accumulating wall-time timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, int] = {}
        self._timers: dict[str, tuple[int, float]] = {}  # name -> (count, seconds)

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: int) -> None:
        with self._lock:
            self._gauges[name] = value

    def adjust_gauge(self, name: str, delta: int) -> int:
        """Add ``delta`` to a gauge and return the new level."""
        with self._lock:
            value = self._gauges.get(name, 0) + delta
            self._gauges[name] = value
            return value

    def gauge(self, name: str) -> int:
        with self._lock:
            return self._gauges.get(name, 0)

    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            count, total = self._timers.get(name, (0, 0.0))
            self._timers[name] = (count + 1, total + seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def snapshot(self) -> dict:
        """A point-in-time copy, JSON-representable for the wire."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            timers = {
                name: {"count": count, "seconds": round(total, 6)}
                for name, (count, total) in self._timers.items()
            }
        return {"counters": counters, "gauges": gauges, "timers": timers}

    def merge(self, snapshot: dict) -> None:
        """Fold another process's :meth:`snapshot` into these metrics.

        Counters and timers are monotone, so they *add*; gauges are
        instantaneous levels with no cross-process meaning, so a merged
        gauge is the per-process level summed over contributors (the
        caller replaces, not accumulates, each worker's contribution by
        merging a fresh snapshot set — see
        :meth:`repro.service.dispatch.DispatchPool.aggregate_metrics`).
        Malformed sections are ignored: a worker that died mid-snapshot
        must not take ``stats`` down with it.
        """
        counters = snapshot.get("counters")
        gauges = snapshot.get("gauges")
        timers = snapshot.get("timers")
        with self._lock:
            if isinstance(counters, dict):
                for name, value in counters.items():
                    if isinstance(value, int):
                        self._counters[name] = self._counters.get(name, 0) + value
            if isinstance(gauges, dict):
                for name, value in gauges.items():
                    if isinstance(value, int):
                        self._gauges[name] = self._gauges.get(name, 0) + value
            if isinstance(timers, dict):
                for name, entry in timers.items():
                    if not isinstance(entry, dict):
                        continue
                    count = entry.get("count")
                    seconds = entry.get("seconds")
                    if isinstance(count, int) and isinstance(
                        seconds, (int, float)
                    ):
                        have_count, have_total = self._timers.get(name, (0, 0.0))
                        self._timers[name] = (
                            have_count + count,
                            have_total + float(seconds),
                        )
