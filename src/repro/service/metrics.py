"""Thread-safe counters and timers for the analysis service.

A single :class:`Metrics` instance is shared by the engine and the
server.  Counters are plain named integers; timers accumulate wall
seconds (and a count, so means can be derived).  The conventional keys:

* ``requests.total`` / ``requests.failed`` / ``requests.<op>`` — server
  traffic, per operation;
* ``cache.machine.hits`` / ``cache.machine.misses`` — compiled
  property-machine/monoid cache;
* ``cache.solve.hits`` / ``cache.solve.misses`` — solved-system cache
  keyed by (machine fingerprint, program hash);
* ``cache.snapshot.warm`` — cold solves avoided by reloading a
  :mod:`repro.core.persist` snapshot;
* ``cache.solve.evictions`` — LRU pressure;
* ``whatif.queries`` — speculative mark/rollback queries answered;
* timer ``solve`` — wall time spent building + solving systems (cache
  misses only); timer ``request`` — end-to-end handler time.

The ``stats`` operation additionally reports aggregated
:class:`repro.core.solver.SolverStats` counters (edges added,
transitive compositions, rollbacks) summed over every live cached
solver.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class Metrics:
    """Monotone named counters plus accumulating wall-time timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._timers: dict[str, tuple[int, float]] = {}  # name -> (count, seconds)

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            count, total = self._timers.get(name, (0, 0.0))
            self._timers[name] = (count + 1, total + seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def snapshot(self) -> dict:
        """A point-in-time copy, JSON-representable for the wire."""
        with self._lock:
            counters = dict(self._counters)
            timers = {
                name: {"count": count, "seconds": round(total, 6)}
                for name, (count, total) in self._timers.items()
            }
        return {"counters": counters, "timers": timers}
