"""The embeddable analysis engine: caching, warm-start, what-if.

:class:`AnalysisEngine` is a facade over the three applications
(:mod:`repro.modelcheck`, :mod:`repro.dataflow`, :mod:`repro.flow`)
designed for a long-lived process answering many queries:

* **machine cache** — compiled property machines and their
  representative-function monoids are built once per machine
  fingerprint (:func:`repro.core.persist.machine_fingerprint`) and
  shared across every request that uses the same property;
* **solve cache** — solved constraint systems are kept in an LRU keyed
  by ``(machine fingerprint, program content hash)``; a repeated query
  for the same (machine, program) pair reuses the solved form and pays
  only the query cost;
* **snapshot warm-start** — with a ``snapshot_dir``, cold solves of
  non-parametric check systems are persisted via
  :func:`repro.core.persist.dump_solver`; a later engine (or process)
  reloads the solved form instead of re-solving, with the fingerprint
  verified so a snapshot is never replayed against the wrong machine;
* **what-if queries** — speculative constraints are layered on a cached
  solved system under :meth:`Solver.mark`/``rollback`` (flow ``assume``
  edges), answering incremental questions without re-solving the base
  program;
* **patch sessions** — one hot patchable
  :class:`~repro.incremental.diff.StableCheck` per property machine;
  the ``patch`` request advances it to an edited program by
  differential re-solving, falling back to a cold solve (never an
  error) when the session is missing, version-mismatched, or the
  repair fails.

The engine is thread-safe: the cache maps are guarded by one lock, and
each cached entry has its own lock serializing solves and queries on
that entry (solver and query structures are not internally
thread-safe), so requests against *different* systems run concurrently.
"""

from __future__ import annotations

import hashlib
import pathlib
import threading
import time
from collections import OrderedDict
from typing import Any, Callable

from repro.cfg import build_cfg
from repro.core.annotations import (
    CompiledGenKillAlgebra,
    CompiledMonoidAlgebra,
)
from repro.core.budget import Budget
from repro.core.errors import (
    SnapshotCorrupt,
    SolverBudgetExceeded,
    SolverCancelled,
)
from repro.core.parametric import ParametricAlgebra
from repro.core.persist import (
    dump_solver,
    load_solver,
    machine_fingerprint,
    read_snapshot,
    write_snapshot,
)
from repro.core.solver import Solver, SolverStats
from repro.dfa.gallery import one_bit_machine
from repro.modelcheck import PROPERTY_FACTORIES, AnnotatedChecker
from repro.modelcheck.properties import Property
from repro.service import protocol
from repro.service.journal import (
    Q_BAD_LINEAGE,
    Q_REPLAY_FAILED,
    Q_SNAPSHOT_MISMATCH,
    Quarantined,
    SessionJournal,
)
from repro.service.metrics import Metrics

#: Cap on remembered idempotent patch results per hot session.
_IDEMPOTENCY_WINDOW = 64


class EngineError(Exception):
    """An analysis request the engine cannot serve, with its wire code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def program_hash(source: str) -> str:
    """Content hash identifying a program text in cache keys."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


class _Entry:
    """One cached solved system: the analysis object plus its own lock."""

    __slots__ = ("lock", "analysis", "solver", "results")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.analysis: Any = None
        self.solver: Solver | None = None
        self.results: dict[Any, Any] = {}


class _DeltaEntry:
    """One hot patchable session (per property machine).

    Unlike :class:`_Entry`, the solved system here *mutates* across
    requests: each ``patch`` request advances the
    :class:`~repro.incremental.diff.StableCheck` to the edited program.
    ``phash`` is the program hash the session currently embodies — the
    version token echoed to clients.  ``check`` is ``None`` after a
    failed patch until the next request rebuilds it cold.

    ``idem`` remembers the last few patch results by idempotency key so
    a client retry of an already-applied patch answers from the record
    instead of degrading to ``base-mismatch``; ``last_key`` survives
    journal recovery (the in-memory window does not) so the
    crashed-mid-response retry still short-circuits.
    """

    __slots__ = ("lock", "check", "phash", "prop_name", "last_key", "idem")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.check: Any = None
        self.phash: str | None = None
        self.prop_name: str | None = None
        self.last_key: str | None = None
        self.idem: "OrderedDict[str, dict]" = OrderedDict()


class AnalysisEngine:
    """Cached, concurrent front door to the constraint solver."""

    def __init__(
        self,
        cache_size: int = 64,
        snapshot_dir: str | pathlib.Path | None = None,
        metrics: Metrics | None = None,
        journal_dir: str | pathlib.Path | None = None,
        journal_fsync_every: int = 1,
        journal_compact_every: int = 256,
        recover: bool = True,
        shards: int = 1,
        partition: str = "greedy",
    ):
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        self.cache_size = cache_size
        #: Cold solves with ``shards > 1`` partition the constraint
        #: graph (:mod:`repro.core.partition`) and stitch the regions;
        #: witness traces degrade to empty (no provenance in the merged
        #: view).  Snapshot warm-starts are unaffected — a canonical
        #: solved form is a function of the solution, not of how many
        #: shards computed it.
        self.shards = max(1, shards)
        #: Placement strategy for sharded solves — "greedy" (locality-
        #: aware min-cut refinement) or "roundrobin" (the baseline);
        #: see :func:`repro.core.partition.plan_shards`.
        self.partition = partition
        self.snapshot_dir = (
            pathlib.Path(snapshot_dir) if snapshot_dir is not None else None
        )
        self.metrics = metrics if metrics is not None else Metrics()
        self._lock = threading.Lock()
        # property name -> (Property, machine fingerprint)
        self._properties: dict[str, tuple[Property, str]] = {}
        # algebra cache key -> compiled annotation algebra
        self._algebras: dict[Any, Any] = {}
        self._solved: "OrderedDict[Any, _Entry]" = OrderedDict()
        # machine fingerprint -> hot patchable session (one per property)
        self._delta: dict[str, _DeltaEntry] = {}
        self.started_at = time.monotonic()
        self.recoveries = 0
        # fingerprint -> quarantine slug; surfaced as the typed
        # ``quarantined-<slug>`` fallback on the next patch request.
        self._quarantined: dict[str, str] = {}
        self.journal: SessionJournal | None = (
            SessionJournal(
                journal_dir,
                fsync_every=journal_fsync_every,
                compact_every=journal_compact_every,
            )
            if journal_dir is not None
            else None
        )
        if self.journal is not None and recover:
            self._recover_sessions()

    def close(self) -> None:
        """Flush and close the session journal (if any)."""
        if self.journal is not None:
            self.journal.close()

    # -- durability: journal recovery ------------------------------------------

    def _quarantine_session(self, fingerprint: str, slug: str, detail: str) -> None:
        assert self.journal is not None
        self.journal.quarantine(fingerprint, slug, detail)
        self._quarantined[fingerprint] = slug
        self.metrics.incr("journal.quarantined")
        self.metrics.incr(f"journal.quarantined.{slug}")

    def _recover_sessions(self) -> None:
        """Rebuild hot patch sessions from their journals at startup.

        For each journal: structurally verify it (:meth:`SessionJournal.load`),
        rebuild the base state *cold from the journaled source* — the
        only path that leaves the session patchable, since loaded
        snapshots carry no provenance — then replay the patch suffix
        through the normal ``apply_source`` pipeline.  The compaction
        snapshot, when present and loadable, serves as an integrity
        oracle: its canonical solved form must agree with the rebuilt
        base.  Any failure quarantines the fingerprint with a typed
        slug; the next patch request answers cold with a
        ``quarantined-<slug>`` fallback instead of serving suspect
        state.
        """
        from repro.incremental import StableCheck

        journal = self.journal
        assert journal is not None
        for fp in journal.fingerprints():
            outcome = journal.load(fp)
            if isinstance(outcome, Quarantined):
                self._quarantined[fp] = outcome.slug
                self.metrics.incr("journal.quarantined")
                self.metrics.incr(f"journal.quarantined.{outcome.slug}")
                continue
            lineage = outcome
            if PROPERTY_FACTORIES.get(lineage.property_name) is None:
                self._quarantine_session(
                    fp,
                    Q_REPLAY_FAILED,
                    f"unknown property {lineage.property_name!r}",
                )
                continue
            prop, fingerprint = self._property(lineage.property_name)
            if fingerprint != fp:
                self._quarantine_session(
                    fp,
                    Q_BAD_LINEAGE,
                    f"journal names property {lineage.property_name!r} whose "
                    f"machine fingerprint is {fingerprint!r}, not {fp!r}",
                )
                continue
            if program_hash(lineage.base_source) != lineage.base_version:
                self._quarantine_session(
                    fp,
                    Q_BAD_LINEAGE,
                    "base source does not hash to the base version token",
                )
                continue
            if any(
                program_hash(record["source"]) != record["version"]
                for record in lineage.patches
            ):
                self._quarantine_session(
                    fp,
                    Q_BAD_LINEAGE,
                    "a patch source does not hash to its version token",
                )
                continue
            mismatch = False
            try:
                with self.metrics.time("journal.replay"):
                    check = StableCheck(
                        lineage.base_source,
                        prop,
                        algebra=self._check_algebra(prop, fp),
                    )
                    oracle = journal.read_snapshot_oracle(lineage)
                    if oracle is not None and set(oracle.canonical_facts()) != set(
                        check.solver.canonical_facts()
                    ):
                        mismatch = True
                    else:
                        for record in lineage.patches:
                            check.apply_source(record["source"])
            except Exception as exc:
                self._quarantine_session(
                    fp, Q_REPLAY_FAILED, f"{type(exc).__name__}: {exc}"
                )
                continue
            if mismatch:
                self._quarantine_session(
                    fp,
                    Q_SNAPSHOT_MISMATCH,
                    "compaction snapshot disagrees with the replayed base solve",
                )
                continue
            entry = _DeltaEntry()
            entry.check = check
            entry.phash = lineage.version
            entry.prop_name = lineage.property_name
            entry.last_key = (
                lineage.patches[-1].get("key") if lineage.patches else None
            )
            with self._lock:
                self._delta[fp] = entry
            self.recoveries += 1
            self.metrics.incr("journal.recovered")

    def checkpoint_sessions(self) -> int:
        """Compact every live hot session to a snapshot (the drain path).

        Returns the number of sessions checkpointed.  Each compaction
        rotates the session's journal to a single base record carrying
        the current source and version, so the next startup replays
        nothing — it re-solves the base and verifies it against the
        snapshot oracle.
        """
        if self.journal is None:
            return 0
        with self._lock:
            sessions = list(self._delta.items())
        checkpointed = 0
        for fingerprint, entry in sessions:
            with entry.lock:
                if (
                    entry.check is None
                    or entry.phash is None
                    or entry.prop_name is None
                ):
                    continue
                try:
                    with self.metrics.time("journal.compact"):
                        self.journal.compact(
                            fingerprint,
                            entry.prop_name,
                            entry.phash,
                            entry.check.source,
                            entry.check.solver,
                        )
                except (TypeError, OSError):
                    self.metrics.incr("journal.compact_failed")
                    continue
            checkpointed += 1
        self.journal.flush()
        return checkpointed

    # -- machine / monoid caching -------------------------------------------

    def _property(self, name: str) -> tuple[Property, str]:
        with self._lock:
            cached = self._properties.get(name)
        if cached is not None:
            self.metrics.incr("cache.machine.hits")
            return cached
        factory = PROPERTY_FACTORIES.get(name)
        if factory is None:
            raise EngineError(
                protocol.E_UNSUPPORTED,
                f"unknown property {name!r} "
                f"(known: {', '.join(sorted(PROPERTY_FACTORIES))})",
            )
        self.metrics.incr("cache.machine.misses")
        prop = factory()
        fingerprint = machine_fingerprint(prop.machine)
        with self._lock:
            self._properties.setdefault(name, (prop, fingerprint))
            return self._properties[name]

    def _check_algebra(self, prop: Property, fingerprint: str) -> Any:
        """The shared (per-fingerprint) algebra for a check property.

        Non-parametric properties get the §8-specialized
        :class:`CompiledMonoidAlgebra`; its composition table is cached
        alongside the machine fingerprint, so the compile cost is paid
        once per property and every request runs table-driven.
        """
        key = (
            ("param", fingerprint, tuple(sorted(prop.parametric_symbols)))
            if prop.parametric_symbols
            else ("compiled", fingerprint)
        )
        with self._lock:
            algebra = self._algebras.get(key)
        if algebra is not None:
            self.metrics.incr("cache.machine.hits")
            return algebra
        self.metrics.incr("cache.machine.misses")
        if prop.parametric_symbols:
            algebra = ParametricAlgebra(prop.machine, prop.parametric_symbols)
        else:
            algebra = CompiledMonoidAlgebra(prop.machine)
        with self._lock:
            return self._algebras.setdefault(key, algebra)

    def preload_property(self, name: str, arena_name: str | None = None) -> str:
        """Warm the machine + compiled-algebra caches for one property.

        ``arena_name`` optionally names a shared-memory arena
        (:mod:`repro.core.shm`) carrying this property's compiled
        composition tables: when it attaches cleanly the algebra
        *indexes* the publisher's bytes instead of recompiling the
        monoid — the zero-copy preload every pool worker takes.  Any
        attach failure falls back to the local compile.  Returns the
        machine fingerprint so callers can dedupe preload lists whose
        properties share one machine.
        """
        prop, fingerprint = self._property(name)
        key = (
            ("param", fingerprint, tuple(sorted(prop.parametric_symbols)))
            if prop.parametric_symbols
            else ("compiled", fingerprint)
        )
        with self._lock:
            if key in self._algebras:
                self.metrics.incr("cache.machine.hits")
                return fingerprint
        if arena_name is not None and not prop.parametric_symbols:
            try:
                from repro.core import shm

                algebra, _arena = shm.attach_algebra(
                    arena_name, expected_fingerprint=fingerprint
                )
            except Exception:
                pass  # stale/foreign arena: compile locally below
            else:
                self.metrics.incr("preload.shm_attached")
                with self._lock:
                    self._algebras.setdefault(key, algebra)
                return fingerprint
        self._check_algebra(prop, fingerprint)
        return fingerprint

    def _record_transfer(self, sharded: Any) -> None:
        """Fold a ShardedSolution's transfer ledger into the metrics."""
        transfer = getattr(sharded, "transfer", None)
        if not transfer or transfer.get("mode") == "local":
            return
        self.metrics.incr("transfer.bytes", int(transfer.get("bytes", 0)))
        self.metrics.incr(
            "transfer.shm_attaches", int(transfer.get("shm_attaches", 0))
        )
        self.metrics.incr(
            "transfer.pickle_fallbacks",
            int(transfer.get("pickle_fallbacks", 0)),
        )

    def _bitvector_algebra(self, n_bits: int) -> CompiledGenKillAlgebra:
        key = ("bitvector", n_bits)
        with self._lock:
            algebra = self._algebras.get(key)
        if algebra is not None:
            self.metrics.incr("cache.machine.hits")
            return algebra
        self.metrics.incr("cache.machine.misses")
        algebra = CompiledGenKillAlgebra(n_bits, bit_machine=one_bit_machine())
        with self._lock:
            return self._algebras.setdefault(key, algebra)

    # -- solve cache ---------------------------------------------------------

    def _entry(self, key: Any) -> tuple[_Entry, bool]:
        """The cache entry for ``key`` (created if absent) and hit flag."""
        with self._lock:
            entry = self._solved.get(key)
            if entry is not None:
                self._solved.move_to_end(key)
                return entry, True
            entry = _Entry()
            self._solved[key] = entry
            while len(self._solved) > self.cache_size:
                self._solved.popitem(last=False)
                self.metrics.incr("cache.solve.evictions")
            return entry, False

    def _solve(self, key: Any, builder: Callable[[], Any]) -> _Entry:
        """Get or build the solved system for ``key``.

        The build runs under the entry's lock, so concurrent requests
        for the same key block until one of them has solved, then all
        share the result.  ``builder`` returns the analysis object; it
        must leave a ``solver`` attribute reachable (``.solver`` or
        ``.system.solver``).
        """
        entry, _hit = self._entry(key)
        with entry.lock:
            if entry.analysis is None:
                self.metrics.incr("cache.solve.misses")
                # Interrupts surface as typed wire errors; the entry is
                # left unbuilt, so a retry (with a fresh budget) re-runs
                # the builder rather than reusing a half-solved system.
                try:
                    with self.metrics.time("solve"):
                        entry.analysis = builder()
                except SolverCancelled as exc:
                    self.metrics.incr("solve.cancelled")
                    raise EngineError(
                        protocol.E_CANCELLED, f"solve cancelled: {exc.progress}"
                    ) from exc
                except SolverBudgetExceeded as exc:
                    self.metrics.incr("solve.budget_exceeded")
                    raise EngineError(
                        protocol.E_BUDGET,
                        f"{exc} (progress: {exc.progress})",
                    ) from exc
                entry.solver = getattr(entry.analysis, "solver", None)
                if entry.solver is None:
                    entry.solver = entry.analysis.system.solver
            else:
                self.metrics.incr("cache.solve.hits")
        return entry

    def _snapshot_path(self, fingerprint: str, phash: str) -> pathlib.Path | None:
        if self.snapshot_dir is None:
            return None
        return self.snapshot_dir / f"check-{fingerprint}-{phash}.json"

    # -- operations -----------------------------------------------------------

    @staticmethod
    def _parse_cfg(source: str):
        try:
            return build_cfg(source)
        except ValueError as exc:  # ParseError / LexError
            raise EngineError(protocol.E_PARSE, str(exc)) from exc

    def check(
        self,
        program: str,
        property: str,
        traces: bool = False,
        max_findings: int | None = None,
        budget: Budget | None = None,
    ) -> dict:
        """Model-check ``program`` against a registered property."""
        prop, fingerprint = self._property(property)
        phash = program_hash(program)
        key = ("check", fingerprint, phash)

        def build() -> AnnotatedChecker:
            cfg = self._parse_cfg(program)
            snapshot = self._snapshot_path(fingerprint, phash)
            if (
                snapshot is not None
                and snapshot.exists()
                and not prop.parametric_symbols
            ):
                try:
                    loaded = load_solver(
                        read_snapshot(snapshot), expected_fingerprint=fingerprint
                    )
                except SnapshotCorrupt:
                    # Checksum/size mismatch: quarantine the file so the
                    # corruption is counted once, then solve cold.
                    self.metrics.incr("cache.snapshot.corrupt")
                    try:
                        snapshot.unlink()
                    except OSError:
                        pass
                except (ValueError, OSError):
                    pass  # stale snapshot: fall through to cold
                else:
                    self.metrics.incr("cache.snapshot.warm")
                    checker = AnnotatedChecker(
                        cfg, prop, solver=loaded, budget=budget
                    )
                    if loaded.pending_count():
                        # A checkpoint of an interrupted solve: finish the
                        # drain (under this request's budget) before queries.
                        loaded.resume(budget)
                    return checker
            checker = AnnotatedChecker(
                cfg,
                prop,
                algebra=self._check_algebra(prop, fingerprint),
                budget=budget,
                shards=self.shards if not prop.parametric_symbols else 1,
                partition=self.partition,
            )
            self._record_transfer(checker.sharded)
            if snapshot is not None and not prop.parametric_symbols:
                try:
                    self.snapshot_dir.mkdir(parents=True, exist_ok=True)
                    write_snapshot(snapshot, dump_solver(checker.solver))
                    self.metrics.incr("cache.snapshot.saved")
                except (TypeError, OSError):
                    pass  # snapshots are best-effort
            return checker

        entry = self._solve(key, build)
        with entry.lock:
            cached = entry.results.get(("check", traces))
            if cached is None:
                result = entry.analysis.check(traces=traces)
                violations = [
                    {
                        "where": v.node.describe(),
                        "line": v.node.line,
                        "instantiation": (
                            dict(v.instantiation) if v.instantiation else None
                        ),
                        "trace": [step.describe() for step in v.trace],
                    }
                    for v in result.violations
                ]
                cached = {
                    "property": property,
                    "fingerprint": fingerprint,
                    "program": phash,
                    "has_violation": result.has_violation,
                    "violations": violations,
                    "constraints": result.constraints,
                    "facts": result.facts,
                }
                entry.results[("check", traces)] = cached
        response = dict(cached)
        if max_findings is not None:
            response["violations"] = response["violations"][:max_findings]
        return response

    def _journal_append(
        self,
        fingerprint: str,
        prop_name: str,
        check: Any,
        base: str | None,
        version: str,
        source: str,
        key: str | None,
    ) -> int:
        """Write-ahead log one accepted patch; 0 on (counted) failure."""
        assert self.journal is not None
        try:
            try:
                return self.journal.append(
                    fingerprint, base or "", version, source, key
                )
            except KeyError:
                # The session predates the journal (journal_dir added to
                # a warm engine, or the directory was wiped): open it at
                # the session's *current* state, then log the patch.
                self.journal.begin(
                    fingerprint, prop_name, base or "", check.source
                )
                return self.journal.append(
                    fingerprint, base or "", version, source, key
                )
        except OSError:
            self.metrics.incr("journal.append_failed")
            return 0

    def patch(
        self,
        program: str,
        property: str,
        base: str | None = None,
        key: str | None = None,
        budget: Budget | None = None,
    ) -> dict:
        """Differentially re-check an edited ``program``.

        Keeps one hot :class:`~repro.incremental.diff.StableCheck` per
        property machine and advances it to ``program`` by constraint
        patching (diff the stable encodings, DRed-repair the solved
        form).  Falls back to a cold solve — never an error — when
        there is no hot session (``cold-start``, or
        ``quarantined-<slug>`` when recovery refused the session's
        journal), the client's ``base`` version token does not match
        the session (``base-mismatch``), or the patch itself fails
        (``patch-failed``, after discarding the possibly-mid-repair
        session).

        With a journal, every accepted patch is logged *ahead of
        application*; ``key`` is the client's idempotency token — a
        retry of an already-applied patch (same key, same program)
        answers from the session/record with ``replayed: true`` instead
        of degrading to ``base-mismatch``.
        """
        from repro.incremental import StableCheck
        from repro.incremental.delta import UnsupportedConstraintError

        prop, fingerprint = self._property(property)
        if prop.parametric_symbols:
            raise EngineError(
                protocol.E_UNSUPPORTED,
                f"property {property!r} is parametric; patch supports "
                "plain properties only",
            )
        # Validate the edited program up front: a parse error must be a
        # clean refusal that leaves the hot session untouched.
        self._parse_cfg(program)
        phash = program_hash(program)
        with self._lock:
            entry = self._delta.get(fingerprint)
            if entry is None:
                entry = self._delta.setdefault(fingerprint, _DeltaEntry())
        with entry.lock:
            fallback: str | None = None
            patch_stats: dict | None = None
            replayed = False
            check = entry.check
            old_phash = entry.phash
            if key is not None:
                recorded = entry.idem.get(key)
                if recorded is not None and recorded.get("version") == phash:
                    self.metrics.incr("patch.replayed")
                    response = dict(recorded)
                    response["replayed"] = True
                    return response
                if (
                    check is not None
                    and key == entry.last_key
                    and phash == entry.phash
                ):
                    # The journal says this exact patch already applied
                    # (recovered session whose in-memory window is gone,
                    # or a response lost in flight): answer from the
                    # session instead of a base-mismatch cold solve.
                    self.metrics.incr("patch.replayed")
                    replayed = True
            if not replayed:
                if check is None:
                    slug = self._quarantined.pop(fingerprint, None)
                    fallback = f"quarantined-{slug}" if slug else "cold-start"
                elif base is not None and base != entry.phash:
                    fallback = "base-mismatch"
            journal_count = 0
            if fallback is None and not replayed:
                if self.journal is not None:
                    journal_count = self._journal_append(
                        fingerprint, property, check, old_phash, phash,
                        program, key,
                    )
                try:
                    with self.metrics.time("patch"):
                        outcome = check.apply_source(program)
                except UnsupportedConstraintError as exc:
                    # Raised while *encoding* the new program, before
                    # any mutation: the session is intact.
                    raise EngineError(protocol.E_UNSUPPORTED, str(exc)) from exc
                except Exception:
                    # The solver may be mid-repair: discard the session
                    # and answer from a cold solve instead.
                    entry.check = None
                    entry.phash = None
                    check = None
                    fallback = "patch-failed"
                else:
                    patch_stats = outcome.stats.as_dict()
                    self.metrics.incr("patch.applied")
            if fallback is not None:
                self.metrics.incr("patch.fallback")
                self.metrics.incr(f"patch.fallback.{fallback}")
                try:
                    with self.metrics.time("solve"):
                        check = StableCheck(
                            program,
                            prop,
                            algebra=self._check_algebra(prop, fingerprint),
                            budget=budget,
                        )
                except UnsupportedConstraintError as exc:
                    raise EngineError(protocol.E_UNSUPPORTED, str(exc)) from exc
                except SolverCancelled as exc:
                    self.metrics.incr("solve.cancelled")
                    raise EngineError(
                        protocol.E_CANCELLED, f"solve cancelled: {exc.progress}"
                    ) from exc
                except SolverBudgetExceeded as exc:
                    self.metrics.incr("solve.budget_exceeded")
                    raise EngineError(
                        protocol.E_BUDGET, f"{exc} (progress: {exc.progress})"
                    ) from exc
                if self.journal is not None:
                    # Any cold (re)build starts a fresh journal at the
                    # known-good state — this also discards a record
                    # appended for a patch that then failed to apply.
                    try:
                        self.journal.begin(fingerprint, property, phash, program)
                    except OSError:
                        self.metrics.incr("journal.append_failed")
            elif (
                not replayed
                and self.journal is not None
                and journal_count
                and self.journal.should_compact(journal_count)
            ):
                try:
                    with self.metrics.time("journal.compact"):
                        self.journal.compact(
                            fingerprint, property, phash, program, check.solver
                        )
                except (TypeError, OSError):
                    self.metrics.incr("journal.compact_failed")
            entry.check = check
            entry.phash = phash
            entry.prop_name = property
            if not replayed:
                entry.last_key = key
            result = check.check()
            violations = [
                {
                    "where": v.node.describe(),
                    "line": v.node.line,
                    "instantiation": None,
                    "trace": [],
                }
                for v in result.violations
            ]
            response = {
                "property": property,
                "fingerprint": fingerprint,
                "program": phash,
                "version": phash,
                "base": old_phash,
                "patched": fallback is None,
                "fallback": fallback,
                "patch": patch_stats,
                "replayed": replayed,
                "has_violation": result.has_violation,
                "violations": violations,
                "constraints": result.constraints,
                "facts": result.facts,
            }
            if key is not None:
                entry.idem[key] = dict(response)
                while len(entry.idem) > _IDEMPOTENCY_WINDOW:
                    entry.idem.popitem(last=False)
            return response

    def dataflow(
        self, program: str, track: list[str], budget: Budget | None = None
    ) -> dict:
        """Interprocedural gen/kill facts for the tracked primitives."""
        from repro.dataflow import AnnotatedBitVectorAnalysis
        from repro.dataflow.problems import call_tracking_problem

        if not track:
            raise EngineError(
                protocol.E_BAD_REQUEST, "dataflow requires at least one primitive"
            )
        track = [str(name) for name in track]
        fingerprint = f"bitvector{len(track)}-{machine_fingerprint(one_bit_machine())}"
        phash = program_hash(program)
        key = ("dataflow", fingerprint, phash, tuple(track))

        def build() -> Any:
            cfg = self._parse_cfg(program)
            problem = call_tracking_problem(cfg, track)
            # Dataflow never extracts witnesses, so it runs on the flat
            # core (difference propagation over packed gen/kill ints).
            return AnnotatedBitVectorAnalysis(
                cfg,
                problem,
                algebra=self._bitvector_algebra(problem.n_bits),
                flat=True,
                budget=budget,
                shards=self.shards,
            )

        entry = self._solve(key, build)
        with entry.lock:
            cached = entry.results.get("dataflow")
            if cached is None:
                analysis = entry.analysis
                facts = list(analysis.problem.facts)
                nodes = []
                for node in analysis.cfg.all_nodes():
                    if node.call is None:
                        continue
                    held = analysis.may_hold(node)
                    nodes.append(
                        {
                            "where": node.describe(),
                            "line": node.line,
                            "may_hold": sorted(facts[i] for i in held),
                        }
                    )
                cached = {
                    "fingerprint": fingerprint,
                    "program": phash,
                    "facts": facts,
                    "nodes": nodes,
                }
                entry.results["dataflow"] = cached
        return cached

    def flow(
        self,
        program: str,
        query: list[str] | None = None,
        pn: bool = False,
        assume: list[list[str]] | None = None,
        budget: Budget | None = None,
    ) -> dict:
        """Section 7 label flow; ``assume`` runs an incremental what-if."""
        from repro.flow import FlowAnalysis

        phash = program_hash(program)
        key = ("flow", phash, bool(pn))

        def build() -> Any:
            try:
                return FlowAnalysis(program, pn=pn, compiled=True, budget=budget)
            except (ValueError, TypeError) as exc:
                # FlowSyntaxError / FlowTypeError
                raise EngineError(protocol.E_PARSE, str(exc)) from exc

        entry = self._solve(key, build)
        with entry.lock:
            analysis = entry.analysis
            result: dict[str, Any] = {
                "fingerprint": machine_fingerprint(analysis.system.machine),
                "program": phash,
                "labels": sorted(analysis.labels),
                "machine_states": analysis.machine_states,
                "monoid_size": analysis.monoid_size,
                "pn": bool(pn),
            }
            try:
                if assume:
                    if query is None:
                        raise EngineError(
                            protocol.E_BAD_REQUEST,
                            "flow 'assume' requires a 'query' to answer",
                        )
                    self.metrics.incr("whatif.queries")
                    src, dst = query
                    result["assume"] = [list(pair) for pair in assume]
                    result["flows"] = analysis.flows_assuming(
                        [tuple(pair) for pair in assume], src, dst
                    )
                    result["query"] = [src, dst]
                elif query is not None:
                    src, dst = query
                    result["flows"] = analysis.flows(src, dst)
                    result["query"] = [src, dst]
                else:
                    result["pairs"] = sorted(
                        [list(pair) for pair in analysis.flow_pairs()]
                    )
            except KeyError as exc:
                raise EngineError(
                    protocol.E_BAD_REQUEST, f"unknown label: {exc.args[0]}"
                ) from exc
        return result

    def stats(self) -> dict:
        """Metrics, cache occupancy, and aggregated solver counters."""
        aggregate = SolverStats()
        with self._lock:
            entries = list(self._solved.values())
            delta_entries = list(self._delta.values())
            cache_info = {
                "entries": len(self._solved),
                "max_entries": self.cache_size,
                "machines": len(self._algebras),
                "properties": len(self._properties),
                "patch_sessions": len(self._delta),
            }
        solvers = [entry.solver for entry in entries]
        solvers.extend(
            entry.check.solver
            for entry in delta_entries
            if entry.check is not None
        )
        for solver in solvers:
            if solver is None:
                continue
            for field, value in solver.stats.as_dict().items():
                setattr(aggregate, field, getattr(aggregate, field) + value)
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = cache_info
        snapshot["solver"] = aggregate.as_dict()
        snapshot["shards"] = self.shards
        snapshot["partition"] = self.partition
        snapshot["protocol"] = protocol.PROTOCOL_VERSION
        snapshot["uptime_s"] = round(time.monotonic() - self.started_at, 3)
        snapshot["recoveries"] = self.recoveries
        if self.journal is not None:
            snapshot["journal"] = {
                "appends": self.journal.appends,
                "fsyncs": self.journal.fsyncs,
                "compactions": self.journal.compactions,
                "quarantined": len(self._quarantined),
            }
        return snapshot

    # -- dispatch (used by the server) ----------------------------------------

    @staticmethod
    def _request_budget(params: dict, budget: Budget | None) -> Budget | None:
        """Fold the wire ``budget`` param into the server-provided budget.

        The server's budget (deadline + cancellation token) is the outer
        bound; a client-requested budget can only tighten it.  With no
        server budget a fresh one is built from the wire spec alone.

        An absolute ``deadline`` param (Unix seconds) is folded in the
        same way: already expired is a typed ``deadline-exceeded``
        refusal, otherwise the remaining time caps ``max_seconds`` so
        the solve never outlives its caller.
        """
        deadline = params.get("deadline")
        if deadline is not None:
            if isinstance(deadline, bool) or not isinstance(
                deadline, (int, float)
            ):
                raise EngineError(
                    protocol.E_BAD_REQUEST,
                    "deadline must be an absolute unix timestamp (seconds)",
                )
            remaining = float(deadline) - time.time()
            if remaining <= 0:
                raise EngineError(
                    protocol.E_DEADLINE,
                    f"deadline expired {-remaining:.3f}s before the solve "
                    "started",
                )
            if budget is None:
                budget = Budget(max_seconds=remaining)
            else:
                budget = budget.tighten(max_seconds=remaining)
        spec = params.get("budget")
        if spec is None:
            return budget
        if not isinstance(spec, dict):
            raise EngineError(
                protocol.E_BAD_REQUEST, "budget param must be an object"
            )
        limits: dict[str, Any] = {}
        for wire_key, kwarg, types in (
            ("steps", "max_steps", (int,)),
            ("seconds", "max_seconds", (int, float)),
            ("facts", "max_facts", (int,)),
        ):
            value = spec.get(wire_key)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, types) or value <= 0:
                raise EngineError(
                    protocol.E_BAD_REQUEST,
                    f"budget.{wire_key} must be a positive number",
                )
            limits[kwarg] = value
        unknown = set(spec) - {"steps", "seconds", "facts"}
        if unknown:
            raise EngineError(
                protocol.E_BAD_REQUEST,
                f"unknown budget key(s): {', '.join(sorted(unknown))}",
            )
        if budget is None:
            return Budget(**limits) if limits else None
        return budget.tighten(**limits)

    def dispatch(
        self, op: str, params: dict, budget: Budget | None = None
    ) -> dict:
        """Route a validated protocol request to its operation.

        ``budget`` is the per-request resource governor the server built
        (deadline, cancellation token); the wire-level ``budget`` param,
        if present, tightens it further.
        """
        if op in ("check", "patch", "dataflow", "flow"):
            budget = self._request_budget(params, budget)
        if op == "patch":
            base = params.get("base")
            if base is not None and not isinstance(base, str):
                raise EngineError(
                    protocol.E_BAD_REQUEST, "patch 'base' must be a string"
                )
            key = params.get("key")
            if key is not None and not isinstance(key, str):
                raise EngineError(
                    protocol.E_BAD_REQUEST, "patch 'key' must be a string"
                )
            return self.patch(
                params["program"],
                params["property"],
                base=base,
                key=key,
                budget=budget,
            )
        if op == "check":
            return self.check(
                params["program"],
                params["property"],
                traces=bool(params.get("traces", False)),
                max_findings=params.get("max_findings"),
                budget=budget,
            )
        if op == "dataflow":
            return self.dataflow(params["program"], params["track"], budget=budget)
        if op == "flow":
            return self.flow(
                params["program"],
                query=params.get("query"),
                pn=bool(params.get("pn", False)),
                assume=params.get("assume"),
                budget=budget,
            )
        if op == "stats":
            return self.stats()
        if op == "ping":
            return {"pong": True, "protocol": protocol.PROTOCOL_VERSION}
        raise EngineError(protocol.E_BAD_REQUEST, f"unknown op {op!r}")
