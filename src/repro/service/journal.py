"""Crash-durable write-ahead journal for hot patch sessions.

The service's differential re-solving sessions (PR 5) are the hottest
state in the process: a client that holds a ``version`` token gets
~60× faster answers than a cold solve.  Before this module that state
lived only in memory — a crash or restart silently degraded every
client back to cold solves.  :class:`SessionJournal` makes the session
*lineage* durable:

* every accepted ``patch`` is logged **ahead of application** as a
  checksummed record (:func:`repro.core.persist.frame_journal_record`)
  carrying the property fingerprint, the ``base``/``version`` tokens,
  the edit payload (the full new source — replay needs nothing else)
  and the client's idempotency key;
* appends are **fsync-batched**: ``fsync_every=1`` (the default) makes
  each record durable before the patch is applied, larger values trade
  the tail of the journal for throughput (group commit) — a lost tail
  is always *detected* on recovery, never silently replayed;
* every ``compact_every`` records the journal is **compacted**: a v3
  solver snapshot is written next to it and the journal is rotated to a
  fresh file whose opening ``base`` record carries the session's
  current source and version, so replay cost is bounded by the
  compaction interval, not the session's lifetime;
* on startup :meth:`load` parses each journal into a
  :class:`JournalLineage` — or a typed quarantine verdict when the file
  is torn, bit-flipped, or structurally inconsistent.  The engine
  replays clean lineages through the normal ``apply_source`` path and
  serves quarantined fingerprints from a typed cold-solve fallback
  instead of ever answering from suspect state.

Rotation reuses :data:`repro.core.persist._rename` as its commit point,
so the existing fault-injection seam
(:meth:`repro.testing.faults.FaultInjector.crash_during_dump`) covers
mid-compaction crashes too; the append-path fsync goes through the
module-level :data:`_fsync` seam so a crash *between append and fsync*
is injectable as well.

Clock-free by construction: records carry sequence numbers, not
timestamps, so replay is deterministic and journals diff cleanly.
"""

from __future__ import annotations

import os
import pathlib
import threading
from dataclasses import dataclass, field
from typing import IO, Any

from repro.core import persist
from repro.core.errors import JournalCorrupt, SnapshotCorrupt

#: Fault-injection seam for the append path (crash between append and
#: fsync); always ``os.fsync`` in production.
_fsync = os.fsync

#: Quarantine slugs — the typed reasons a journal is refused at
#: recovery.  Each one is exercised by a kill-and-restart test.
Q_TORN = "torn-record"
Q_CORRUPT = "corrupt-record"
Q_MISSING_BASE = "missing-base"
Q_BAD_LINEAGE = "bad-lineage"
Q_REPLAY_FAILED = "replay-failed"
Q_SNAPSHOT_MISMATCH = "snapshot-mismatch"

QUARANTINE_SLUGS = (
    Q_TORN,
    Q_CORRUPT,
    Q_MISSING_BASE,
    Q_BAD_LINEAGE,
    Q_REPLAY_FAILED,
    Q_SNAPSHOT_MISMATCH,
)


@dataclass
class JournalLineage:
    """A parsed, structurally verified journal: base state + patch suffix."""

    fingerprint: str
    property_name: str
    base_version: str
    base_source: str
    #: Snapshot file name (relative to the journal directory) the base
    #: record points at, when the rotation was a compaction.
    snapshot: str | None
    #: Patch records past the base, in append order; each is the raw
    #: record dict (``base``/``version``/``source``/``key``).
    patches: list[dict] = field(default_factory=list)

    @property
    def version(self) -> str:
        """The version token the session held when the journal went quiet."""
        return self.patches[-1]["version"] if self.patches else self.base_version


@dataclass
class Quarantined:
    """A journal recovery refusal: the typed reason and its evidence."""

    fingerprint: str
    slug: str
    detail: str


class SessionJournal:
    """One write-ahead journal per property fingerprint, under one dir.

    Thread-safe: a single lock guards the per-fingerprint file handles
    and counters.  The engine already serializes per-session work on the
    session's own lock, so contention here is cross-session only.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        fsync_every: int = 1,
        compact_every: int = 256,
    ):
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every!r}")
        if compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every!r}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_every = fsync_every
        self.compact_every = compact_every
        self._lock = threading.Lock()
        self._files: dict[str, IO[bytes]] = {}
        self._unsynced: dict[str, int] = {}
        self._since_base: dict[str, int] = {}
        self._seq: dict[str, int] = {}
        #: Monotone counters the engine folds into its metrics snapshot.
        self.appends = 0
        self.fsyncs = 0
        self.compactions = 0

    # -- paths -----------------------------------------------------------------

    def wal_path(self, fingerprint: str) -> pathlib.Path:
        return self.directory / f"{fingerprint}.wal"

    def snapshot_path(self, fingerprint: str, version: str) -> pathlib.Path:
        return self.directory / f"{fingerprint}-{version}.ckpt"

    def quarantine_path(self, fingerprint: str) -> pathlib.Path:
        return self.directory / f"{fingerprint}.wal.quarantined"

    # -- write path ------------------------------------------------------------

    def _close_handle(self, fingerprint: str) -> None:
        handle = self._files.pop(fingerprint, None)
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    def _rotate(
        self,
        fingerprint: str,
        property_name: str,
        version: str,
        source: str,
        snapshot: str | None,
    ) -> None:
        """Atomically replace the journal with a fresh base record.

        Uses the same write-temp → fsync → :data:`persist._rename`
        commit point as snapshots, so a crash anywhere in here leaves
        either the old journal or the new one — never a mix — and the
        fault harness's rename seam covers it.
        """
        record = {
            "kind": "base",
            "fingerprint": fingerprint,
            "property": property_name,
            "version": version,
            "source": source,
            "snapshot": snapshot,
        }
        blob = (
            persist.JOURNAL_MAGIC.encode("ascii")
            + b"\n"
            + persist.frame_journal_record(record)
        )
        path = self.wal_path(fingerprint)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, blob)
                _fsync(fd)
            finally:
                os.close(fd)
            persist._rename(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._close_handle(fingerprint)
        self._unsynced[fingerprint] = 0
        self._since_base[fingerprint] = 0
        self._seq[fingerprint] = 0

    def begin(
        self,
        fingerprint: str,
        property_name: str,
        version: str,
        source: str,
        snapshot: str | None = None,
    ) -> None:
        """Start (or restart) a session's journal at a known-good state.

        Called whenever the engine (re)builds a session cold — startup,
        ``cold-start``/``base-mismatch``/``patch-failed`` fallbacks,
        post-quarantine — and as the rotation half of :meth:`compact`.
        """
        with self._lock:
            self._rotate(fingerprint, property_name, version, source, snapshot)

    def append(
        self,
        fingerprint: str,
        base: str,
        version: str,
        source: str,
        key: str | None,
    ) -> int:
        """Log one accepted patch *ahead of its application*.

        Returns the records-since-base count so the caller can decide to
        compact.  Raises :class:`KeyError` if :meth:`begin` has not run
        for this fingerprint (the engine always begins on cold build).
        """
        with self._lock:
            handle = self._files.get(fingerprint)
            if handle is None:
                path = self.wal_path(fingerprint)
                if not path.exists():
                    raise KeyError(
                        f"journal for {fingerprint!r} was never begun"
                    )
                handle = self._files[fingerprint] = open(path, "ab")
            seq = self._seq.get(fingerprint, 0) + 1
            record = {
                "kind": "patch",
                "seq": seq,
                "base": base,
                "version": version,
                "source": source,
                "key": key,
            }
            handle.write(persist.frame_journal_record(record))
            handle.flush()
            self._seq[fingerprint] = seq
            self.appends += 1
            pending = self._unsynced.get(fingerprint, 0) + 1
            if pending >= self.fsync_every:
                _fsync(handle.fileno())
                self.fsyncs += 1
                pending = 0
            self._unsynced[fingerprint] = pending
            count = self._since_base.get(fingerprint, 0) + 1
            self._since_base[fingerprint] = count
            return count

    def flush(self, fingerprint: str | None = None) -> None:
        """Force pending appends durable (drain/checkpoint path)."""
        with self._lock:
            targets = (
                [fingerprint] if fingerprint is not None else list(self._files)
            )
            for fp in targets:
                handle = self._files.get(fp)
                if handle is not None and self._unsynced.get(fp, 0):
                    handle.flush()
                    _fsync(handle.fileno())
                    self.fsyncs += 1
                    self._unsynced[fp] = 0

    def should_compact(self, count_since_base: int) -> bool:
        return count_since_base >= self.compact_every

    def compact(
        self,
        fingerprint: str,
        property_name: str,
        version: str,
        source: str,
        solver: Any,
    ) -> pathlib.Path:
        """Snapshot the session's solver and rotate the journal.

        The snapshot is the recovery *oracle*: replay rebuilds the base
        from source and verifies its canonical solved form against the
        snapshot before trusting the suffix.  Old snapshots for the
        fingerprint are removed after the rotation commits, so a crash
        mid-compaction leaves at worst an extra (complete, checksummed)
        snapshot file.
        """
        snapshot = self.snapshot_path(fingerprint, version)
        persist.write_solver_snapshot(snapshot, solver)
        with self._lock:
            self._rotate(
                fingerprint, property_name, version, source, snapshot.name
            )
            self.compactions += 1
        for old in self.directory.glob(f"{fingerprint}-*.ckpt"):
            if old.name != snapshot.name:
                try:
                    old.unlink()
                except OSError:
                    pass
        return snapshot

    def close(self) -> None:
        with self._lock:
            for fingerprint in list(self._files):
                handle = self._files.get(fingerprint)
                if handle is not None and self._unsynced.get(fingerprint, 0):
                    try:
                        handle.flush()
                        _fsync(handle.fileno())
                    except OSError:
                        pass
                    self._unsynced[fingerprint] = 0
                self._close_handle(fingerprint)

    # -- recovery --------------------------------------------------------------

    def fingerprints(self) -> list[str]:
        """Fingerprints with a journal on disk, sorted for determinism."""
        return sorted(p.name[: -len(".wal")] for p in self.directory.glob("*.wal"))

    def quarantine(self, fingerprint: str, slug: str, detail: str) -> Quarantined:
        """Move a suspect journal aside so it is never replayed again.

        The damaged file is preserved (renamed, not deleted) for
        operator forensics; the next patch request starts the session
        cold and :meth:`begin`\\ s a fresh journal.
        """
        with self._lock:
            self._close_handle(fingerprint)
            self._unsynced.pop(fingerprint, None)
            self._since_base.pop(fingerprint, None)
            self._seq.pop(fingerprint, None)
        path = self.wal_path(fingerprint)
        try:
            os.replace(path, self.quarantine_path(fingerprint))
        except OSError:
            pass
        for old in self.directory.glob(f"{fingerprint}-*.ckpt"):
            try:
                old.unlink()
            except OSError:
                pass
        return Quarantined(fingerprint, slug, detail)

    def load(self, fingerprint: str) -> JournalLineage | Quarantined:
        """Parse one journal into a lineage, or quarantine it.

        Structural verification only — replay (and the snapshot oracle
        check) is the engine's job, because it owns the property
        registry and the solve budget.  Any damage quarantines: a torn
        or truncated tail record (:data:`Q_TORN`), a bit-flipped record
        (:data:`Q_CORRUPT`), a journal without an opening base record
        (:data:`Q_MISSING_BASE`), or patch records whose base/version
        chain does not link up (:data:`Q_BAD_LINEAGE`).
        """
        path = self.wal_path(fingerprint)
        try:
            records, damage = persist.read_journal(path)
        except JournalCorrupt as exc:
            return self.quarantine(fingerprint, Q_CORRUPT, exc.detail)
        except OSError as exc:
            return self.quarantine(fingerprint, Q_CORRUPT, str(exc))
        if damage is not None:
            # A torn tail is the one damage class whose *prefix* is
            # still trustworthy — but the lost record may belong to a
            # patch whose response already reached the client (fsync
            # batching), so the conservative contract is: detect,
            # refuse, fall back cold.  Never serve maybe-stale state.
            return self.quarantine(fingerprint, Q_TORN, damage)
        if not records or records[0].get("kind") != "base":
            return self.quarantine(
                fingerprint, Q_MISSING_BASE, "journal has no opening base record"
            )
        base = records[0]
        required = ("fingerprint", "property", "version", "source")
        if any(not isinstance(base.get(k), str) for k in required):
            return self.quarantine(
                fingerprint, Q_MISSING_BASE, "base record is missing fields"
            )
        if base["fingerprint"] != fingerprint:
            return self.quarantine(
                fingerprint,
                Q_BAD_LINEAGE,
                f"base record names fingerprint {base['fingerprint']!r}",
            )
        lineage = JournalLineage(
            fingerprint=fingerprint,
            property_name=base["property"],
            base_version=base["version"],
            base_source=base["source"],
            snapshot=base.get("snapshot"),
        )
        version = lineage.base_version
        for index, record in enumerate(records[1:]):
            if record.get("kind") != "patch":
                return self.quarantine(
                    fingerprint,
                    Q_BAD_LINEAGE,
                    f"record {index + 1} is {record.get('kind')!r}, "
                    "expected a patch",
                )
            if record.get("base") != version or not isinstance(
                record.get("version"), str
            ) or not isinstance(record.get("source"), str):
                return self.quarantine(
                    fingerprint,
                    Q_BAD_LINEAGE,
                    f"patch {index + 1} does not chain from {version!r}",
                )
            lineage.patches.append(record)
            version = record["version"]
        with self._lock:
            # Resume the write-side counters so post-recovery appends
            # continue the chain (the file ends with a clean newline —
            # read_journal vouched for that above).
            self._close_handle(fingerprint)
            if lineage.patches:
                last = lineage.patches[-1].get("seq")
                self._seq[fingerprint] = (
                    last if isinstance(last, int) else len(lineage.patches)
                )
            else:
                self._seq[fingerprint] = 0
            self._since_base[fingerprint] = len(lineage.patches)
            self._unsynced[fingerprint] = 0
        return lineage

    def read_snapshot_oracle(self, lineage: JournalLineage) -> Any | None:
        """The compaction snapshot's solver, or None when unavailable.

        A corrupt or missing snapshot does not quarantine by itself —
        the base *source* is authoritative and replay re-solves it —
        but a snapshot that loads and then *disagrees* with the rebuilt
        base is evidence one of the two is wrong, which the engine
        treats as :data:`Q_SNAPSHOT_MISMATCH`.
        """
        if lineage.snapshot is None:
            return None
        path = self.directory / lineage.snapshot
        if not path.exists():
            return None
        try:
            return persist.load_solver_snapshot(path)
        except (SnapshotCorrupt, ValueError, OSError):
            return None
