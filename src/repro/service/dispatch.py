"""Multi-process dispatch for analysis operations.

The threaded :class:`~repro.service.server.AnalysisServer` scales to
concurrent *clients* but not to concurrent *CPU*: every solve contends
for one GIL.  :class:`DispatchPool` is the process-level counterpart —
a :class:`~concurrent.futures.ProcessPoolExecutor` whose workers each
host a full :class:`~repro.service.engine.AnalysisEngine`, so solves
run truly in parallel and a crashed solve takes down one worker
process, not the service.

Design rules (see SERVICE.md "Scale-out"):

* **Workers never journal.**  The parent process is the single writer
  for hot patch sessions; ``patch`` must not be routed here.  Worker
  engines are built with ``journal_dir=None``.
* **Preload by fingerprint, attach don't recompile.**  The *parent*
  resolves each preload name to its machine fingerprint once, publishes
  the compiled composition tables to a shared-memory arena
  (:mod:`repro.core.shm`), and ships ``(name, fingerprint, arena)``
  triples to the initializer — so workers attach the parent's bytes
  instead of recompiling, names sharing one machine warm exactly one
  algebra (``preload.deduped`` counts the skips), and the compile cost
  is paid once per *fingerprint* in one process, not once per name per
  worker.  Unknown names are skipped (the lazy path will surface the
  typed ``unsupported`` error to whichever request first asks); when
  shm is unavailable the triple carries no arena and the worker
  compiles locally, once per fingerprint.
* **Typed envelopes, never exceptions.**  ``_worker_execute`` returns
  ``{"ok": True, "result": ...}`` or ``{"ok": False, "code": ...,
  "message": ...}`` — an exception escaping the worker function would
  come back as a pickled traceback with no wire code.  Each envelope
  piggybacks the worker's pid and a fresh
  :meth:`~repro.service.metrics.Metrics.snapshot`, which the parent
  folds into :meth:`DispatchPool.aggregate_metrics` so ``stats``
  reports aggregate truth across the pool.
* **Broken pool ⇒ typed ``unavailable`` + self-heal.**  A worker dying
  mid-solve (OOM kill, segfault, ``kill -9``) breaks the whole
  executor; every in-flight future raises.  :meth:`DispatchPool.execute`
  maps that to :data:`~repro.service.protocol.E_UNAVAILABLE` — a
  retryable refusal, not an ``internal-error`` — and atomically swaps
  in a fresh executor so the *next* request finds a healthy pool.

Cross-process cancellation tokens do not exist: per-request governance
inside a worker rides entirely on the wire params (an absolute
``deadline`` timestamp and/or a ``budget`` spec), which the worker
engine folds into its own :class:`~repro.core.budget.Budget` checks.
The caller's ``timeout`` only stops the *wait*, not the worker.
"""

from __future__ import annotations

import os
import signal
import threading
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Iterable, Sequence

from repro.service import protocol
from repro.service.engine import AnalysisEngine, EngineError
from repro.service.metrics import Metrics

__all__ = ["DispatchPool", "POOL_OPS"]

#: Operations safe to run in a pool worker.  ``patch`` is excluded by
#: design: hot patch sessions mutate journaled state and the parent is
#: the single journal writer.  ``stats``/``shutdown`` are control-plane
#: and answer in the parent.
POOL_OPS = frozenset({"check", "dataflow", "flow", "ping"})

# -- worker side --------------------------------------------------------------

_WORKER_ENGINE: AnalysisEngine | None = None


def _init_worker(
    preload_spec: Sequence[tuple],
    cache_size: int,
    snapshot_dir: str | None,
    shards: int,
    partition: str,
) -> None:
    """Build this worker's engine and warm its per-property caches.

    Runs once per worker process.  ``preload_spec`` carries
    ``(name, fingerprint, arena_name)`` triples resolved by the parent
    (:func:`_resolve_preload`): the fingerprint dedupes names sharing
    one machine so the algebra is warmed once, and the arena name —
    when present — attaches the parent's published composition tables
    zero-copy instead of recompiling.  Preload failures are swallowed
    per-property: a bad name must not brick the worker (the first
    request for it gets the typed error instead).
    """
    global _WORKER_ENGINE
    # The parent owns worker lifecycle: a terminal Ctrl-C (delivered to
    # the whole foreground process group) must not kill workers before
    # the parent drains, nor echo the parent's inherited SIGINT/SIGTERM
    # handlers once per worker.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    engine = AnalysisEngine(
        cache_size=cache_size,
        snapshot_dir=snapshot_dir,
        journal_dir=None,  # single-writer rule: only the parent journals
        shards=shards,
        partition=partition,
    )
    resident: set[str] = set()
    for name, fingerprint, arena_name in preload_spec:
        try:
            if fingerprint is not None and fingerprint in resident:
                # Same machine as an earlier name: the algebra is
                # already warm — only map the name, don't recompile.
                engine._property(name)
                engine.metrics.incr("preload.deduped")
                continue
            resident.add(engine.preload_property(name, arena_name))
            engine.metrics.incr("preload.properties")
        except Exception:
            engine.metrics.incr("preload.failed")
    _WORKER_ENGINE = engine


def _worker_engine() -> AnalysisEngine:
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:  # pool built without the initializer
        _WORKER_ENGINE = AnalysisEngine()
    return _WORKER_ENGINE


def _worker_execute(op: str, params: dict) -> dict:
    """Run one operation in this worker, returning a typed envelope.

    Never raises: anything escaping here would surface in the parent as
    an unpickled traceback without a wire code, and some exception
    payloads (solver internals) may not pickle at all.
    """
    engine = _worker_engine()
    worker = {"pid": os.getpid()}
    try:
        result = engine.dispatch(op, params)
        envelope = {"ok": True, "result": result, "worker": worker}
    except EngineError as exc:
        envelope = {
            "ok": False,
            "code": exc.code,
            "message": exc.message,
            "worker": worker,
        }
    except Exception as exc:  # fault isolation, same contract as the server
        envelope = {
            "ok": False,
            "code": protocol.E_INTERNAL,
            "message": f"{type(exc).__name__}: {exc}",
            "worker": worker,
        }
    worker["metrics"] = engine.metrics.snapshot()
    return envelope


# -- parent side --------------------------------------------------------------


def _resolve_preload(
    names: Sequence[str],
) -> tuple[tuple[str, str | None, str | None], ...]:
    """Resolve preload names to ``(name, fingerprint, arena)`` triples.

    Runs once in the parent: each distinct machine fingerprint gets its
    compiled algebra published to a shared-memory arena exactly once
    (parametric properties and shm-less platforms get ``None`` — the
    worker compiles locally).  Unresolvable names ride through with a
    ``None`` fingerprint so the worker's lazy path still owns the typed
    error.
    """
    from repro.core import shm
    from repro.core.persist import machine_fingerprint
    from repro.modelcheck import PROPERTY_FACTORIES

    spec: list[tuple[str, str | None, str | None]] = []
    published: dict[str, str | None] = {}
    for name in names:
        factory = PROPERTY_FACTORIES.get(name)
        if factory is None:
            spec.append((name, None, None))
            continue
        try:
            prop = factory()
            fingerprint = machine_fingerprint(prop.machine)
        except Exception:
            spec.append((name, None, None))
            continue
        if fingerprint not in published:
            arena_name: str | None = None
            if not prop.parametric_symbols and shm.shm_available():
                try:
                    from repro.core.annotations import CompiledMonoidAlgebra

                    algebra = CompiledMonoidAlgebra(prop.machine)
                    arena_name = shm.publish_algebra(
                        algebra, fingerprint
                    ).name
                except Exception:
                    arena_name = None
            published[fingerprint] = arena_name
        spec.append((name, fingerprint, published[fingerprint]))
    return tuple(spec)


class DispatchPool:
    """A self-healing process pool of preloaded analysis engines.

    ``preload`` names properties (keys of
    :data:`repro.modelcheck.PROPERTY_FACTORIES`) whose machines and
    compiled algebras every worker warms at startup.  ``shards`` is
    forwarded to each worker engine so cold solves inside a worker can
    additionally partition the constraint graph
    (:mod:`repro.core.partition`).

    Thread-safe: any number of server threads (or one selectors loop)
    may call :meth:`submit` / :meth:`execute` concurrently.
    """

    def __init__(
        self,
        workers: int = 2,
        preload: Iterable[str] = (),
        cache_size: int = 64,
        snapshot_dir: str | None = None,
        shards: int = 1,
        metrics: Metrics | None = None,
        partition: str = "greedy",
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.preload = tuple(preload)
        self.cache_size = cache_size
        self.snapshot_dir = snapshot_dir
        self.shards = max(1, shards)
        self.partition = partition
        #: Parent-side metrics (pool lifecycle events, dispatch counts).
        self.metrics = metrics if metrics is not None else Metrics()
        self._lock = threading.Lock()
        self._closed = False
        #: Most recent metrics snapshot per worker pid.  Snapshots are
        #: cumulative per process, so keeping the *latest* per pid (and
        #: retaining dead workers' last words) makes the aggregate the
        #: total over all work the pool ever did.
        self._worker_metrics: dict[int, dict] = {}
        self.rebuilds = 0
        #: Resolved once: fingerprints + published algebra arenas the
        #: initializer attaches (satellite of the zero-copy design —
        #: compile per fingerprint in the parent, map everywhere else).
        self._preload_spec = _resolve_preload(self.preload)
        self._pool = self._new_pool()

    def _new_pool(self) -> ProcessPoolExecutor:
        # Reap arenas orphaned by dead owners (a worker killed between
        # publishing its result segment and the parent adopting it, or
        # a previous crashed service) before spawning workers that will
        # publish fresh ones.  Same sweep on every heal.
        try:
            from repro.core import shm

            reaped = shm.cleanup_stale()
            if reaped:
                self.metrics.incr("shm.stale_reaped", reaped)
        except Exception:
            pass  # observability must not block pool construction
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(
                self._preload_spec,
                self.cache_size,
                self.snapshot_dir,
                self.shards,
                self.partition,
            ),
        )

    # -- lifecycle -------------------------------------------------------------

    def worker_pids(self) -> list[int]:
        """Pids of the current executor's live worker processes."""
        with self._lock:
            processes = getattr(self._pool, "_processes", None) or {}
            return sorted(processes)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
            pool = self._pool
        pool.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "DispatchPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def _heal(self, broken: ProcessPoolExecutor) -> None:
        """Replace a broken executor with a fresh one (idempotent).

        Every future in flight when a worker dies raises
        ``BrokenProcessPool``, so several callers race here; only the
        first to present the still-current pool swaps it.
        """
        with self._lock:
            if self._closed or self._pool is not broken:
                return
            self._pool = self._new_pool()
            self.rebuilds += 1
        self.metrics.incr("pool.broken")
        broken.shutdown(wait=False, cancel_futures=True)

    # -- dispatch --------------------------------------------------------------

    def submit(self, op: str, params: dict) -> tuple[Future, ProcessPoolExecutor]:
        """Submit raw work, returning the future and the pool it rode.

        The pool handle is what :meth:`_heal` needs to self-heal exactly
        once per breakage; :meth:`execute` wraps all of this — use it
        unless you are multiplexing waits yourself (the front door is).
        """
        if op not in POOL_OPS:
            raise EngineError(
                protocol.E_BAD_REQUEST,
                f"operation {op!r} cannot run on the process pool",
            )
        with self._lock:
            if self._closed:
                raise EngineError(
                    protocol.E_SHUTTING_DOWN, "dispatch pool is closed"
                )
            pool = self._pool
        try:
            future = pool.submit(_worker_execute, op, params)
        except (BrokenExecutor, RuntimeError) as exc:
            self._heal(pool)
            raise EngineError(
                protocol.E_UNAVAILABLE,
                f"worker pool unavailable ({type(exc).__name__}); "
                "pool rebuilt, retry",
            ) from exc
        self.metrics.incr("pool.dispatched")
        return future, pool

    def collect(self, future: Future, pool: ProcessPoolExecutor) -> dict:
        """Unwrap a completed (or awaited) future into its result.

        Raises :class:`EngineError` with the envelope's wire code on a
        worker-reported failure, or ``unavailable`` if the worker died.
        """
        try:
            envelope = future.result()
        except BrokenExecutor as exc:
            self._heal(pool)
            self.metrics.incr("pool.lost")
            raise EngineError(
                protocol.E_UNAVAILABLE,
                "a pool worker died mid-request; pool rebuilt, retry",
            ) from exc
        return self._unwrap(envelope)

    def execute(
        self, op: str, params: dict, timeout: float | None = None
    ) -> dict:
        """Run one operation on the pool and wait for its result.

        ``timeout`` bounds the wait only — the worker keeps running
        (bound it too by passing a ``deadline``/``budget`` wire param).
        """
        future, pool = self.submit(op, params)
        try:
            envelope = future.result(timeout=timeout)
        except FutureTimeoutError as exc:
            future.cancel()
            raise EngineError(
                protocol.E_TIMEOUT,
                f"pool request did not finish within {timeout}s",
            ) from exc
        except BrokenExecutor as exc:
            self._heal(pool)
            self.metrics.incr("pool.lost")
            raise EngineError(
                protocol.E_UNAVAILABLE,
                "a pool worker died mid-request; pool rebuilt, retry",
            ) from exc
        return self._unwrap(envelope)

    def _unwrap(self, envelope: dict) -> dict:
        worker = envelope.get("worker") or {}
        pid = worker.get("pid")
        snapshot = worker.get("metrics")
        if isinstance(pid, int) and isinstance(snapshot, dict):
            with self._lock:
                self._worker_metrics[pid] = snapshot
        if envelope.get("ok"):
            return envelope["result"]
        raise EngineError(
            envelope.get("code", protocol.E_INTERNAL),
            envelope.get("message", "worker reported an untyped failure"),
        )

    # -- observability ---------------------------------------------------------

    def aggregate_metrics(self, base: Metrics | None = None) -> dict:
        """One merged snapshot: ``base`` (parent) + latest per worker.

        Each worker snapshot is cumulative for its process, and a fresh
        merge starts from zero every call, so re-merging the latest
        snapshot per pid *replaces* (never double-counts) that worker's
        contribution — the semantics :meth:`Metrics.merge` documents.
        """
        merged = Metrics()
        if base is not None:
            merged.merge(base.snapshot())
        merged.merge(self.metrics.snapshot())
        with self._lock:
            snapshots = list(self._worker_metrics.values())
        for snapshot in snapshots:
            merged.merge(snapshot)
        return merged.snapshot()

    def stats(self) -> dict:
        from repro.core import shm

        with self._lock:
            reporting = len(self._worker_metrics)
        return {
            "workers": self.workers,
            "pids": self.worker_pids(),
            "rebuilds": self.rebuilds,
            "preload": list(self.preload),
            "shards": self.shards,
            "partition": self.partition,
            "reporting": reporting,
            "shm": {
                "available": shm.shm_available(),
                "arenas": list(
                    dict.fromkeys(
                        name
                        for _n, _fp, name in self._preload_spec
                        if name is not None
                    )
                ),
            },
        }
