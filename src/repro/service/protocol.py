"""Versioned JSON-lines wire protocol for the analysis service.

One request or response per line, UTF-8 JSON objects.  Every message
carries the protocol version in ``"v"``; a server refuses versions it
does not speak with the ``version-mismatch`` error code instead of
guessing at field semantics.

Request::

    {"v": 1, "id": 7, "op": "check",
     "params": {"program": "...", "property": "simple-privilege"}}

Response::

    {"v": 1, "id": 7, "ok": true, "result": {...}}
    {"v": 1, "id": 7, "ok": false,
     "error": {"code": "parse-error", "message": "line 3: ..."}}

``id`` is an opaque client-chosen correlation value (echoed verbatim,
``null`` if absent) — responses to pipelined requests may arrive out of
order, and the id is how a client matches them up.

Operations
----------

``check``
    params: ``program`` (mini-C source), ``property`` (registry name),
    optional ``traces`` (bool), ``max_findings`` (int).

The analysis ops (``check``, ``patch``, ``dataflow``, ``flow``) accept a
reserved optional ``budget`` param — an object with any of ``steps``
(int) and ``seconds`` (float) — bounding the solve; exhaustion yields
the ``budget-exceeded`` error code.  They also accept a reserved
``deadline`` param — an *absolute* Unix timestamp (float seconds): work
that arrives already expired is refused with ``deadline-exceeded``
before admission, and otherwise the remaining time tightens the solve
budget end to end.  Servers additionally enforce their own per-request
deadline and admission limits (``timeout``, ``overloaded``,
``cancelled``, ``circuit-open``).
``patch``
    params: ``program`` (the *edited* mini-C source), ``property``
    (registry name), optional ``base`` (a version token: the program
    hash the client believes the server's hot session is at — from a
    prior response's ``version`` field), optional ``key`` (an opaque
    idempotency token: a *retry* of an already-applied patch — same
    key, same program — answers from the session instead of degrading
    to ``base-mismatch``; responses served this way set ``replayed``).
    The server keeps one patchable
    solved session per property machine; when the request can be served
    by differential re-solving it patches that session, otherwise it
    falls back to a cold solve.  The result always reflects ``program``:
    ``patched`` (bool) says which path ran, ``fallback`` carries a
    reason slug (``cold-start``, ``base-mismatch``, ``patch-failed``,
    or ``quarantined-<reason>`` for the first request after a journal
    quarantine)
    when ``patched`` is false, ``version`` is the new program hash to
    send as ``base`` next time, and ``patch`` holds the
    :class:`~repro.incremental.delta.PatchStats` counters on the patched
    path.  Parametric properties are refused with ``unsupported``; a
    program that does not parse is ``parse-error`` (and leaves the hot
    session intact).  A patch failure is *not* an error response — the
    server discards the session, solves cold, and answers with
    ``fallback: "patch-failed"``.
``dataflow``
    params: ``program``, ``track`` (list of primitive names).
``flow``
    params: ``program`` (flow-language source), optional ``query``
    (``[src, dst]``), ``pn`` (bool), ``assume`` (list of ``[src, dst]``
    speculative label flows — the incremental what-if path).
``stats``
    no params; returns engine metrics, cache occupancy, and aggregated
    solver counters.
``ping``
    no params; liveness probe.
``shutdown``
    no params; the server acknowledges and stops accepting requests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

PROTOCOL_VERSION = 1

#: Typed error codes — the wire-level contract, stable across releases.
E_VERSION = "version-mismatch"
E_MALFORMED = "malformed-request"
E_BAD_REQUEST = "bad-request"
E_PARSE = "parse-error"
E_UNSUPPORTED = "unsupported"
E_TIMEOUT = "timeout"
E_SHUTTING_DOWN = "shutting-down"
E_INTERNAL = "internal-error"
#: Resource-governance codes (PR 3).  ``overloaded`` — the admission
#: queue is full and the request was shed without queueing;
#: ``cancelled`` — the server revoked the request (deadline passed or
#: shutdown) and the worker observed the cancellation; ``budget-exceeded``
#: — the solve hit a per-request step/time/fact budget;
#: ``circuit-open`` — this exact request fingerprint has failed
#: repeatedly and is being refused until a cooldown elapses;
#: ``unavailable`` — client-side: retries were exhausted without ever
#: reaching a healthy server.
E_OVERLOADED = "overloaded"
E_CANCELLED = "cancelled"
E_BUDGET = "budget-exceeded"
E_CIRCUIT_OPEN = "circuit-open"
E_UNAVAILABLE = "unavailable"
#: Deadline propagation (PR 8).  Analysis ops accept a reserved
#: ``deadline`` param — an absolute Unix timestamp (float seconds).  A
#: request that arrives already expired is refused *before* admission
#: with this code; otherwise the remaining time tightens the solve
#: budget, so a solve never outlives its caller.  The deadline is
#: excluded from the circuit-breaker fingerprint (it varies per send).
E_DEADLINE = "deadline-exceeded"

ERROR_CODES = frozenset(
    {
        E_VERSION,
        E_MALFORMED,
        E_BAD_REQUEST,
        E_PARSE,
        E_UNSUPPORTED,
        E_TIMEOUT,
        E_SHUTTING_DOWN,
        E_INTERNAL,
        E_OVERLOADED,
        E_CANCELLED,
        E_BUDGET,
        E_CIRCUIT_OPEN,
        E_UNAVAILABLE,
        E_DEADLINE,
    }
)

OPS = frozenset(
    {"check", "patch", "dataflow", "flow", "stats", "ping", "shutdown"}
)

#: Per-op required ``params`` keys, validated at decode time so handler
#: code never sees a structurally invalid request.
_REQUIRED_PARAMS: dict[str, tuple[str, ...]] = {
    "check": ("program", "property"),
    "patch": ("program", "property"),
    "dataflow": ("program", "track"),
    "flow": ("program",),
    "stats": (),
    "ping": (),
    "shutdown": (),
}


class ProtocolError(Exception):
    """A request that cannot be dispatched, with its wire error code."""

    def __init__(self, code: str, message: str, request_id: Any = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.request_id = request_id


@dataclass
class Request:
    op: str
    params: dict[str, Any] = field(default_factory=dict)
    id: Any = None
    version: int = PROTOCOL_VERSION


@dataclass
class Response:
    id: Any
    ok: bool
    result: dict[str, Any] | None = None
    error: dict[str, str] | None = None
    version: int = PROTOCOL_VERSION


def ok_response(request_id: Any, result: dict[str, Any]) -> Response:
    return Response(id=request_id, ok=True, result=result)


def error_response(request_id: Any, code: str, message: str) -> Response:
    assert code in ERROR_CODES, f"unknown error code {code!r}"
    return Response(
        id=request_id, ok=False, error={"code": code, "message": message}
    )


def encode_request(request: Request) -> str:
    """One JSON line (no trailing newline) for a request."""
    return json.dumps(
        {
            "v": request.version,
            "id": request.id,
            "op": request.op,
            "params": request.params,
        },
        separators=(",", ":"),
    )


def decode_request(line: str) -> Request:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` with the precise error code: bad JSON
    or a non-object is ``malformed-request``; a wrong ``v`` is
    ``version-mismatch``; an unknown op or missing required params is
    ``bad-request``.  The request id is recovered whenever possible so
    the error response can still be correlated.
    """
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(E_MALFORMED, f"invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(
            E_MALFORMED, f"request must be a JSON object, got {type(data).__name__}"
        )
    request_id = data.get("id")
    version = data.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            E_VERSION,
            f"protocol version {version!r} not supported "
            f"(server speaks {PROTOCOL_VERSION})",
            request_id,
        )
    op = data.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            E_BAD_REQUEST, f"unknown op {op!r}", request_id
        )
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            E_BAD_REQUEST, "params must be an object", request_id
        )
    missing = [key for key in _REQUIRED_PARAMS[op] if key not in params]
    if missing:
        raise ProtocolError(
            E_BAD_REQUEST,
            f"op {op!r} missing required param(s): {', '.join(missing)}",
            request_id,
        )
    return Request(op=op, params=params, id=request_id, version=version)


def encode_response(response: Response) -> str:
    """One JSON line (no trailing newline) for a response."""
    payload: dict[str, Any] = {
        "v": response.version,
        "id": response.id,
        "ok": response.ok,
    }
    if response.ok:
        payload["result"] = response.result
    else:
        payload["error"] = response.error
    return json.dumps(payload, separators=(",", ":"))


def decode_response(line: str) -> Response:
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(E_MALFORMED, f"invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(E_MALFORMED, "response must be a JSON object")
    version = data.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            E_VERSION, f"response protocol version {version!r} not supported"
        )
    ok = data.get("ok")
    if not isinstance(ok, bool):
        raise ProtocolError(E_MALFORMED, "response missing boolean 'ok'")
    if ok:
        result = data.get("result")
        if not isinstance(result, dict):
            raise ProtocolError(E_MALFORMED, "ok response missing 'result'")
        return Response(id=data.get("id"), ok=True, result=result)
    error = data.get("error")
    if (
        not isinstance(error, dict)
        or not isinstance(error.get("code"), str)
        or not isinstance(error.get("message"), str)
    ):
        raise ProtocolError(E_MALFORMED, "error response missing 'error'")
    return Response(id=data.get("id"), ok=False, error=error)
