"""The analysis engine service (long-lived front door to the solver).

The paper motivates separate/online analysis — solve a library once,
reuse the solved system across many client queries (Section 5).  This
package serves that workload:

* :class:`~repro.service.engine.AnalysisEngine` — an embeddable facade
  over the model checker, dataflow, and flow analyses with machine/
  monoid caching, an LRU of solved systems, snapshot warm-start, and
  mark/rollback what-if queries;
* :mod:`~repro.service.protocol` — the versioned JSON-lines request/
  response schema with typed error codes;
* :class:`~repro.service.server.AnalysisServer` — stdio + TCP server
  with a bounded worker pool, per-request deadlines that *cancel* the
  underlying solve, bounded-queue admission control (load shedding), a
  per-fingerprint circuit breaker, and per-request fault isolation;
* :class:`~repro.service.client.ServiceClient` — the matching client,
  with jittered-exponential-backoff reconnect/retry and auto-attached
  ``patch`` idempotency keys;
* :class:`~repro.service.journal.SessionJournal` — the crash-durable
  write-ahead journal for hot patch sessions: checksummed records,
  fsync batching, snapshot compaction, typed quarantine on damage;
* :class:`~repro.service.metrics.Metrics` — request/cache/solver
  counters surfaced by the ``stats`` operation;
* :class:`~repro.service.dispatch.DispatchPool` — a self-healing
  process pool of preloaded analysis engines (true CPU parallelism);
* :class:`~repro.service.frontdoor.AsyncAnalysisServer` — the
  selectors-based single-thread front door that parses, admits, and
  governs inline while dispatching solves to the process pool.
"""

from repro.service import protocol
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    deadline_in,
)
from repro.service.engine import AnalysisEngine, EngineError, program_hash
from repro.service.journal import (
    QUARANTINE_SLUGS,
    JournalLineage,
    Quarantined,
    SessionJournal,
)
from repro.service.dispatch import DispatchPool
from repro.service.frontdoor import AsyncAnalysisServer
from repro.service.metrics import Metrics
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import AnalysisServer, CircuitBreaker

__all__ = [
    "AnalysisEngine",
    "AnalysisServer",
    "AsyncAnalysisServer",
    "CircuitBreaker",
    "DispatchPool",
    "EngineError",
    "JournalLineage",
    "Metrics",
    "PROTOCOL_VERSION",
    "QUARANTINE_SLUGS",
    "Quarantined",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "SessionJournal",
    "deadline_in",
    "program_hash",
    "protocol",
]
