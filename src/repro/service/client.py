"""Client for the analysis service's JSON-lines protocol.

:class:`ServiceClient` speaks to a TCP server::

    with ServiceClient("127.0.0.1", 7432) as client:
        result = client.check(source, "simple-privilege")
        if result["has_violation"]:
            ...

Convenience methods mirror the protocol operations; each returns the
response's ``result`` dict or raises :class:`ServiceError` carrying the
typed error code.  The client is thread-safe: a lock serializes the
socket, and responses are matched to requests by id (the server may
answer pipelined requests out of order).
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from repro.service import protocol


class ServiceError(Exception):
    """An error response from the service, with its wire error code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServiceClient:
    """A blocking TCP client for :class:`repro.service.server.AnalysisServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7432, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._buffer = b""
        self._next_id = 0
        # responses that arrived while waiting for a different id
        self._mailbox: dict[Any, protocol.Response] = {}

    # -- plumbing --------------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock = sock
        return self

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _read_line(self) -> str:
        assert self._sock is not None
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServiceError(
                    protocol.E_INTERNAL, "connection closed by server"
                )
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line.decode("utf-8")

    def request(self, op: str, **params: Any) -> dict:
        """Send one request and return its ``result`` (or raise)."""
        self.connect()
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            line = protocol.encode_request(
                protocol.Request(op=op, params=params, id=request_id)
            )
            assert self._sock is not None
            self._sock.sendall(line.encode("utf-8") + b"\n")
            while True:
                response = self._mailbox.pop(request_id, None)
                if response is None:
                    response = protocol.decode_response(self._read_line())
                    if response.id != request_id:
                        self._mailbox[response.id] = response
                        continue
                break
        if not response.ok:
            assert response.error is not None
            raise ServiceError(response.error["code"], response.error["message"])
        assert response.result is not None
        return response.result

    # -- operations ------------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def check(self, program: str, property: str, **options: Any) -> dict:
        return self.request("check", program=program, property=property, **options)

    def dataflow(self, program: str, track: list[str]) -> dict:
        return self.request("dataflow", program=program, track=track)

    def flow(
        self,
        program: str,
        query: list[str] | None = None,
        pn: bool = False,
        assume: list[list[str]] | None = None,
    ) -> dict:
        params: dict[str, Any] = {"program": program, "pn": pn}
        if query is not None:
            params["query"] = list(query)
        if assume is not None:
            params["assume"] = [list(pair) for pair in assume]
        return self.request("flow", **params)

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        return self.request("shutdown")
