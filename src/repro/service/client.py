"""Client for the analysis service's JSON-lines protocol.

:class:`ServiceClient` speaks to a TCP server::

    with ServiceClient("127.0.0.1", 7432) as client:
        result = client.check(source, "simple-privilege")
        if result["has_violation"]:
            ...

Convenience methods mirror the protocol operations; each returns the
response's ``result`` dict or raises :class:`ServiceError` carrying the
typed error code.  The client is thread-safe: a lock serializes the
socket, and responses are matched to requests by id (the server may
answer pipelined requests out of order).

Connection failures — refused connects, a server that dies mid-request,
a dropped socket — are retried with jittered exponential backoff up to
``retries`` times, reconnecting each attempt; when every attempt fails
the client raises :class:`ServiceUnavailable` (wire code
``unavailable``).  Retrying re-sends the request, which is safe because
every operation is idempotent: analyses are cached by content hash, and
``patch`` — the one state-advancing op — auto-attaches an idempotency
``key``, so a retry whose first send *was* applied (the response was
lost in flight, or the server crashed after journaling) answers from
the recorded result instead of degrading to a ``base-mismatch`` cold
solve.  *Error responses* from a live server are never retried — they
are answers, not failures.

An optional ``deadline`` (absolute Unix seconds) on any analysis op
propagates end to end: the server refuses already-expired work before
admission (``deadline-exceeded``) and caps the solve budget with the
remaining time.  The convenience ``deadline_in(seconds)`` helper builds
one from a relative timeout.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any

from repro.service import protocol


def deadline_in(seconds: float) -> float:
    """An absolute ``deadline`` param value ``seconds`` from now."""
    return time.time() + seconds


class ServiceError(Exception):
    """An error response from the service, with its wire error code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServiceUnavailable(ServiceError):
    """No attempt reached a live server; retries are exhausted."""

    def __init__(self, message: str):
        super().__init__(protocol.E_UNAVAILABLE, message)


class _ConnectionLost(Exception):
    """Internal: the transport died mid-request (retryable)."""


class ServiceClient:
    """A blocking TCP client for :class:`repro.service.server.AnalysisServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7432,
        timeout: float = 60.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: int | None = None,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        # Seedable so tests (and the fault harness) get deterministic
        # backoff schedules.
        self._rng = random.Random(retry_seed)
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._buffer = b""
        self._next_id = 0
        # responses that arrived while waiting for a different id
        self._mailbox: dict[Any, protocol.Response] = {}

    # -- plumbing --------------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock = sock
        return self

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _reset(self) -> None:
        """Drop the dead transport so the next attempt reconnects clean.

        Buffered bytes and mailboxed responses belong to the old
        connection's request ids; keeping them would mis-correlate
        replies after the reconnect.
        """
        self.close()
        self._buffer = b""
        self._mailbox.clear()

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _read_line(self) -> str:
        assert self._sock is not None
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise _ConnectionLost("connection closed by server")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line.decode("utf-8")

    def _request_once(self, op: str, params: dict) -> protocol.Response:
        """One attempt over the current (or a fresh) connection."""
        self.connect()
        self._next_id += 1
        request_id = self._next_id
        line = protocol.encode_request(
            protocol.Request(op=op, params=params, id=request_id)
        )
        assert self._sock is not None
        self._sock.sendall(line.encode("utf-8") + b"\n")
        while True:
            response = self._mailbox.pop(request_id, None)
            if response is None:
                response = protocol.decode_response(self._read_line())
                if response.id != request_id:
                    self._mailbox[response.id] = response
                    continue
            return response

    def request(self, op: str, **params: Any) -> dict:
        """Send one request and return its ``result`` (or raise).

        Transport failures are retried with jittered exponential
        backoff; ``shutdown`` is the exception (a connection that dies
        right after a shutdown is the expected outcome, not a failure
        worth re-sending).
        """
        attempts = 1 if op == "shutdown" else self.retries + 1
        delay = self.backoff
        last_error: Exception | None = None
        with self._lock:
            for attempt in range(attempts):
                if attempt:
                    # Equal jitter: half the deterministic delay plus a
                    # random half, so synchronized clients fan out.
                    time.sleep(delay * (0.5 + self._rng.random() * 0.5))
                    delay = min(delay * 2, self.backoff_cap)
                try:
                    response = self._request_once(op, params)
                    break
                except (_ConnectionLost, OSError) as exc:
                    last_error = exc
                    self._reset()
            else:
                raise ServiceUnavailable(
                    f"{op!r} failed after {attempts} attempt(s): "
                    f"{type(last_error).__name__}: {last_error}"
                )
        if not response.ok:
            assert response.error is not None
            raise ServiceError(response.error["code"], response.error["message"])
        assert response.result is not None
        return response.result

    # -- operations ------------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def check(self, program: str, property: str, **options: Any) -> dict:
        return self.request("check", program=program, property=property, **options)

    def patch(
        self,
        program: str,
        property: str,
        base: str | None = None,
        key: str | None = None,
        **options: Any,
    ) -> dict:
        """Differentially re-check an edited program.

        Pass the previous response's ``version`` as ``base`` to insist
        the server patch from that exact program (a mismatch falls back
        to a cold solve rather than patching from the wrong base).

        ``key`` is the idempotency token journaled with the patch; one
        is generated automatically (from the client's seedable RNG) so
        transport-level retries of an already-applied patch return the
        recorded result instead of a ``base-mismatch`` cold solve.
        Pass an explicit key to correlate retries across client
        instances.
        """
        if key is None:
            key = f"{self._rng.getrandbits(128):032x}"
        params: dict[str, Any] = {
            "program": program,
            "property": property,
            "key": key,
        }
        if base is not None:
            params["base"] = base
        params.update(options)
        return self.request("patch", **params)

    def dataflow(self, program: str, track: list[str]) -> dict:
        return self.request("dataflow", program=program, track=track)

    def flow(
        self,
        program: str,
        query: list[str] | None = None,
        pn: bool = False,
        assume: list[list[str]] | None = None,
    ) -> dict:
        params: dict[str, Any] = {"program": program, "pn": pn}
        if query is not None:
            params["query"] = list(query)
        if assume is not None:
            params["assume"] = [list(pair) for pair in assume]
        return self.request("flow", **params)

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        return self.request("shutdown")
