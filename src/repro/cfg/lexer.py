"""Lexer for the mini-C subset used by the model-checking experiments."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator


class LexError(ValueError):
    """Raised on input the lexer cannot tokenize."""


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int


KEYWORDS = {
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
    "switch",
    "case",
    "default",
    "int",
    "void",
    "char",
    "long",
    "unsigned",
    "static",
    "struct",
    "const",
}

_TOKEN_SPEC = [
    ("comment", r"/\*.*?\*/|//[^\n]*"),
    ("preproc", r"\#[^\n]*"),
    ("newline", r"\n"),
    ("ws", r"[ \t\r]+"),
    ("number", r"0[xX][0-9a-fA-F]+|\d+"),
    ("string", r'"(?:\\.|[^"\\])*"'),
    ("char", r"'(?:\\.|[^'\\])'"),
    ("ident", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("op", r"->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%=<>!&|^~?:.,;(){}\[\]]"),
]

_MASTER_RE = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC), re.DOTALL
)


def tokenize(source: str) -> Iterator[Token]:
    """Tokenize mini-C source, skipping comments and preprocessor lines."""
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        match = _MASTER_RE.match(source, pos)
        if match is None:
            snippet = source[pos : pos + 20]
            raise LexError(f"line {line}: cannot tokenize {snippet!r}")
        kind = match.lastgroup
        text = match.group()
        pos = match.end()
        if kind == "newline":
            line += 1
            continue
        if kind in ("ws", "preproc"):
            continue
        if kind == "comment":
            line += text.count("\n")
            continue
        if kind == "ident" and text in KEYWORDS:
            yield Token("kw", text, line)
        else:
            assert kind is not None
            yield Token(kind, text, line)
