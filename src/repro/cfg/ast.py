"""AST for the mini-C subset.

Only the control structure and call expressions matter to the analyses;
arithmetic is parsed but carried opaquely.  All nodes record the source
line for witness reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class Expr:
    line: int = 0


@dataclass(frozen=True)
class Number(Expr):
    value: int = 0


@dataclass(frozen=True)
class String(Expr):
    value: str = ""


@dataclass(frozen=True)
class Ident(Expr):
    name: str = ""


@dataclass(frozen=True)
class Unary(Expr):
    op: str = ""
    operand: Expr | None = None


@dataclass(frozen=True)
class Binary(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass(frozen=True)
class Assign(Expr):
    target: Expr | None = None
    value: Expr | None = None


@dataclass(frozen=True)
class Call(Expr):
    callee: str = ""
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Stmt:
    line: int = 0


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass(frozen=True)
class Decl(Stmt):
    name: str = ""
    init: Expr | None = None


@dataclass(frozen=True)
class Block(Stmt):
    body: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    orelse: Stmt | None = None


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass(frozen=True)
class Case:
    """One ``case N:`` (or ``default:`` when value is None) arm."""

    value: int | None
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class Switch(Stmt):
    cond: Expr | None = None
    cases: tuple[Case, ...] = ()


@dataclass(frozen=True)
class Return(Stmt):
    value: Expr | None = None


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


@dataclass(frozen=True)
class Function:
    name: str
    params: tuple[str, ...]
    body: Block
    line: int = 0


@dataclass(frozen=True)
class Program:
    functions: tuple[Function, ...] = ()

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    @property
    def function_names(self) -> set[str]:
        return {fn.name for fn in self.functions}


def calls_in(expr: Expr | None) -> Iterator[Call]:
    """All call expressions inside ``expr``, in evaluation order.

    Arguments are visited left to right before the call itself (C's
    unspecified order pinned down deterministically); for assignments
    the value is visited before the target.
    """
    if expr is None:
        return
    if isinstance(expr, Call):
        for arg in expr.args:
            yield from calls_in(arg)
        yield expr
    elif isinstance(expr, Unary):
        yield from calls_in(expr.operand)
    elif isinstance(expr, Binary):
        yield from calls_in(expr.left)
        yield from calls_in(expr.right)
    elif isinstance(expr, Assign):
        yield from calls_in(expr.value)
        yield from calls_in(expr.target)
