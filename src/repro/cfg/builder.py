"""AST → interprocedural CFG construction.

Each statement expands to one node per contained call (in evaluation
order) followed by a node for the statement itself; conditions
contribute their call nodes before the branch.  Calls to *defined*
functions become ``"call"`` nodes carrying a globally unique call-site
number — the ``i`` of the ``o_i`` constructors in the Section 6
encoding; calls to unknown functions are primitives, kept as ``"stmt"``
nodes for the property-event mapper.
"""

from __future__ import annotations

import itertools

from repro.cfg import ast
from repro.cfg.graph import CFGNode, FunctionCFG, ProgramCFG


class _Builder:
    def __init__(self, program: ast.Program):
        self.program = program
        self.defined = program.function_names
        self.cfg = ProgramCFG()
        self._ids = itertools.count()
        self._sites = itertools.count(1)

    def build(self) -> ProgramCFG:
        for function in self.program.functions:
            self._build_function(function)
        return self.cfg

    # -- helpers -----------------------------------------------------------------

    def _node(self, function: str, kind: str, **kwargs) -> CFGNode:
        node = CFGNode(id=next(self._ids), function=function, kind=kind, **kwargs)
        return self.cfg.add_node(node)

    def _connect(self, preds: list[CFGNode], node: CFGNode) -> None:
        for pred in preds:
            self.cfg.add_edge(pred, node)

    # -- functions ---------------------------------------------------------------

    def _build_function(self, function: ast.Function) -> None:
        entry = self._node(function.name, "entry", line=function.line)
        exit_node = self._node(function.name, "exit", line=function.line)
        fcfg = FunctionCFG(function.name, entry, exit_node)
        self.cfg.functions[function.name] = fcfg
        self._current_fn = function.name
        self._exit = exit_node
        self._continue_targets: list[CFGNode] = []
        self._break_frames: list[list[CFGNode]] = []
        frontier = self._build_stmt(function.body, [entry])
        self._connect(frontier, exit_node)
        fcfg.nodes = [
            node for node in self.cfg.nodes.values() if node.function == function.name
        ]

    # -- expressions --------------------------------------------------------------

    def _expr_nodes(
        self,
        expr: ast.Expr | None,
        preds: list[CFGNode],
        owner: ast.Stmt | None = None,
    ) -> list[CFGNode]:
        """Thread call nodes for every call inside ``expr``."""
        for call in ast.calls_in(expr):
            if call.callee in self.defined:
                node = self._node(
                    self._current_fn,
                    "call",
                    call=call,
                    site=next(self._sites),
                    line=call.line,
                    owner=owner,
                )
                self.cfg.call_sites[node.site] = (node, call.callee)
            else:
                node = self._node(
                    self._current_fn, "stmt", call=call, line=call.line, owner=owner
                )
            self._connect(preds, node)
            preds = [node]
        return preds

    # -- statements ----------------------------------------------------------------

    def _build_stmt(self, stmt: ast.Stmt, preds: list[CFGNode]) -> list[CFGNode]:
        if not preds:
            return []  # unreachable code after return/break
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                preds = self._build_stmt(inner, preds)
            return preds
        if isinstance(stmt, ast.ExprStmt):
            preds = self._expr_nodes(stmt.expr, preds, owner=stmt)
            node = self._node(self._current_fn, "stmt", stmt=stmt, line=stmt.line)
            self._connect(preds, node)
            return [node]
        if isinstance(stmt, ast.Decl):
            preds = self._expr_nodes(stmt.init, preds, owner=stmt)
            node = self._node(self._current_fn, "stmt", stmt=stmt, line=stmt.line)
            self._connect(preds, node)
            return [node]
        if isinstance(stmt, ast.If):
            preds = self._expr_nodes(stmt.cond, preds)
            branch = self._node(self._current_fn, "stmt", stmt=stmt, line=stmt.line)
            self._connect(preds, branch)
            then_out = self._build_stmt(stmt.then, [branch])
            if stmt.orelse is not None:
                else_out = self._build_stmt(stmt.orelse, [branch])
            else:
                else_out = [branch]
            return then_out + else_out
        if isinstance(stmt, ast.While):
            header = self._node(self._current_fn, "stmt", stmt=stmt, line=stmt.line)
            self._connect(preds, header)
            cond_out = self._expr_nodes(stmt.cond, [header])
            breaks: list[CFGNode] = []
            self._continue_targets.append(header)
            self._break_frames.append(breaks)
            body_out = self._build_stmt(stmt.body, list(cond_out))
            self._break_frames.pop()
            self._continue_targets.pop()
            self._connect(body_out, header)
            return list(cond_out) + breaks
        if isinstance(stmt, ast.Switch):
            preds = self._expr_nodes(stmt.cond, preds)
            head = self._node(self._current_fn, "stmt", stmt=stmt, line=stmt.line)
            self._connect(preds, head)
            breaks: list[CFGNode] = []
            self._break_frames.append(breaks)
            frontier: list[CFGNode] = []  # fallthrough from previous case
            has_default = any(case.value is None for case in stmt.cases)
            for case in stmt.cases:
                entry = [head] + frontier  # dispatch edge + fallthrough
                for inner in case.body:
                    entry = self._build_stmt(inner, entry)
                frontier = entry
            self._break_frames.pop()
            out = list(breaks) + frontier
            if not has_default:
                out.append(head)  # no default: the switch may fall past
            return out
        if isinstance(stmt, ast.Return):
            preds = self._expr_nodes(stmt.value, preds, owner=stmt)
            node = self._node(self._current_fn, "stmt", stmt=stmt, line=stmt.line)
            self._connect(preds, node)
            self.cfg.add_edge(node, self._exit)
            return []
        if isinstance(stmt, ast.Break):
            node = self._node(self._current_fn, "stmt", stmt=stmt, line=stmt.line)
            self._connect(preds, node)
            if not self._break_frames:
                raise ValueError(f"line {stmt.line}: break outside loop/switch")
            self._break_frames[-1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._node(self._current_fn, "stmt", stmt=stmt, line=stmt.line)
            self._connect(preds, node)
            if not self._continue_targets:
                raise ValueError(f"line {stmt.line}: continue outside loop")
            self.cfg.add_edge(node, self._continue_targets[-1])
            return []
        raise TypeError(f"unknown statement {stmt!r}")


def build_program_cfg(program: ast.Program) -> ProgramCFG:
    """Build the interprocedural CFG of a parsed program."""
    return _Builder(program).build()


def build_cfg(source: str) -> ProgramCFG:
    """Parse mini-C source and build its CFG in one step."""
    from repro.cfg.parser import parse_program

    return build_program_cfg(parse_program(source))
