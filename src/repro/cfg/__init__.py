"""A mini-C front end and interprocedural control-flow graphs.

The model-checking experiments (Section 6, Table 1) operate on C
programs.  This subpackage provides the substrate: a lexer and
recursive-descent parser for a C subset (:mod:`repro.cfg.lexer`,
:mod:`repro.cfg.parser`), an AST (:mod:`repro.cfg.ast`), and a builder
producing interprocedural control-flow graphs with explicit
entry/exit nodes and call sites (:mod:`repro.cfg.builder`,
:mod:`repro.cfg.graph`).
"""

from repro.cfg.builder import build_cfg, build_program_cfg
from repro.cfg.graph import CFGNode, FunctionCFG, ProgramCFG, reverse_cfg
from repro.cfg.parser import parse_program

__all__ = [
    "CFGNode",
    "FunctionCFG",
    "ProgramCFG",
    "build_cfg",
    "build_program_cfg",
    "reverse_cfg",
    "parse_program",
]
