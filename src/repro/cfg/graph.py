"""Interprocedural control-flow graph data structures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.cfg import ast


@dataclass(frozen=True)
class CFGNode:
    """One control-flow node.

    ``kind`` is one of:

    * ``"entry"`` / ``"exit"`` — a function's entry and exit points;
    * ``"call"`` — a call to a *defined* function, with its global call
      ``site`` number (the ``i`` of the ``o_i`` constructor);
    * ``"stmt"`` — anything else: primitive calls (``call`` holds the
      call expression, for property-event mapping), declarations and
      plain statements (``stmt`` holds the AST node).

    For call nodes, ``owner`` is the statement the call occurs in, so
    event mappers can recover context such as the variable a result is
    assigned to (the file-descriptor labels of Section 6.4).
    """

    id: int
    function: str
    kind: str
    call: ast.Call | None = None
    stmt: ast.Stmt | None = None
    site: int | None = None
    line: int = 0
    owner: ast.Stmt | None = None

    def describe(self) -> str:
        if self.kind == "entry":
            return f"{self.function}:entry"
        if self.kind == "exit":
            return f"{self.function}:exit"
        if self.call is not None:
            args = ", ".join(_brief(a) for a in self.call.args)
            return f"{self.function}:{self.line}: {self.call.callee}({args})"
        return f"{self.function}:{self.line}"


def _brief(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Number):
        return str(expr.value)
    if isinstance(expr, ast.String):
        return f'"{expr.value}"'
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Call):
        return f"{expr.callee}(...)"
    return "..."


@dataclass
class FunctionCFG:
    name: str
    entry: CFGNode
    exit: CFGNode
    nodes: list[CFGNode] = field(default_factory=list)


@dataclass
class ProgramCFG:
    """A whole-program CFG: per-function graphs plus call-site table."""

    functions: dict[str, FunctionCFG] = field(default_factory=dict)
    nodes: dict[int, CFGNode] = field(default_factory=dict)
    _succ: dict[int, list[int]] = field(default_factory=dict)
    _pred: dict[int, list[int]] = field(default_factory=dict)
    call_sites: dict[int, tuple[CFGNode, str]] = field(default_factory=dict)

    def add_node(self, node: CFGNode) -> CFGNode:
        self.nodes[node.id] = node
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode) -> None:
        successors = self._succ.setdefault(src.id, [])
        if dst.id not in successors:
            successors.append(dst.id)
            self._pred.setdefault(dst.id, []).append(src.id)

    def successors(self, node: CFGNode) -> Iterator[CFGNode]:
        for node_id in self._succ.get(node.id, ()):
            yield self.nodes[node_id]

    def predecessors(self, node: CFGNode) -> Iterator[CFGNode]:
        for node_id in self._pred.get(node.id, ()):
            yield self.nodes[node_id]

    @property
    def main(self) -> FunctionCFG:
        if "main" not in self.functions:
            raise KeyError("program has no main function")
        return self.functions["main"]

    def all_nodes(self) -> Iterator[CFGNode]:
        yield from self.nodes.values()

    def node_count(self) -> int:
        return len(self.nodes)

    def edge_count(self) -> int:
        return sum(len(v) for v in self._succ.values())


def reverse_cfg(cfg: "ProgramCFG") -> "ProgramCFG":
    """The reversed program CFG, for backward dataflow analyses.

    Nodes are shared; every edge is flipped and every function's
    entry/exit pair is swapped.  Forward analysis machinery run on the
    reversed graph computes backward facts: the Section 6 call encoding
    dualizes cleanly (facts enter a callee through its old exit and
    leave through its old entry), so both the annotation-based and the
    functional dataflow solvers work unchanged.
    """
    reversed_cfg = ProgramCFG()
    reversed_cfg.nodes = dict(cfg.nodes)
    reversed_cfg.call_sites = dict(cfg.call_sites)
    for name, function in cfg.functions.items():
        reversed_cfg.functions[name] = FunctionCFG(
            name=name,
            entry=function.exit,
            exit=function.entry,
            nodes=list(function.nodes),
        )
    for node in cfg.all_nodes():
        for succ in cfg.successors(node):
            reversed_cfg.add_edge(succ, node)
    return reversed_cfg
