"""Recursive-descent parser for the mini-C subset.

Grammar (types are parsed and discarded — the analyses are untyped)::

    program  := function*
    function := type ident '(' params? ')' block
    params   := type ident (',' type ident)*
    block    := '{' stmt* '}'
    stmt     := block | if | while | for | return | break | continue
              | decl ';' | expr ';' | ';'
    decl     := type ident ('=' expr)?
    expr     := assignment with the usual C precedence levels
"""

from __future__ import annotations

from repro.cfg import ast
from repro.cfg.lexer import Token, tokenize


class ParseError(ValueError):
    """Raised when the parser cannot make sense of the token stream."""


_TYPE_KEYWORDS = {"int", "void", "char", "long", "unsigned", "static", "struct", "const"}

# Binary operator precedence, loosest first.
_BINARY_LEVELS = [
    {"||"},
    {"&&"},
    {"|"},
    {"^"},
    {"&"},
    {"==", "!="},
    {"<", ">", "<=", ">="},
    {"<<", ">>"},
    {"+", "-"},
    {"*", "/", "%"},
]


class Parser:
    def __init__(self, source: str):
        self.tokens = list(tokenize(source))
        self.pos = 0

    # -- token plumbing --------------------------------------------------------

    def peek(self, offset: int = 0) -> Token | None:
        index = self.pos + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def at(self, kind: str, value: str | None = None, offset: int = 0) -> bool:
        token = self.peek(offset)
        if token is None or token.kind != kind:
            return False
        return value is None or token.value == value

    def take(self, kind: str | None = None, value: str | None = None) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        if kind is not None and token.kind != kind:
            raise ParseError(
                f"line {token.line}: expected {kind}, found {token.value!r}"
            )
        if value is not None and token.value != value:
            raise ParseError(
                f"line {token.line}: expected {value!r}, found {token.value!r}"
            )
        self.pos += 1
        return token

    def _line(self) -> int:
        token = self.peek()
        return token.line if token is not None else 0

    # -- declarations ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions = []
        while self.peek() is not None:
            functions.append(self.parse_function())
        return ast.Program(tuple(functions))

    def _skip_type(self) -> None:
        took_any = False
        while self.at("kw") and self.peek().value in _TYPE_KEYWORDS:
            keyword = self.take("kw").value
            if keyword == "struct" and self.at("ident"):
                self.take("ident")
            took_any = True
        while self.at("op", "*"):
            self.take("op", "*")
        if not took_any:
            token = self.peek()
            where = f"line {token.line}: {token.value!r}" if token else "end of input"
            raise ParseError(f"expected a type, found {where}")

    def parse_function(self) -> ast.Function:
        line = self._line()
        self._skip_type()
        name = self.take("ident").value
        self.take("op", "(")
        params: list[str] = []
        if not self.at("op", ")"):
            if self.at("kw", "void") and self.at("op", ")", offset=1):
                self.take("kw", "void")
            else:
                params.append(self._parse_param())
                while self.at("op", ","):
                    self.take("op", ",")
                    params.append(self._parse_param())
        self.take("op", ")")
        body = self.parse_block()
        return ast.Function(name, tuple(params), body, line)

    def _parse_param(self) -> str:
        self._skip_type()
        return self.take("ident").value

    # -- statements ----------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self._line()
        self.take("op", "{")
        body: list[ast.Stmt] = []
        while not self.at("op", "}"):
            body.append(self.parse_stmt())
        self.take("op", "}")
        return ast.Block(line, tuple(body))

    def parse_stmt(self) -> ast.Stmt:
        line = self._line()
        if self.at("op", "{"):
            return self.parse_block()
        if self.at("op", ";"):
            self.take("op", ";")
            return ast.Block(line, ())
        if self.at("kw", "if"):
            return self._parse_if()
        if self.at("kw", "while"):
            return self._parse_while()
        if self.at("kw", "for"):
            return self._parse_for()
        if self.at("kw", "switch"):
            return self._parse_switch()
        if self.at("kw", "return"):
            self.take("kw", "return")
            value = None
            if not self.at("op", ";"):
                value = self.parse_expr()
            self.take("op", ";")
            return ast.Return(line, value)
        if self.at("kw", "break"):
            self.take("kw", "break")
            self.take("op", ";")
            return ast.Break(line)
        if self.at("kw", "continue"):
            self.take("kw", "continue")
            self.take("op", ";")
            return ast.Continue(line)
        if self.at("kw") and self.peek().value in _TYPE_KEYWORDS:
            self._skip_type()
            name = self.take("ident").value
            init = None
            if self.at("op", "="):
                self.take("op", "=")
                init = self.parse_expr()
            self.take("op", ";")
            return ast.Decl(line, name, init)
        expr = self.parse_expr()
        self.take("op", ";")
        return ast.ExprStmt(line, expr)

    def _parse_if(self) -> ast.If:
        line = self._line()
        self.take("kw", "if")
        self.take("op", "(")
        cond = self.parse_expr()
        self.take("op", ")")
        then = self.parse_stmt()
        orelse = None
        if self.at("kw", "else"):
            self.take("kw", "else")
            orelse = self.parse_stmt()
        return ast.If(line, cond, then, orelse)

    def _parse_while(self) -> ast.While:
        line = self._line()
        self.take("kw", "while")
        self.take("op", "(")
        cond = self.parse_expr()
        self.take("op", ")")
        body = self.parse_stmt()
        return ast.While(line, cond, body)

    def _parse_switch(self) -> ast.Switch:
        line = self._line()
        self.take("kw", "switch")
        self.take("op", "(")
        cond = self.parse_expr()
        self.take("op", ")")
        self.take("op", "{")
        cases: list[ast.Case] = []
        while not self.at("op", "}"):
            if self.at("kw", "case"):
                self.take("kw", "case")
                token = self.take("number")
                value: int | None = int(token.value, 0)
            elif self.at("kw", "default"):
                self.take("kw", "default")
                value = None
            else:
                raise ParseError(
                    f"line {self._line()}: expected 'case' or 'default'"
                )
            self.take("op", ":")
            body: list[ast.Stmt] = []
            while not (
                self.at("op", "}") or self.at("kw", "case") or self.at("kw", "default")
            ):
                body.append(self.parse_stmt())
            cases.append(ast.Case(value, tuple(body)))
        self.take("op", "}")
        return ast.Switch(line, cond, tuple(cases))

    def _parse_for(self) -> ast.Stmt:
        # ``for (init; cond; step) body`` desugars to init; while.
        line = self._line()
        self.take("kw", "for")
        self.take("op", "(")
        init: ast.Stmt | None = None
        if not self.at("op", ";"):
            if self.at("kw") and self.peek().value in _TYPE_KEYWORDS:
                self._skip_type()
                name = self.take("ident").value
                value = None
                if self.at("op", "="):
                    self.take("op", "=")
                    value = self.parse_expr()
                init = ast.Decl(line, name, value)
            else:
                init = ast.ExprStmt(line, self.parse_expr())
        self.take("op", ";")
        cond: ast.Expr | None = None
        if not self.at("op", ";"):
            cond = self.parse_expr()
        self.take("op", ";")
        step: ast.Stmt | None = None
        if not self.at("op", ")"):
            step = ast.ExprStmt(line, self.parse_expr())
        self.take("op", ")")
        body = self.parse_stmt()
        loop_body = ast.Block(line, tuple(s for s in (body, step) if s is not None))
        cond_expr = cond if cond is not None else ast.Number(line, 1)
        loop = ast.While(line, cond_expr, loop_body)
        if init is None:
            return loop
        return ast.Block(line, (init, loop))

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        if self.at("op", "="):
            line = self.take("op", "=").line
            value = self._parse_assignment()
            return ast.Assign(line, left, value)
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self.at("op", "?"):
            line = self.take("op", "?").line
            then = self.parse_expr()
            self.take("op", ":")
            orelse = self._parse_ternary()
            # Model a ternary as two nested binaries: both sides parsed,
            # condition retained — control flow inside ternaries is not
            # tracked (the analyses treat expressions atomically).
            return ast.Binary(line, "?:", cond, ast.Binary(line, ":", then, orelse))
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while self.at("op") and self.peek().value in _BINARY_LEVELS[level]:
            op = self.take("op")
            right = self._parse_binary(level + 1)
            left = ast.Binary(op.line, op.value, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self.at("op") and self.peek().value in ("-", "!", "~", "*", "&", "++", "--"):
            op = self.take("op")
            return ast.Unary(op.line, op.value, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self.at("op", "("):
                if not isinstance(expr, ast.Ident):
                    raise ParseError(
                        f"line {self._line()}: only direct calls are supported"
                    )
                self.take("op", "(")
                args: list[ast.Expr] = []
                if not self.at("op", ")"):
                    args.append(self.parse_expr())
                    while self.at("op", ","):
                        self.take("op", ",")
                        args.append(self.parse_expr())
                close = self.take("op", ")")
                expr = ast.Call(close.line, expr.name, tuple(args))
            elif self.at("op", "[") :
                self.take("op", "[")
                index = self.parse_expr()
                bracket = self.take("op", "]")
                expr = ast.Binary(bracket.line, "[]", expr, index)
            elif self.at("op", "++") or self.at("op", "--"):
                op = self.take("op")
                expr = ast.Unary(op.line, op.value + "post", expr)
            elif self.at("op", ".") or self.at("op", "->"):
                op = self.take("op")
                field = self.take("ident")
                expr = ast.Binary(op.line, op.value, expr, ast.Ident(field.line, field.value))
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input in expression")
        if token.kind == "number":
            self.take("number")
            return ast.Number(token.line, int(token.value, 0))
        if token.kind == "string":
            self.take("string")
            return ast.String(token.line, token.value[1:-1])
        if token.kind == "char":
            self.take("char")
            return ast.Number(token.line, 0)
        if token.kind == "ident":
            self.take("ident")
            return ast.Ident(token.line, token.value)
        if token.kind == "op" and token.value == "(":
            self.take("op", "(")
            expr = self.parse_expr()
            self.take("op", ")")
            return expr
        raise ParseError(f"line {token.line}: unexpected token {token.value!r}")


def parse_program(source: str) -> ast.Program:
    """Parse mini-C source text into a :class:`repro.cfg.ast.Program`."""
    return Parser(source).parse_program()
