"""Differential re-solving for edit streams (the incremental layer).

Turns a solved :class:`~repro.core.solver.Solver` into a patchable
artifact: :class:`DeltaSolver` applies constraint additions and
retractions (DRed-style over-delete + re-derive over the solver's
provenance, with union-find demotion for broken identity cycles), and
:func:`diff_programs` / :class:`StableCheck` map source-text edits to
constraint patches via the edit-stable CFG encoding.
"""

from repro.incremental.delta import (
    DeltaSolver,
    Patch,
    PatchError,
    PatchStateError,
    PatchStats,
    ProvenanceError,
    SupportGraph,
    UnknownConstraintError,
    UnsupportedConstraintError,
)
from repro.incremental.diff import (
    StableCheck,
    diff_constraints,
    diff_programs,
    stable_encode,
)

__all__ = [
    "DeltaSolver",
    "Patch",
    "PatchError",
    "PatchStateError",
    "PatchStats",
    "ProvenanceError",
    "StableCheck",
    "SupportGraph",
    "UnknownConstraintError",
    "UnsupportedConstraintError",
    "diff_constraints",
    "diff_programs",
    "stable_encode",
]
