"""Source-edit front end: map a program edit to a constraint patch.

:class:`~repro.modelcheck.checker.AnnotatedChecker` names node
variables ``S<node_id>`` with *globally* sequential node ids, so
inserting one statement shifts every later id and a textual diff of two
encodings touches nearly every constraint.  The encoder here produces
the same Section 6.1 constraint system under **edit-stable names**:

* node variables are ``S@<function>#<j>`` where ``j`` is the node's
  index within its function's CFG (deterministic for a given function
  body, independent of every other function);
* call wrappers are ``o@<function>#<j>`` keyed the same way, replacing
  the global call-site counter.

With per-function names, editing one function perturbs only that
function's constraints, so ``diff_programs`` — a multiset diff of the
two encodings — yields a patch whose size tracks the edit, which is
what lets :class:`~repro.incremental.delta.DeltaSolver` repair in time
proportional to the affected cone.

:class:`StableCheck` bundles the pieces into the object the analysis
service keeps hot per property: source + CFG + solved system + ledger +
delta engine, with ``apply_source`` advancing it to an edited program
in one call.
"""

from __future__ import annotations

import re
from typing import Any

from repro.cfg.builder import build_cfg
from repro.cfg.graph import CFGNode, ProgramCFG
from repro.core.annotations import CompiledMonoidAlgebra, MonoidAlgebra
from repro.core.budget import Budget
from repro.core.queries import Reachability
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable
from repro.incremental.delta import (
    DeltaSolver,
    Patch,
    UnsupportedConstraintError,
    _constraint_parts,
)
from repro.modelcheck.checker import CheckResult, Violation
from repro.modelcheck.properties import Property

__all__ = ["StableCheck", "diff_constraints", "diff_programs", "stable_encode"]

_PC = Constructor("pc", 0)()


def _node_variables(cfg: ProgramCFG) -> dict[int, Variable]:
    """The node-id → edit-stable variable map (names only, no encode)."""
    node_vars: dict[int, Variable] = {}
    for fname, fcfg in cfg.functions.items():
        for j, node in enumerate(fcfg.nodes):
            node_vars[node.id] = Variable(f"S@{fname}#{j}")
    return node_vars


def _encode_function(
    cfg: ProgramCFG, fname: str, prop: Property, algebra: Any
) -> list[tuple]:
    """The constraints contributed by one function of ``cfg``.

    Depends only on the function's own body and the *classification* of
    its calls (defined vs primitive): callee entry/exit variables are
    always ``S@<callee>#0`` / ``S@<callee>#1`` (the builder creates a
    function's entry and exit nodes first), so no callee body is
    consulted.  That is what makes chunk-level re-encoding exact — a
    function encoded inside a full program and inside a stub harness
    produce the identical batch.
    """
    identity = algebra.identity
    fcfg = cfg.functions[fname]
    node_vars = {
        node.id: Variable(f"S@{fname}#{j}")
        for j, node in enumerate(fcfg.nodes)
    }
    batch: list[tuple] = []
    for j, node in enumerate(fcfg.nodes):
        src = node_vars[node.id]
        if node.kind == "call":
            wrapper = Constructor(f"o@{fname}#{j}", 1)
            callee = node.call.callee
            batch.append(
                (wrapper(src), Variable(f"S@{callee}#0"), identity, node)
            )
            exit_var = Variable(f"S@{callee}#1")
            for succ in cfg.successors(node):
                batch.append(
                    (
                        wrapper.proj(1, exit_var),
                        node_vars[succ.id],
                        identity,
                        node,
                    )
                )
            continue
        event = prop.event_of(node)
        if event is None:
            annotation = identity
        else:
            symbol, labels = event
            if labels is not None:
                raise UnsupportedConstraintError(
                    f"property {prop.name!r} is parametric; incremental "
                    "re-solving supports plain properties only"
                )
            annotation = algebra.symbol(symbol)
        for succ in cfg.successors(node):
            batch.append((src, node_vars[succ.id], annotation, node))
    return batch


def stable_encode(
    cfg: ProgramCFG, prop: Property, algebra: Any
) -> tuple[list[tuple], dict[int, Variable]]:
    """Encode ``cfg`` with edit-stable names.

    Returns the constraint batch (in ``add_many`` item shape, with the
    originating CFG node as ``info``) and the node-id → variable map
    the queries need.
    """
    identity = algebra.identity
    batch: list[tuple] = [(_PC, Variable("S@main#0"), identity, None)]
    cfg.main  # raises KeyError when the program has no main
    for fname in cfg.functions:
        batch.extend(_encode_function(cfg, fname, prop, algebra))
    return batch, _node_variables(cfg)


#: A function definition header at brace depth 0: return type (one or
#: more identifier-ish tokens), the function name, an argument list
#: opening on the same line.
_FN_HEADER = re.compile(r"^\s*[A-Za-z_][\w\s\*]*?([A-Za-z_]\w*)\s*\(")


def _split_functions(source: str) -> list[tuple[str, str]] | None:
    """Split mini-C source into ``(function name, chunk text)`` pairs.

    Purely textual: tracks brace depth (quote-aware) and cuts at each
    depth-0 function header.  Returns ``None`` — caller falls back to a
    whole-program re-encode — for anything it does not recognize:
    stray top-level text, unbalanced braces, headers split across
    lines, or duplicate function names.  The splitter never needs to be
    *complete*; it needs to be *honest* about when it worked.
    """
    chunks: list[tuple[str, str]] = []
    seen: set[str] = set()
    name: str | None = None
    lines: list[str] = []
    depth = 0
    opened = False
    for line in source.splitlines():
        if name is None:
            if not line.strip():
                continue
            match = _FN_HEADER.match(line)
            if match is None:
                return None  # top-level text we do not understand
            name = match.group(1)
            if name in seen:
                return None
            seen.add(name)
            lines = []
            opened = False
        lines.append(line)
        if "{" in line or "}" in line:
            if '"' in line or "'" in line:
                # quote-aware slow scan, for the rare brace+string line
                quote: str | None = None
                escaped = False
                for ch in line:
                    if escaped:
                        escaped = False
                        continue
                    if ch == "\\":
                        escaped = True
                        continue
                    if quote is not None:
                        if ch == quote:
                            quote = None
                        continue
                    if ch in "\"'":
                        quote = ch
                    elif ch == "{":
                        depth += 1
                        opened = True
                    elif ch == "}":
                        depth -= 1
                        if depth < 0:
                            return None
            else:
                opens = line.count("{")
                if opens:
                    opened = True
                depth += opens - line.count("}")
                if depth < 0:
                    return None
            if opened and depth == 0:
                chunks.append((name, "\n".join(lines)))
                name = None
    if name is not None or not chunks:
        return None  # unterminated function (or nothing at all)
    return chunks


def _encode_chunk(
    name: str,
    text: str,
    defined: "list[str] | set[str]",
    prop: Property,
    algebra: Any,
) -> list[tuple]:
    """Encode one function's chunk in isolation.

    The chunk is parsed inside a harness of empty stubs for every other
    defined function, so call classification (``"call"`` node vs
    primitive ``"stmt"``) matches the full program's.  By the
    :func:`_encode_function` invariant the resulting batch is identical
    to the one a whole-program encode would produce for this function.

    Only names that textually occur in the chunk get a stub — a name
    that never appears cannot be called, and a substring false positive
    merely adds a harmless unused stub — so the harness stays
    edit-sized even in programs with hundreds of functions.
    """
    stubs = "\n".join(
        f"void {other}() {{}}"
        for other in defined
        if other != name and other in text
    )
    cfg = build_cfg(text + "\n" + stubs)
    return _encode_function(cfg, name, prop, algebra)


def diff_constraints(
    old: list[tuple], new: list[tuple], identity: Any
) -> Patch:
    """Multiset diff of two constraint batches.

    Constraints are identified by ``(lhs, rhs, annotation)`` — the
    ``info`` payload (the originating CFG node) rides along on
    additions and is irrelevant to retractions.  Order is preserved
    from the input batches, so patches are deterministic.
    """

    def key(item: tuple) -> tuple:
        lhs, rhs, ann, _info = _constraint_parts(item, identity)
        return (lhs, rhs, ann)

    surplus: dict[tuple, int] = {}
    old_by_key: dict[tuple, list[tuple]] = {}
    for item in old:
        k = key(item)
        surplus[k] = surplus.get(k, 0) + 1
        old_by_key.setdefault(k, []).append(item)
    adds: list[tuple] = []
    for item in new:
        k = key(item)
        if surplus.get(k, 0) > 0:
            surplus[k] -= 1
        else:
            adds.append(item)
    retracts: list[tuple] = []
    for item in old:
        k = key(item)
        missing = surplus.get(k, 0)
        if missing > 0:
            surplus[k] = missing - 1
            lhs, rhs, ann, _info = _constraint_parts(item, identity)
            retracts.append((lhs, rhs, ann))
    return Patch(tuple(adds), tuple(retracts))


def diff_programs(
    old_source: str, new_source: str, prop: Property, algebra: Any
) -> Patch:
    """The constraint patch taking ``old_source``'s system to ``new_source``'s.

    Both programs are encoded with the stable encoder under the *same*
    algebra (annotation values must compare equal across the two
    encodings), then diffed.  The patch applies to a system solved from
    ``stable_encode(old_source)`` — i.e. a :class:`StableCheck`.
    """
    old_batch, _ = stable_encode(build_cfg(old_source), prop, algebra)
    new_batch, _ = stable_encode(build_cfg(new_source), prop, algebra)
    return diff_constraints(old_batch, new_batch, algebra.identity)


class StableCheck:
    """A patchable model-checking session over one program + property.

    Solves ``source`` against ``prop`` under the stable encoding and
    keeps everything a patch needs: the constraint ledger, the
    :class:`DeltaSolver`, and the node-variable map for queries.
    ``apply_source`` advances the session to an edited program by
    diffing encodings and patching — the operation the service's
    ``patch`` request runs per keystroke.

    The front end is incremental too.  The source is split into
    per-function chunks textually; an edit that touches *k* functions
    re-parses, re-encodes and diffs only those *k* chunks, so the whole
    patch pipeline — not just the solver repair — runs in time
    proportional to the edit, not the program.  Whenever the splitter
    cannot vouch for the source (unrecognized top-level text, a
    function added or removed, a chunk that fails to parse alone) the
    session silently falls back to a whole-program re-encode, which is
    always correct, merely slower.  The full CFG is rebuilt lazily: a
    patch invalidates it, and only queries that need program points
    (``check``/``has_violation``/``node_var``) pay for the re-parse.
    """

    def __init__(
        self,
        source: str,
        prop: Property,
        algebra: Any | None = None,
        compiled: bool = True,
        budget: Budget | None = None,
        cycle_elim: bool = True,
    ):
        self.property = prop
        if algebra is not None:
            self.algebra = algebra
        elif compiled:
            self.algebra = CompiledMonoidAlgebra(prop.machine)
        else:
            self.algebra = MonoidAlgebra(prop.machine)
        self.pc = _PC
        self.solver = Solver(
            self.algebra,
            record_reasons=True,
            budget=budget,
            cycle_elim=cycle_elim,
        )
        self.source = source
        cfg = build_cfg(source)
        self._cfg: ProgramCFG | None = cfg
        self._pc_constraint = (
            _PC, Variable("S@main#0"), self.algebra.identity, None
        )
        self.constraints, batches = self._full_encode(cfg)
        self._vars: dict[int, Variable] | None = _node_variables(cfg)
        self.solver.add_many(self.constraints)
        self.delta = DeltaSolver(self.solver, self.constraints)
        self._reachability: Reachability | None = None
        # chunk caches (the incremental front end); _fn_texts is None
        # when the splitter could not take responsibility for source
        self._fn_order: list[str] = list(cfg.functions)
        self._fn_texts: dict[str, str] | None = None
        self._fn_batches: dict[str, list[tuple]] = {}
        self._install_chunks(source, cfg, batches)

    # -- encoding --------------------------------------------------------------

    def _full_encode(
        self, cfg: ProgramCFG
    ) -> tuple[list[tuple], dict[str, list[tuple]]]:
        """:func:`stable_encode`, but keeping the per-function batches."""
        cfg.main  # raises KeyError when the program has no main
        batches = {
            fname: _encode_function(cfg, fname, self.property, self.algebra)
            for fname in cfg.functions
        }
        constraints = [self._pc_constraint]
        for fname in cfg.functions:
            constraints.extend(batches[fname])
        return constraints, batches

    def _install_chunks(
        self, source: str, cfg: ProgramCFG, batches: dict[str, list[tuple]]
    ) -> None:
        """Arm (or disarm) the chunk cache for the current source."""
        chunks = _split_functions(source)
        if chunks is None or [n for n, _ in chunks] != list(cfg.functions):
            # the splitter and the parser disagree about what the
            # program contains — incremental mode stays off
            self._fn_order = list(cfg.functions)
            self._fn_texts = None
            self._fn_batches = {}
            return
        self._fn_order = [n for n, _ in chunks]
        self._fn_texts = dict(chunks)
        self._fn_batches = batches

    # -- patching --------------------------------------------------------------

    def diff_to(self, new_source: str) -> tuple[Patch, list[tuple], dict[int, Variable]]:
        """The patch from the current program to ``new_source`` (plus the
        new ledger and variable map, so a successful apply can install
        them without re-encoding)."""
        new_cfg = build_cfg(new_source)
        new_batch, new_vars = stable_encode(new_cfg, self.property, self.algebra)
        patch = diff_constraints(
            self.constraints, new_batch, self.algebra.identity
        )
        return patch, new_batch, new_vars

    def apply_source(self, new_source: str) -> "PatchOutcome":
        """Patch the solved system to match ``new_source``.

        On success the session *is* the edited program's session.  On
        failure the solver may be mid-repair: the session must be
        discarded and rebuilt cold (the caller's responsibility — the
        engine does exactly that).
        """
        outcome = self._apply_incremental(new_source)
        if outcome is None:
            outcome = self._apply_full(new_source)
        return outcome

    def _apply_incremental(self, new_source: str) -> "PatchOutcome | None":
        """The chunk path: re-encode only the functions the edit touched.

        Returns ``None`` when it cannot take responsibility — the chunk
        cache is disarmed, the new source does not split, the function
        set changed (call classification could shift in *unchanged*
        functions), or a changed chunk fails to parse in isolation.
        ``None`` always means "run the full path", never "give up".
        """
        if self._fn_texts is None:
            return None
        chunks = _split_functions(new_source)
        if chunks is None:
            return None
        new_order = [name for name, _ in chunks]
        if set(new_order) != set(self._fn_order):
            return None
        adds: list[tuple] = []
        retracts: list[tuple] = []
        changed: dict[str, tuple[str, list[tuple]]] = {}
        identity = self.algebra.identity
        for name, text in chunks:
            if text == self._fn_texts[name]:
                continue
            try:
                new_batch = _encode_chunk(
                    name, text, new_order, self.property, self.algebra
                )
            except (ValueError, KeyError):
                # the chunk does not parse on its own (or parses to
                # something without this function) — let the full path
                # produce the authoritative result or diagnostic
                return None
            chunk_patch = diff_constraints(
                self._fn_batches[name], new_batch, identity
            )
            adds.extend(chunk_patch.adds)
            retracts.extend(chunk_patch.retracts)
            changed[name] = (text, new_batch)
        stats = self.delta.apply(Patch(tuple(adds), tuple(retracts)))
        # commit: refresh the touched chunks, rebuild the ledger in the
        # new source order, and invalidate the lazily-rebuilt CFG
        self.source = new_source
        self._fn_order = new_order
        assert self._fn_texts is not None
        for name, (text, batch) in changed.items():
            self._fn_texts[name] = text
            self._fn_batches[name] = batch
        constraints = [self._pc_constraint]
        for name in new_order:
            constraints.extend(self._fn_batches[name])
        self.constraints = constraints
        self._cfg = None
        self._vars = None
        self._reachability = None
        return PatchOutcome(
            patch=Patch(tuple(adds), tuple(retracts)), stats=stats
        )

    def _apply_full(self, new_source: str) -> "PatchOutcome":
        """The whole-program path: always correct, O(program) front end."""
        new_cfg = build_cfg(new_source)
        new_batch, batches = self._full_encode(new_cfg)
        patch = diff_constraints(
            self.constraints, new_batch, self.algebra.identity
        )
        stats = self.delta.apply(patch)
        self.source = new_source
        self._cfg = new_cfg
        self.constraints = new_batch
        self._vars = _node_variables(new_cfg)
        self._reachability = None
        self._install_chunks(new_source, new_cfg, batches)
        return PatchOutcome(patch=patch, stats=stats)

    # -- queries ---------------------------------------------------------------

    @property
    def cfg(self) -> ProgramCFG:
        """The current program's CFG, rebuilt on demand after a patch."""
        if self._cfg is None:
            self._cfg = build_cfg(self.source)
            self._vars = _node_variables(self._cfg)
        return self._cfg

    def reachability(self) -> Reachability:
        # Reachability precomputes at construction, so a patched solver
        # needs a fresh instance; apply_source invalidates the cache.
        if self._reachability is None:
            self._reachability = Reachability(
                self.solver, through_constructors=True
            )
        return self._reachability

    def node_var(self, node: CFGNode) -> Variable:
        self.cfg  # the variable map is rebuilt alongside the CFG
        assert self._vars is not None
        return self._vars[node.id]

    def check(self) -> CheckResult:
        """All violating program points (mirrors ``AnnotatedChecker.check``)."""
        reach = self.reachability()
        result = CheckResult(
            constraints=len(self.constraints), facts=self.solver.fact_count()
        )
        for node in self.cfg.all_nodes():
            var = self._vars.get(node.id)
            if var is None:
                continue
            for annotation in reach.annotations_of(var, self.pc):
                if self.algebra.is_accepting(annotation):
                    result.violations.append(
                        Violation(node, annotation, None, ())
                    )
                    break
        return result

    def has_violation(self) -> bool:
        reach = self.reachability()
        for node in self.cfg.all_nodes():
            var = self._vars.get(node.id)
            if var is None:
                continue
            for annotation in reach.annotations_of(var, self.pc):
                if self.algebra.is_accepting(annotation):
                    return True
        return False


class PatchOutcome:
    """What :meth:`StableCheck.apply_source` did."""

    def __init__(self, patch: Patch, stats: Any):
        self.patch = patch
        self.stats = stats
