"""Differential re-solving: patch a solved system instead of re-solving.

The solver's closure is monotone, so *adding* constraints to a solved
system is already incremental: new facts propagate through the ordinary
drain loop and only the difference flows (semi-naive evaluation).  What
monotone closure cannot do is *retract* — removing a given constraint
may invalidate derived facts anywhere downstream.  This module supplies
the missing half with the classic delete-and-rederive (DRed) scheme
over the solver's existing provenance:

1. **over-delete** — starting from the retracted constraints' root
   facts, delete every fact whose *recorded* reason transitively
   depends on a deleted fact.  The solver records only the first
   derivation of each fact, so this over-approximates: a fact with a
   surviving alternate derivation is deleted anyway;
2. **re-derive** — re-enqueue the surviving facts of every *frontier*
   variable (a variable at which a deleted fact could be re-derived by
   a single rule application) and drain.  Every over-deleted fact with
   an alternate support is re-derived, and the re-derivations cascade
   through the normal worklist;
3. **additions** then flow through the ordinary drain.

The frontier is computed from the shape of the resolution rules: every
rule pairs two facts stored at one variable ``v`` and derives a fact
elsewhere, so a deleted ``lower`` at ``w`` can only re-arise from a
predecessor of ``w``, a deleted component edge from a variable holding
an upper bound or projection mentioning its endpoint, and so on.  The
:class:`SupportGraph` maintains the reverse indexes this needs.

Cycle elimination complicates retraction: merging an identity cycle
*forgets* the cycle's internal edges (they canonicalize to self-edges
and are dropped), so when a retraction removes an identity edge between
two merged variables the class might split and its original edges are
unrecoverable from solver state alone.  The engine handles this by
**demotion**: the whole union-find class is dissolved — every fact at
(or into) the representative is deleted, the members are released from
the union-find — and the *given* constraints mentioning any member are
re-asserted from the ledger, re-merging whatever sub-cycles still
exist.  This is why :class:`DeltaSolver` keeps a ledger of the given
constraints alongside the solver's provenance.

Everything here assumes provenance: a solver built with
``record_reasons=False``, or warm-loaded from a snapshot (loaded facts
carry no reasons), is rejected with :class:`ProvenanceError` — callers
like the analysis service treat that as "fall back to a cold solve".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core.solver import FactKey, Solver
from repro.core.terms import Constructed, Projection, Variable

__all__ = [
    "DeltaSolver",
    "Patch",
    "PatchError",
    "PatchStateError",
    "PatchStats",
    "ProvenanceError",
    "SupportGraph",
    "UnknownConstraintError",
    "UnsupportedConstraintError",
]


class PatchError(Exception):
    """Base of all typed patch failures.

    ``code`` is a stable machine-readable slug; the analysis service
    maps it into the ``fallback`` field of a patch response.
    """

    code = "patch-error"


class ProvenanceError(PatchError):
    """The solver carries no (complete) provenance to retract against."""

    code = "no-provenance"


class PatchStateError(PatchError):
    """The solver is in a state that cannot be patched (open journal epoch)."""

    code = "bad-state"


class UnsupportedConstraintError(PatchError):
    """A constraint is outside the retractable standard form."""

    code = "unsupported-constraint"


class UnknownConstraintError(PatchError):
    """A retraction names a constraint the ledger does not contain."""

    code = "unknown-constraint"


@dataclass(frozen=True)
class Patch:
    """A batch of constraint edits against a solved system.

    Items use the :meth:`repro.core.solver.Solver.add_many` shape:
    ``(lhs, rhs)``, ``(lhs, rhs, annotation)`` or
    ``(lhs, rhs, annotation, info)`` — retractions ignore ``info`` (a
    constraint is identified by ``lhs ⊆^annotation rhs`` alone).
    """

    adds: tuple[tuple, ...] = ()
    retracts: tuple[tuple, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.adds and not self.retracts

    def size(self) -> int:
        return len(self.adds) + len(self.retracts)


@dataclass
class PatchStats:
    """What one :meth:`DeltaSolver.apply` did."""

    added_constraints: int = 0
    retracted_constraints: int = 0
    #: facts removed by over-deletion (the DRed cone)
    facts_retracted: int = 0
    #: previously-deleted facts restored by the re-derive pass
    facts_rederived: int = 0
    #: union-find classes dissolved because a retraction broke a cycle
    demotions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "added_constraints": self.added_constraints,
            "retracted_constraints": self.retracted_constraints,
            "facts_retracted": self.facts_retracted,
            "facts_rederived": self.facts_rederived,
            "demotions": self.demotions,
        }


def _commit_retractions() -> None:
    """Crash seam between over-delete and re-derive.

    A no-op in production.  :meth:`repro.testing.faults.FaultInjector.
    crash_during_patch` replaces it to simulate a process dying with the
    solved form over-deleted but not yet repaired — the worst possible
    moment — so tests can prove the engine discards the broken entry and
    falls back to a cold solve.
    """


def _constraint_parts(item: tuple, identity: Any) -> tuple:
    """Split an ``add_many``-shaped item into (lhs, rhs, ann, info)."""
    n = len(item)
    lhs, rhs = item[0], item[1]
    ann = item[2] if n > 2 and item[2] is not None else identity
    info = item[3] if n > 3 else None
    return lhs, rhs, ann, info


def _root_fact(lhs: Any, rhs: Any, ann: Any) -> FactKey:
    """The *structural* root fact a standard-form constraint installs.

    Structural means: the constraint's own variable names, untouched by
    union-find canonicalization — which is what makes ledger keys stable
    across merges and demotions.  Non-standard forms (nested arguments,
    constructed ⊆ constructed, projection into a constructed bound)
    would be normalized through fresh variables or immediate meets whose
    root facts are not recoverable from the constraint alone; those
    raise :class:`UnsupportedConstraintError` and the caller falls back
    to a cold solve.
    """
    if isinstance(lhs, Variable) and isinstance(rhs, Variable):
        return ("edge", lhs, rhs, ann)
    if isinstance(lhs, Constructed) and isinstance(rhs, Variable):
        if not all(isinstance(a, Variable) for a in lhs.args):
            raise UnsupportedConstraintError(
                f"cannot retract nested constructor argument in {lhs}"
            )
        return ("lower", rhs, lhs, ann)
    if isinstance(lhs, Variable) and isinstance(rhs, Constructed):
        if not all(isinstance(a, Variable) for a in rhs.args):
            raise UnsupportedConstraintError(
                f"cannot retract nested constructor argument in {rhs}"
            )
        return ("upper", lhs, rhs, ann)
    if isinstance(lhs, Projection) and isinstance(rhs, Variable):
        return ("proj", lhs.operand, lhs.constructor, lhs.index, rhs, ann)
    raise UnsupportedConstraintError(
        f"constraint {lhs} ⊆ {rhs} is outside the retractable standard form"
    )


def _constraint_of(key: FactKey, info: Any) -> tuple:
    """Rebuild an ``add_many`` item from a structural root-fact key."""
    kind = key[0]
    if kind == "edge":
        return (key[1], key[2], key[3], info)
    if kind == "lower":
        return (key[2], key[1], key[3], info)
    if kind == "upper":
        return (key[1], key[2], key[3], info)
    # proj
    _k, var, ctor, index, target, ann = key
    return (ctor.proj(index, var), target, ann, info)


def _vars_of(key: FactKey) -> Iterator[Variable]:
    """Every variable a structural root-fact key mentions."""
    kind = key[0]
    if kind == "edge":
        yield key[1]
        yield key[2]
        return
    if kind == "proj":
        yield key[1]
        yield key[4]
        return
    yield key[1]
    for arg in key[2].args:
        if isinstance(arg, Variable):
            yield arg


class SupportGraph:
    """Reverse indexes over a solved system's support structure.

    The solver's ``_reasons`` table is the forward support graph (fact →
    its first derivation).  Retraction needs the *reverse* direction —
    "which stored facts could this fact support, and at which variables
    could a deleted fact re-arise" — which this class answers from three
    indexes plus on-the-fly rule simulation:

    * ``proj holders``  — target variable → variables holding a
      projection sink onto it (re-derivation sites for projected edges
      and pn lower bounds);
    * ``upper-arg holders`` — argument variable → variables holding an
      upper bound whose term mentions it (re-derivation sites for
      decomposition component edges);
    * ``upper-term holders`` — upper term → variables holding it
      (re-fire sites for removed constructor meets).

    Indexes are keyed by *current* representatives at build time and
    rebuilt lazily whenever the union-find has changed since (merges
    during a patch's add phase, demotions) — the rebuild is linear in
    the system but only runs after the rare uf-changing patches, so
    ordinary small patches stay cone-local.
    """

    def __init__(self, solver: Solver):
        self.solver = solver
        self._proj_holders: dict[Variable, set[Variable]] = {}
        self._upper_arg_holders: dict[Variable, set[Variable]] = {}
        self._upper_term_holders: dict[Constructed, set[Variable]] = {}
        self._uf_epoch: tuple[int, int] = (-1, -1)
        self._demotions = 0
        self.rebuild()

    # -- index maintenance -----------------------------------------------------

    def _epoch(self) -> tuple[int, int]:
        return (self.solver.stats.vars_merged, self._demotions)

    def rebuild(self) -> None:
        solver = self.solver
        find = solver.find
        proj_holders: dict[Variable, set[Variable]] = {}
        upper_arg: dict[Variable, set[Variable]] = {}
        upper_term: dict[Constructed, set[Variable]] = {}
        for var, bucket in solver._proj.items():
            for _ctor, _index, target, _ann in bucket:
                proj_holders.setdefault(find(target), set()).add(var)
        for var, bucket in solver._upper.items():
            for snk, _ann in bucket:
                upper_term.setdefault(snk, set()).add(var)
                for arg in snk.args:
                    if isinstance(arg, Variable):
                        upper_arg.setdefault(find(arg), set()).add(var)
        self._proj_holders = proj_holders
        self._upper_arg_holders = upper_arg
        self._upper_term_holders = upper_term
        self._uf_epoch = self._epoch()

    def refresh(self) -> None:
        """Rebuild iff the union-find changed since the last build."""
        if self._epoch() != self._uf_epoch:
            self.rebuild()

    def note_demotion(self) -> None:
        self._demotions += 1

    def index_added(self, key: FactKey) -> None:
        """Fold one newly-given upper/proj root fact into the indexes."""
        solver = self.solver
        find = solver.find
        kind = key[0]
        if kind == "proj":
            self._proj_holders.setdefault(find(key[4]), set()).add(find(key[1]))
        elif kind == "upper":
            snk = key[2]
            var = find(key[1])
            self._upper_term_holders.setdefault(snk, set()).add(var)
            for arg in snk.args:
                if isinstance(arg, Variable):
                    self._upper_arg_holders.setdefault(find(arg), set()).add(var)

    def proj_holders(self, target: Variable) -> set[Variable]:
        return self._proj_holders.get(target, set())

    def upper_arg_holders(self, arg: Variable) -> set[Variable]:
        return self._upper_arg_holders.get(arg, set())

    def upper_term_holders(self, term: Constructed) -> set[Variable]:
        return self._upper_term_holders.get(term, set())

    # -- reverse support -------------------------------------------------------

    def dependents(
        self,
        fact: FactKey,
        variants: "_VariantCache",
        invalid_roots: set[Variable],
    ) -> tuple[list[FactKey], list[tuple]]:
        """Stored facts whose recorded reason has ``fact`` as antecedent.

        Enumerated by *forward simulation*: re-run each resolution rule
        ``fact`` participates in against the current tables and keep the
        candidates whose recorded reason actually cites ``fact``.  This
        is how the walk stays proportional to the cone instead of
        needing a materialized dependents multimap kept in sync with
        every drain.  Also returns the constructor-meet memo entries
        ``fact`` justifies (their removal lets surviving pairs re-fire
        the meet, re-recording any inconsistency).

        ``invalid_roots`` collects merged-class representatives whose
        merge may rest on ``fact``: when a simulated rule application
        concludes an identity edge both of whose endpoints resolve to
        the same representative, that application historically derived
        an *internal* cycle edge of the class — a fact cycle
        elimination dropped from storage (self-edges are never kept),
        so it has no recorded reason to chase.  The solver is at
        fixpoint, so every co-resident pair has fired its rule: the
        conclusion really existed, and deleting its antecedent pulls a
        strand out of the cycle that justified the merge.  The caller
        demotes the class; re-assertion re-merges whatever still
        cycles.
        """
        solver = self.solver
        then = solver.algebra.then
        find = solver.find
        pn = solver.pn_projections
        deps: list[FactKey] = []
        mets: list[tuple] = []
        kind = fact[0]
        if kind == "lower":
            _t, var, src, f = fact
            for w, g in solver._succ.get(var, {}):
                cand = ("lower", find(w), src, then(f, g))
                if self._cites(cand, fact):
                    deps.append(cand)
            for snk, g in solver._upper.get(var, {}):
                self._meet_candidates(
                    fact, src, snk, then(f, g), variants, deps, mets,
                    invalid_roots,
                )
            if isinstance(src, Constructed):
                for ctor, index, target, g in solver._proj.get(var, {}):
                    self._proj_candidates(
                        fact, src, ctor, index, target, then(f, g),
                        variants, deps, pn, invalid_roots,
                    )
        elif kind == "edge":
            _t, var, w, g = fact
            wv = find(w)
            for src, f in solver._lower.get(var, {}):
                cand = ("lower", wv, src, then(f, g))
                if self._cites(cand, fact):
                    deps.append(cand)
        elif kind == "upper":
            _t, var, snk, g = fact
            for src, f in solver._lower.get(var, {}):
                self._meet_candidates(
                    fact, src, snk, then(f, g), variants, deps, mets,
                    invalid_roots,
                )
        elif kind == "proj":
            _t, var, ctor, index, target, g = fact
            for src, f in solver._lower.get(var, {}):
                if isinstance(src, Constructed):
                    self._proj_candidates(
                        fact, src, ctor, index, target, then(f, g),
                        variants, deps, pn, invalid_roots,
                    )
        return deps, mets

    def _cites(self, candidate: FactKey, antecedent: FactKey) -> bool:
        """Is ``candidate`` stored with a reason citing ``antecedent``?

        Reasons record antecedents under the names that were canonical
        at derivation time; both sides are resolved through the current
        union-find before comparing.  A reason that cites the
        candidate's *own* canonical key is self-supporting — merging
        collapsed its recorded upstream into itself (rehoming repairs
        this when an outside-citing copy exists, see
        ``Solver._prefer_outside_reason``) — so its true support is
        unknowable and the candidate is conservatively treated as
        depending on whatever was deleted; re-derivation restores it if
        real support survives.
        """
        reason = self.solver._reasons.get(candidate)
        if reason is None or not reason.antecedents:
            return False
        canon = self.solver._canonical_fact
        target = canon(antecedent)
        own = canon(candidate)
        for ant in reason.antecedents:
            ca = canon(ant)
            if ca == target or ca == own:
                return True
        return False

    def _meet_candidates(
        self,
        fact: FactKey,
        src: Constructed,
        snk: Constructed,
        ann: Any,
        variants: "_VariantCache",
        deps: list[FactKey],
        mets: list[tuple],
        invalid_roots: set[Variable],
    ) -> None:
        solver = self.solver
        key = (src, snk, ann)
        if key in solver._met:
            mets.append(key)
        if src.constructor != snk.constructor:
            return
        find = solver.find
        is_identity = solver._is_identity
        ctor = src.constructor
        for index, (a_src, a_snk) in enumerate(zip(src.args, snk.args), 1):
            if ctor.covariant(index):
                head, tail = a_src, a_snk
            else:
                head, tail = a_snk, a_src
            hv = find(head)
            troot = find(tail)
            if hv == troot and is_identity(ann):
                # The conclusion is an identity-class self-edge: an
                # internal cycle edge this fact used to support.  It
                # was never stored (self-edges are dropped), and the
                # demotion it triggers deletes every stale stored
                # spelling wholesale.
                invalid_roots.add(hv)
                continue
            for tv in variants.of(troot):
                cand = ("edge", hv, tv, ann)
                if self._cites(cand, fact):
                    deps.append(cand)

    def _proj_candidates(
        self,
        fact: FactKey,
        src: Constructed,
        ctor: Any,
        index: int,
        target: Variable,
        ann: Any,
        variants: "_VariantCache",
        deps: list[FactKey],
        pn: bool,
        invalid_roots: set[Variable],
    ) -> None:
        solver = self.solver
        find = solver.find
        if src.args and src.constructor == ctor:
            xv = find(src.args[index - 1])
            troot = find(target)
            if xv == troot and solver._is_identity(ann):
                invalid_roots.add(xv)
                return
            for tv in variants.of(troot):
                cand = ("edge", xv, tv, ann)
                if self._cites(cand, fact):
                    deps.append(cand)
        elif pn and src.is_constant:
            cand = ("lower", find(target), src, ann)
            if self._cites(cand, fact):
                deps.append(cand)

    # -- frontier --------------------------------------------------------------

    def frontier_of(self, fact: FactKey) -> set[Variable]:
        """Variables at which ``fact`` could be re-derived in one step.

        A deleted ``lower`` at ``w`` re-arises only by transitivity from
        a predecessor of ``w`` or a pn-projection targeting ``w``; a
        deleted ``edge x → t`` only by projection or decomposition at a
        variable whose projection sink or upper-bound term mentions
        ``t``.  Given uppers and projections never re-arise by rule (the
        ledger restores them), so their frontier is empty.
        """
        solver = self.solver
        find = solver.find
        out: set[Variable] = set()
        kind = fact[0]
        if kind == "lower":
            w = find(fact[1])
            for p, _ann in solver._pred.get(w, {}):
                out.add(find(p))
            out.update(find(v) for v in self.proj_holders(w))
        elif kind == "edge":
            t = find(fact[2])
            out.update(find(v) for v in self.proj_holders(t))
            out.update(find(v) for v in self.upper_arg_holders(t))
        return out

    def met_frontier(self, met_key: tuple) -> set[Variable]:
        """Re-fire sites for a removed constructor-meet memo entry."""
        _src, snk, _ann = met_key
        return {self.solver.find(v) for v in self.upper_term_holders(snk)}


class _VariantCache:
    """Per-patch memo of the stale dst/target spellings of a variable.

    Stored edge and projection keys keep the destination name that was
    canonical at insert time; after later merges that name may be any
    member of the destination's class.  ``of(root)`` lists the spellings
    a stored key might use — the root plus its merged-away members.
    """

    def __init__(self, solver: Solver):
        self._solver = solver
        self._by_root: dict[Variable, list[Variable]] | None = None

    def _table(self) -> dict[Variable, list[Variable]]:
        # One pass over the union-find's merged nodes builds every
        # class's member list at once; ``uf.members`` per root would
        # rescan the whole table on each call.
        if self._by_root is None:
            uf = self._solver._uf
            by: dict[Variable, list[Variable]] = {}
            for child in uf.parent:
                by.setdefault(uf.find(child, False), []).append(child)
            self._by_root = by
        return self._by_root

    def of(self, root: Variable) -> tuple[Variable, ...]:
        return (root, *self._table().get(root, ()))


class DeltaSolver:
    """A solved system plus the machinery to patch it in place.

    ``given`` is the ledger: every constraint the solved system was
    built from, in :meth:`~repro.core.solver.Solver.add_many` item
    shape.  The ledger is what demotion re-asserts when a union-find
    class dissolves and what re-derivation consults when an over-deleted
    fact is still given — solver state alone cannot answer either
    (merged-away identity edges are dropped, and a fact's single
    recorded reason may hide that it is *also* given).

    Raises :class:`ProvenanceError` for solvers without complete
    provenance (``record_reasons=False``, or warm-loaded snapshots) and
    :class:`PatchStateError` while a ``mark()`` epoch is open — the
    LIFO journal cannot replay arbitrary retractions.
    """

    def __init__(self, solver: Solver, given: Iterable[tuple]):
        if not solver.record_reasons:
            raise ProvenanceError(
                "solver was built with record_reasons=False; retraction "
                "needs per-fact provenance"
            )
        if not getattr(solver, "provenance_complete", True):
            raise ProvenanceError(
                "solver facts carry no provenance (warm-loaded snapshot); "
                "re-solve from source to patch"
            )
        if solver._journal:
            raise PatchStateError(
                "cannot patch while a mark()/rollback() epoch is open"
            )
        self.solver = solver
        if solver.pending_count():
            solver.resume()
        identity = solver.algebra.identity
        #: structural root fact -> list of infos (one per given instance)
        self._ledger: dict[FactKey, list[Any]] = {}
        #: raw variable -> structural root facts mentioning it
        self._by_var: dict[Variable, set[FactKey]] = {}
        for item in given:
            lhs, rhs, ann, info = _constraint_parts(item, identity)
            self._admit(_root_fact(lhs, rhs, ann), info)
        self.support = SupportGraph(solver)

    # -- ledger ----------------------------------------------------------------

    def _admit(self, key: FactKey, info: Any) -> None:
        self._ledger.setdefault(key, []).append(info)
        for var in _vars_of(key):
            self._by_var.setdefault(var, set()).add(key)

    def _retire(self, key: FactKey) -> Any:
        infos = self._ledger.get(key)
        if not infos:
            raise UnknownConstraintError(
                f"retracted constraint is not in the ledger: {key!r}"
            )
        info = infos.pop()
        if not infos:
            del self._ledger[key]
            for var in _vars_of(key):
                bucket = self._by_var.get(var)
                if bucket is not None:
                    bucket.discard(key)
        return info

    def ledger_size(self) -> int:
        return sum(len(v) for v in self._ledger.values())

    def _refresh(self) -> None:
        self.support.refresh()

    # -- patch application -----------------------------------------------------

    def patch(self, adds: Iterable[tuple] = (), retracts: Iterable[tuple] = ()) -> PatchStats:
        """Convenience wrapper building and applying a :class:`Patch`."""
        return self.apply(Patch(tuple(adds), tuple(retracts)))

    def apply(self, patch: Patch) -> PatchStats:
        """Apply ``patch`` and restore the solved fixpoint.

        On success the solver holds exactly the canonical solved form a
        cold solve of the edited constraint set would produce (the
        property the hypothesis suite asserts).  On any raise the solved
        form may be mid-repair and must be discarded — callers keep the
        constraint source and fall back to a cold solve.
        """
        solver = self.solver
        if solver._journal:
            raise PatchStateError(
                "cannot patch while a mark()/rollback() epoch is open"
            )
        if solver.pending_count():
            solver.resume()
        stats = PatchStats()
        self._refresh()
        identity = solver.algebra.identity
        is_identity = solver._is_identity
        find = solver.find
        uf = solver._uf

        # 1. Classify retractions: decrement the ledger, split into
        #    cycle demotions and ordinary root-fact deletions.
        demote_roots: dict[Variable, None] = {}
        seeds: list[FactKey] = []
        for item in patch.retracts:
            lhs, rhs, ann, _info = _constraint_parts(item, identity)
            key = _root_fact(lhs, rhs, ann)
            self._retire(key)
            stats.retracted_constraints += 1
            if (
                key[0] == "edge"
                and key[1] != key[2]
                and is_identity(key[3])
                and find(key[1]) == find(key[2])
            ):
                # An identity edge inside a merged class: the class may
                # split, and its internal edges were dropped at merge
                # time — dissolve and re-assert the whole class.
                demote_roots[find(key[1])] = None
                continue
            seeds.append(key)

        # 2. Demotion expansion: a dissolved class contributes concrete
        #    stored-fact seeds (facts at the representative, edges into
        #    it, projections targeting it) plus a class-level frontier,
        #    all collected while names are still merged.
        release: list[Variable] = []
        reassert_vars: list[Variable] = []
        demoted: list[Variable] = []
        demoted_set: set[Variable] = set()
        class_frontier: set[Variable] = set()
        variants = _VariantCache(solver)

        def expand_demotion(root: Variable) -> list[FactKey]:
            members = list(variants.of(root)[1:])
            if not members:
                return []  # not a merged class (or already dissolved)
            demoted.append(root)
            stats.demotions += 1
            self.support.note_demotion()
            release.extend(members)
            # The representative is a class member too (it is just not
            # in uf.parent); its given constraints were equally deleted.
            reassert_vars.extend(members)
            reassert_vars.append(root)
            class_frontier.add(root)
            class_frontier.update(members)
            out: list[FactKey] = []
            for bucket, kind in (
                (solver._lower.get(root, {}), "lower"),
                (solver._upper.get(root, {}), "upper"),
            ):
                for term, ann in bucket:
                    out.append((kind, root, term, ann))
            for dst, ann in solver._succ.get(root, {}):
                out.append(("edge", root, dst, ann))
            for ctor, index, target, ann in solver._proj.get(root, {}):
                out.append(("proj", root, ctor, index, target, ann))
            for p, _ann in solver._pred.get(root, {}):
                pv = find(p)
                class_frontier.add(pv)
                for d, ann in solver._succ.get(pv, {}):
                    if find(d) == root:
                        out.append(("edge", pv, d, ann))
            for holder in self.support.proj_holders(root):
                hv = find(holder)
                class_frontier.add(hv)
                for ctor, index, target, ann in solver._proj.get(hv, {}):
                    if find(target) == root:
                        out.append(("proj", hv, ctor, index, target, ann))
            for holder in self.support.upper_arg_holders(root):
                class_frontier.add(find(holder))
            return out

        # 3. Over-delete: BFS over recorded reasons from the seeds.
        #    Everything is *collected* first (the rule simulation needs
        #    the tables intact), then removed in one batch.  The walk
        #    and demotion feed each other — deleting a fact can reveal
        #    that it supported a merged class's internal cycle (see
        #    ``dependents``), and dissolving that class seeds more
        #    deletions — so both run to a joint fixpoint.
        cone: dict[FactKey, None] = {}
        met_cone: dict[tuple, None] = {}
        queue: list[FactKey] = []
        invalid_roots: set[Variable] = set()

        def seed(keys: Iterable[FactKey]) -> None:
            for key in keys:
                stored = self._stored_key(key, variants)
                if stored is not None and stored not in cone:
                    cone[stored] = None
                    queue.append(stored)

        for root in demote_roots:
            demoted_set.add(root)
            seed(expand_demotion(root))
        seed(seeds)
        while queue:
            fact = queue.pop()
            deps, mets = self.support.dependents(fact, variants, invalid_roots)
            for met in mets:
                met_cone[met] = None
            for dep in deps:
                if dep not in cone:
                    cone[dep] = None
                    queue.append(dep)
            if not queue and invalid_roots:
                for root in sorted(invalid_roots, key=lambda v: v.name):
                    if root not in demoted_set:
                        demoted_set.add(root)
                        seed(expand_demotion(root))
                invalid_roots.clear()

        # 4. Frontier (computed before deletion so index keys and stored
        #    names still line up; the buckets are re-read after deletion,
        #    so only survivors are re-enqueued).
        frontier: set[Variable] = set(class_frontier)
        for fact in cone:
            frontier |= self.support.frontier_of(fact)
        for met in met_cone:
            frontier |= self.support.met_frontier(met)

        # 5. Given-restore list: over-deleted facts that are still given
        #    re-enter from the ledger, not from rules.  Candidate ledger
        #    keys are found through ``_by_var`` — a key can only
        #    canonicalize to the cone fact if its primary slot lies in
        #    the fact's class — so the cost tracks the cone, not the
        #    ledger.
        restores: list[tuple] = []
        canon = solver._canonical_fact
        restored_keys: set[FactKey] = set()
        for fact in cone:
            cfact = canon(fact)
            for spelling in variants.of(cfact[1]):
                for skey in self._by_var.get(spelling, ()):
                    if skey in restored_keys or skey[0] != cfact[0]:
                        continue
                    if canon(skey) == cfact:
                        restored_keys.add(skey)
                        for info in self._ledger[skey]:
                            restores.append(_constraint_of(skey, info))

        # 6. Delete.  For edges, ``remove_fact`` pops the predecessor
        #    mirror only under the edge's stored spelling; mirrors
        #    recorded before a merge live under the old names, and a
        #    surviving phantom would let the cycle detector "see" a
        #    deleted identity edge and re-merge a dissolved class — so
        #    every (src variant, dst variant) spelling is purged.
        touched: set[tuple[str, Variable]] = set()
        for fact in cone:
            solver.remove_fact(fact)
            touched.add((fact[0], fact[1]))
            if fact[0] == "edge":
                ann = fact[3]
                src_variants = variants.of(find(fact[1]))
                for dv in variants.of(find(fact[2])):
                    bucket = solver._pred.get(dv)
                    if bucket:
                        for sv in src_variants:
                            bucket.pop((sv, ann), None)
        for met in met_cone:
            solver.remove_met(met)
        solver.rebuild_seqs(touched)
        stats.facts_retracted = len(cone)
        solver.stats.facts_retracted += len(cone)
        solver.stats.cone_size += len(cone)

        # 7. Dissolve demoted classes now that their facts are gone.
        #    Every edge into a demoted class was just deleted, so the
        #    representative's remaining predecessor entries are all
        #    phantoms — mirrors of merge-internal identity edges that
        #    were dropped as self-edges and never stored.  Clear them,
        #    or the released members would appear to still close the
        #    retracted cycle.
        if release:
            for root in demoted:
                solver._pred.pop(root, None)
            uf.release(release)

        _commit_retractions()

        # 8. Re-derive: re-enqueue every surviving fact at a frontier
        #    variable; the drain re-fires each rule application whose
        #    conclusion was over-deleted, and the re-derivations cascade.
        #    Worklist entries are (fact, snapshot) pairs.  The snapshot 0
        #    on edge/upper/proj entries skips their lower-window walk
        #    entirely — sound here because every *lower* at a frontier
        #    variable is re-enqueued too, and re-enqueued lowers walk the
        #    full neighbor tables when drained, which covers every
        #    (lower, neighbor) pair at the variable without the
        #    edge-side duplicate.
        work = solver._work
        for var in frontier:
            v = find(var)
            for src, ann in solver._lower.get(v, {}):
                work.append((("lower", v, src, ann), 0))
            for dst, ann in solver._succ.get(v, {}):
                work.append((("edge", v, dst, ann), 0))
            for snk, ann in solver._upper.get(v, {}):
                work.append((("upper", v, snk, ann), 0))
            for ctor, index, target, ann in solver._proj.get(v, {}):
                work.append((("proj", v, ctor, index, target, ann), 0))

        # 9. Re-assert the given constraints of dissolved classes, the
        #    given-restores, and the patch additions; one drain covers
        #    them and the re-derivation queue together.
        batch: list[tuple] = list(restores)
        if reassert_vars:
            reassert: dict[FactKey, None] = {}
            for member in reassert_vars:
                for skey in self._by_var.get(member, ()):
                    reassert[skey] = None
            for skey in reassert:
                for info in self._ledger.get(skey, ()):
                    batch.append(_constraint_of(skey, info))
        added_keys: list[FactKey] = []
        for item in patch.adds:
            lhs, rhs, ann, info = _constraint_parts(item, identity)
            key = _root_fact(lhs, rhs, ann)
            self._admit(key, info)
            added_keys.append(key)
            batch.append((lhs, rhs, ann, info))
            stats.added_constraints += 1
        if batch:
            solver.add_many(batch)
        else:
            solver.resume()

        # 10. Fold the additions into the support indexes and count the
        #     facts the re-derive pass brought back.
        for key in added_keys:
            self.support.index_added(key)
        post_variants = _VariantCache(solver)
        rederived = sum(
            1
            for fact in cone
            if self._stored_key(fact, post_variants) is not None
        )
        stats.facts_rederived = rederived
        solver.stats.facts_rederived += rederived
        # A patch that merged new cycles (or demoted old ones) leaves
        # the indexes keyed by stale representatives; the next patch's
        # _refresh() rebuilds them.
        return stats

    # -- stored-key resolution -------------------------------------------------

    def _stored_key(
        self, key: FactKey, variants: _VariantCache | None
    ) -> FactKey | None:
        """Find the stored spelling of a (possibly structural) fact key.

        Bucket-owner slots always hold current representatives (rehoming
        maintains that), but edge destinations and projection targets
        keep their insert-time names — ``variants`` enumerates the
        possible spellings.  Returns ``None`` when the fact is simply
        not stored (e.g. it was pruned, deduplicated into an identity
        self-edge, or already deleted).
        """
        solver = self.solver
        find = solver.find
        kind = key[0]
        if variants is None:
            variants = _VariantCache(solver)
        if kind == "lower":
            var = find(key[1])
            if (key[2], key[3]) in solver._lower.get(var, {}):
                return ("lower", var, key[2], key[3])
            term = solver._canonical_term(key[2])
            if (term, key[3]) in solver._lower.get(var, {}):
                return ("lower", var, term, key[3])
            return None
        if kind == "upper":
            var = find(key[1])
            if (key[2], key[3]) in solver._upper.get(var, {}):
                return ("upper", var, key[2], key[3])
            return None
        if kind == "edge":
            src = find(key[1])
            bucket = solver._succ.get(src, {})
            # Exact spelling first: a merged class can hold *several*
            # stored spellings of one canonical fact (same src, dsts in
            # the same class), and a demotion must delete every one of
            # them — resolving each enumerated key to the first variant
            # hit would collapse them into one and leak the rest.
            if (key[2], key[3]) in bucket:
                return ("edge", src, key[2], key[3])
            for dv in variants.of(find(key[2])):
                if (dv, key[3]) in bucket:
                    return ("edge", src, dv, key[3])
            return None
        # proj
        _k, var, ctor, index, target, ann = key
        v = find(var)
        bucket = solver._proj.get(v, {})
        if (ctor, index, target, ann) in bucket:
            return ("proj", v, ctor, index, target, ann)
        for tv in variants.of(find(target)):
            if (ctor, index, tv, ann) in bucket:
                return ("proj", v, ctor, index, tv, ann)
        return None
