"""Exception types and inconsistency records for the constraint solver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class ConstraintError(ValueError):
    """Raised for malformed constraints (e.g. a projection on the right)."""


class NoSolutionError(RuntimeError):
    """Raised when an operation requires a consistent system but the
    resolution rules discovered a manifest contradiction."""


@dataclass(frozen=True)
class Inconsistency:
    """A manifestly inconsistent constraint ``c^α(...) ⊆^f d^β(...)``.

    The resolution rules (Section 3.1) mark such meets as having no
    solution.  Real implementations keep solving and report all
    inconsistencies; we do the same, recording the offending source,
    sink, and the annotation of the connecting path.
    """

    source: Any
    sink: Any
    annotation: Any

    def __str__(self) -> str:
        return f"inconsistent constraint: {self.source} ⊆^{self.annotation} {self.sink}"
