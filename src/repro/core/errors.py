"""Exception types and inconsistency records for the constraint solver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class ConstraintError(ValueError):
    """Raised for malformed constraints (e.g. a projection on the right)."""


class NoSolutionError(RuntimeError):
    """Raised when an operation requires a consistent system but the
    resolution rules discovered a manifest contradiction."""


class SolverInterrupted(RuntimeError):
    """A solve stopped before reaching the fixpoint.

    Raised only *between* facts, never mid-resolution, so the solver is
    left in a consistent state: every fact already in the solved form
    has been fully recorded, and everything still to be processed sits
    on the worklist.  The interrupted solve can be checkpointed with
    :func:`repro.core.persist.dump_solver` (the pending worklist is
    serialized alongside the solved form) and resumed — in the same
    process via :meth:`repro.core.solver.Solver.resume`, or in a later
    one by loading the checkpoint and resuming there.

    ``progress`` carries partial-progress statistics: ``steps`` (facts
    processed under the interrupting budget), ``elapsed_s``, ``facts``
    (solved-form size) and ``pending`` (worklist backlog), when the
    interrupted solver could report them.
    """

    def __init__(self, message: str, progress: dict | None = None):
        super().__init__(message)
        self.progress: dict = dict(progress or {})


class SolverBudgetExceeded(SolverInterrupted):
    """A resource budget (steps, wall time, or fact count) ran out.

    ``limit`` names the exhausted dimension: ``"steps"``, ``"seconds"``
    or ``"facts"``.
    """

    def __init__(self, limit: str, message: str, progress: dict | None = None):
        super().__init__(message, progress)
        self.limit = limit


class SolverCancelled(SolverInterrupted):
    """The solve's :class:`~repro.core.budget.CancellationToken` fired."""


class SnapshotCorrupt(ValueError):
    """A persisted snapshot failed checksum or structural verification.

    Derives from :class:`ValueError` so callers that already treat any
    malformed dump as "fall back to a cold solve" keep working; callers
    that care can catch this type to count corruption distinctly.
    """

    def __init__(self, path: str, detail: str):
        super().__init__(f"corrupt snapshot {path}: {detail}")
        self.path = path
        self.detail = detail


class JournalCorrupt(ValueError):
    """A write-ahead journal record failed checksum or framing checks.

    ``torn`` distinguishes damage confined to the journal's *tail* — the
    expected leftovers of a crash mid-append, where every record before
    the tear is still trustworthy — from damage in the middle of the
    file, after which nothing past the damage point can be believed.
    Recovery treats the two differently: a torn tail replays the intact
    prefix; interior damage quarantines the whole session.
    """

    def __init__(self, path: str, detail: str, torn: bool = False):
        super().__init__(f"corrupt journal {path}: {detail}")
        self.path = path
        self.detail = detail
        self.torn = torn


@dataclass(frozen=True)
class Inconsistency:
    """A manifestly inconsistent constraint ``c^α(...) ⊆^f d^β(...)``.

    The resolution rules (Section 3.1) mark such meets as having no
    solution.  Real implementations keep solving and report all
    inconsistencies; we do the same, recording the offending source,
    sink, and the annotation of the connecting path.
    """

    source: Any
    sink: Any
    annotation: Any

    def __str__(self) -> str:
        return f"inconsistent constraint: {self.source} ⊆^{self.annotation} {self.sink}"
