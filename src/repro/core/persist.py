"""Serialization of machines and solved constraint systems.

The BANSHEE toolkit's headline engineering features beyond solving were
persistence and backtracking — serialize a solved constraint graph once
(e.g. for a library), reload it into later analyses, and retract
speculative constraints.  Backtracking lives on the solver
(:meth:`repro.core.solver.Solver.mark` / ``rollback``); this module
provides the persistence half as plain JSON:

* :func:`dfa_to_dict` / :func:`dfa_from_dict` — property machines
  (alphabet symbols must be JSON-representable: strings, or nested
  lists/tuples of strings — tuples round-trip as tagged lists);
* :func:`dump_solver` / :func:`load_solver` — a solved system's facts
  (lower/upper bounds, edges, projection sinks) with representative-
  function annotations.  Loading restores the *solved form* directly —
  no re-closure — and the system remains open: adding constraints
  afterwards resumes online solving on top of the loaded facts.

Format version 2 stores each *distinct* annotation once in an
``elements`` table (a solved form repeats the same few monoid elements
across tens of thousands of facts) and every fact carries just an index
into it — the on-disk analog of the compiled algebra's representation.
Version-1 dumps (inline state-mapping tuples per fact) still load.

Only :class:`~repro.core.annotations.MonoidAlgebra`,
:class:`~repro.core.annotations.CompiledMonoidAlgebra` and
:class:`~repro.core.annotations.UnannotatedAlgebra` systems are
supported (parametric substitution environments would need their own
encoding; nothing in the applications serializes those).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable

from repro.core.annotations import (
    CompiledMonoidAlgebra,
    MonoidAlgebra,
    UnannotatedAlgebra,
)
from repro.core.solver import Solver
from repro.core.terms import Constructed, Constructor, Variable
from repro.dfa.automaton import DFA
from repro.dfa.monoid import RepresentativeFunction

FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)


# -- symbols: JSON-safe encoding of hashable alphabet symbols -----------------


def _encode_symbol(symbol: Any) -> Any:
    if isinstance(symbol, str):
        return symbol
    if isinstance(symbol, tuple):
        return {"t": [_encode_symbol(part) for part in symbol]}
    if isinstance(symbol, (int, bool)) or symbol is None:
        return {"v": symbol}
    raise TypeError(f"cannot serialize alphabet symbol {symbol!r}")


def _decode_symbol(data: Any) -> Any:
    if isinstance(data, str):
        return data
    if isinstance(data, dict) and "t" in data:
        return tuple(_decode_symbol(part) for part in data["t"])
    if isinstance(data, dict) and "v" in data:
        return data["v"]
    raise TypeError(f"cannot deserialize alphabet symbol {data!r}")


# -- machines -------------------------------------------------------------------


def dfa_to_dict(machine: DFA) -> dict:
    """A JSON-representable description of a DFA."""
    symbols = sorted(machine.alphabet, key=repr)
    return {
        "version": FORMAT_VERSION,
        "n_states": machine.n_states,
        "start": machine.start,
        "accepting": sorted(machine.accepting),
        "alphabet": [_encode_symbol(s) for s in symbols],
        "delta": [
            [machine.delta[(state, symbol)] for symbol in symbols]
            for state in range(machine.n_states)
        ],
    }


def dfa_from_dict(data: dict) -> DFA:
    symbols = [_decode_symbol(s) for s in data["alphabet"]]
    delta = {
        (state, symbol): row[index]
        for state, row in enumerate(data["delta"])
        for index, symbol in enumerate(symbols)
    }
    return DFA(
        n_states=data["n_states"],
        alphabet=frozenset(symbols),
        start=data["start"],
        accepting=frozenset(data["accepting"]),
        delta=delta,
    )


#: Fingerprint recorded for systems with no property machine (the
#: unannotated algebra) — distinct from every real machine hash.
UNANNOTATED_FINGERPRINT = "unannotated"


def machine_fingerprint(machine: DFA | None) -> str:
    """A stable content hash of a property machine.

    Covers the alphabet, transition table, start state and accepting
    set (everything :func:`dfa_to_dict` serializes), so two machines
    fingerprint equal iff they are the same automaton up to the
    serialized form.  ``None`` (no machine — the unannotated algebra)
    maps to :data:`UNANNOTATED_FINGERPRINT`.
    """
    if machine is None:
        return UNANNOTATED_FINGERPRINT
    data = dfa_to_dict(machine)
    del data["version"]  # the fingerprint is format-version independent
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# -- solved systems ----------------------------------------------------------------


def _encode_annotation(ann: Any) -> Any:
    if isinstance(ann, RepresentativeFunction):
        return list(ann.mapping)
    if ann == ():
        return None  # the unannotated algebra's identity
    raise TypeError(f"cannot serialize annotation {ann!r}")


def _decode_annotation(data: Any) -> Any:
    if data is None:
        return ()
    return RepresentativeFunction(tuple(data))


class _ElementTable:
    """Dump-side interning of distinct annotations into an index table.

    A solved form repeats the same handful of monoid elements across
    thousands of facts; version-2 dumps store each element's state
    mapping once and let every fact carry just an index.
    """

    def __init__(self, to_object: Callable[[Any], Any]):
        self._to_object = to_object
        self._indices: dict[Any, int] = {}
        self.encoded: list[Any] = []

    def index_of(self, ann: Any) -> int:
        idx = self._indices.get(ann)
        if idx is None:
            idx = self._indices[ann] = len(self.encoded)
            self.encoded.append(_encode_annotation(self._to_object(ann)))
        return idx


def _encode_constructed(expr: Constructed) -> dict:
    ctor = expr.constructor
    return {
        "name": ctor.name,
        "arity": ctor.arity,
        "variance": list(ctor.variance) if ctor.variance is not None else None,
        "args": [arg.name for arg in expr.args],
    }


def _decode_constructed(data: dict) -> Constructed:
    variance = tuple(data["variance"]) if data["variance"] is not None else None
    ctor = Constructor(data["name"], data["arity"], variance)
    return Constructed(ctor, tuple(Variable(n) for n in data["args"]))


def dump_solver(solver: Solver) -> str:
    """Serialize a solver's solved form (and its machine, if any)."""
    algebra = solver.algebra
    if isinstance(algebra, CompiledMonoidAlgebra):
        algebra_tag = "compiled"
        machine: DFA | None = algebra.monoid.machine
        to_object: Callable[[Any], Any] = algebra.decode
    elif isinstance(algebra, MonoidAlgebra):
        algebra_tag = "monoid"
        machine = algebra.machine
        to_object = lambda ann: ann  # noqa: E731 — already an object annotation
    elif isinstance(algebra, UnannotatedAlgebra):
        algebra_tag = "unannotated"
        machine = None
        to_object = lambda ann: ann  # noqa: E731
    else:
        raise TypeError(
            f"cannot serialize systems over {type(algebra).__name__}"
        )
    machine_data = dfa_to_dict(machine) if machine is not None else None
    elements = _ElementTable(to_object)
    lowers = []
    uppers = []
    edges = []
    projections = []
    for var in sorted(solver.variables(), key=lambda v: v.name):
        for src, ann in solver.lower_bounds(var):
            lowers.append(
                [var.name, _encode_constructed(src), elements.index_of(ann)]
            )
        for snk, ann in solver.upper_bounds(var):
            uppers.append(
                [var.name, _encode_constructed(snk), elements.index_of(ann)]
            )
        for dst, ann in solver.edges_from(var):
            edges.append([var.name, dst.name, elements.index_of(ann)])
        for ctor, index, target, ann in solver.projection_sinks(var):
            projections.append(
                [
                    var.name,
                    {
                        "name": ctor.name,
                        "arity": ctor.arity,
                        "variance": list(ctor.variance)
                        if ctor.variance is not None
                        else None,
                    },
                    index,
                    target.name,
                    elements.index_of(ann),
                ]
            )
    return json.dumps(
        {
            "version": FORMAT_VERSION,
            "algebra": algebra_tag,
            "machine": machine_data,
            "fingerprint": machine_fingerprint(machine),
            "pn_projections": solver.pn_projections,
            "prune_dead": solver.prune_dead,
            "elements": elements.encoded,
            "lowers": lowers,
            "uppers": uppers,
            "edges": edges,
            "projections": projections,
        }
    )


def load_solver(text: str, expected_fingerprint: str | None = None) -> Solver:
    """Reconstruct a solver holding an already-closed solved form.

    Facts are installed directly (the dump was closed, so re-closing is
    unnecessary work the loader skips); further ``add`` calls resume
    online solving from this state.

    The dump embeds a :func:`machine_fingerprint` of its property
    machine.  It is verified against the machine actually stored in the
    dump (detecting a corrupted or hand-edited snapshot), and — when
    ``expected_fingerprint`` is given — against the machine the caller
    intends to use, so a snapshot can never be silently replayed
    against the wrong property machine.  Both mismatches raise
    :class:`ValueError`.
    """
    data = json.loads(text)
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported dump version {version!r}")
    algebra_tag = data.get("algebra")
    if algebra_tag is None:  # version-1 dumps carry no tag
        algebra_tag = "monoid" if data["machine"] is not None else "unannotated"
    if data["machine"] is not None:
        machine = dfa_from_dict(data["machine"])
        if algebra_tag == "compiled":
            algebra: Any = CompiledMonoidAlgebra(machine)
        else:
            algebra = MonoidAlgebra(machine)
    else:
        machine = None
        algebra = UnannotatedAlgebra()
    actual = machine_fingerprint(machine)
    stored = data.get("fingerprint")
    if stored is not None and stored != actual:
        raise ValueError(
            f"snapshot fingerprint {stored!r} does not match its own "
            f"machine ({actual!r}): the dump is corrupt or was edited"
        )
    if expected_fingerprint is not None and expected_fingerprint != actual:
        raise ValueError(
            f"snapshot was solved against machine {actual!r} but "
            f"{expected_fingerprint!r} was expected: refusing to replay "
            "it against a different property machine"
        )
    solver = Solver(
        algebra,
        pn_projections=data.get("pn_projections", False),
        prune_dead=data.get("prune_dead", True),
    )

    # A solved form repeats the same few terms, variables and
    # annotations across tens of thousands of facts; interning them
    # makes loading linear in *distinct* objects, which is what lets a
    # snapshot warm-start beat re-solving.  Loaded facts get no
    # provenance entry: witness reconstruction treats a missing reason
    # exactly like the opaque ``loaded`` rule (the dump carries no
    # antecedents), so populating ``_reasons`` would only burn time.
    variables: dict[str, Variable] = {}
    constructed: dict[tuple, Constructed] = {}
    annotations: dict[tuple | None, Any] = {}

    def intern_var(name: str) -> Variable:
        var = variables.get(name)
        if var is None:
            var = variables[name] = Variable(name)
        return var

    def intern_constructed(cdata: dict) -> Constructed:
        key = (
            cdata["name"],
            cdata["arity"],
            tuple(cdata["variance"]) if cdata["variance"] is not None else None,
            tuple(cdata["args"]),
        )
        expr = constructed.get(key)
        if expr is None:
            ctor = Constructor(key[0], key[1], key[2])
            expr = constructed[key] = Constructed(
                ctor, tuple(intern_var(n) for n in cdata["args"])
            )
        return expr

    def to_domain(ann: Any) -> Any:
        # Map an object-mode annotation into the loaded algebra's domain
        # (a compiled algebra solves over table indices, not functions).
        if algebra_tag == "compiled":
            return algebra.encode(ann)
        return ann

    def intern_annotation(adata: Any) -> Any:
        key = None if adata is None else tuple(adata)
        ann = annotations.get(key)
        if ann is None:
            ann = annotations[key] = to_domain(_decode_annotation(adata))
        return ann

    if version >= 2:
        elements = [
            to_domain(_decode_annotation(adata)) for adata in data["elements"]
        ]

        def annotation_of(ann_data: Any) -> Any:
            return elements[ann_data]

    else:

        def annotation_of(ann_data: Any) -> Any:
            return intern_annotation(ann_data)

    for var_name, src_data, ann_data in data["lowers"]:
        var = intern_var(var_name)
        key = (intern_constructed(src_data), annotation_of(ann_data))
        bucket = solver._lower.setdefault(var, {})
        if key not in bucket:
            bucket[key] = None
            solver._lower_seq.setdefault(var, []).append(key)
    for var_name, snk_data, ann_data in data["uppers"]:
        var = intern_var(var_name)
        key = (intern_constructed(snk_data), annotation_of(ann_data))
        bucket = solver._upper.setdefault(var, {})
        if key not in bucket:
            bucket[key] = None
            solver._upper_seq.setdefault(var, []).append(key)
    for src_name, dst_name, ann_data in data["edges"]:
        src, dst = intern_var(src_name), intern_var(dst_name)
        ann = annotation_of(ann_data)
        bucket = solver._succ.setdefault(src, {})
        if (dst, ann) not in bucket:
            bucket[(dst, ann)] = None
            solver._succ_seq.setdefault(src, []).append((dst, ann))
        solver._pred.setdefault(dst, {})[(src, ann)] = None
    for var_name, ctor_data, index, target_name, ann_data in data["projections"]:
        var = intern_var(var_name)
        variance = (
            tuple(ctor_data["variance"])
            if ctor_data["variance"] is not None
            else None
        )
        ctor = Constructor(ctor_data["name"], ctor_data["arity"], variance)
        key = (ctor, index, intern_var(target_name), annotation_of(ann_data))
        bucket = solver._proj.setdefault(var, {})
        if key not in bucket:
            bucket[key] = None
            solver._proj_seq.setdefault(var, []).append(key)
    return solver
