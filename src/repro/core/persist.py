"""Serialization of machines and solved constraint systems.

The BANSHEE toolkit's headline engineering features beyond solving were
persistence and backtracking — serialize a solved constraint graph once
(e.g. for a library), reload it into later analyses, and retract
speculative constraints.  Backtracking lives on the solver
(:meth:`repro.core.solver.Solver.mark` / ``rollback``); this module
provides the persistence half as plain JSON:

* :func:`dfa_to_dict` / :func:`dfa_from_dict` — property machines
  (alphabet symbols must be JSON-representable: strings, or nested
  lists/tuples of strings — tuples round-trip as tagged lists);
* :func:`dump_solver` / :func:`load_solver` — a solved system's facts
  (lower/upper bounds, edges, projection sinks) with representative-
  function annotations.  Loading restores the *solved form* directly —
  no re-closure — and the system remains open: adding constraints
  afterwards resumes online solving on top of the loaded facts.
* :func:`write_snapshot` / :func:`read_snapshot` — crash-safe file IO
  for dumps: write-temp-fsync-rename so a crash mid-dump can never
  leave a half-written file under the snapshot's name, plus a checksum
  header so truncation or bit rot is detected on load as a typed
  :class:`~repro.core.errors.SnapshotCorrupt` instead of silently
  wrong verdicts.

Format version 2 stores each *distinct* annotation once in an
``elements`` table (a solved form repeats the same few monoid elements
across tens of thousands of facts) and every fact carries just an index
into it — the on-disk analog of the compiled algebra's representation.
Version-1 dumps (inline state-mapping tuples per fact) still load.

Format version 3 is emitted only for **checkpoints** — dumps of a
solver whose worklist is non-empty, i.e. a solve interrupted by a
:class:`~repro.core.budget.Budget` or cancellation.  It adds the
pending worklist, the met-pair memo and any recorded inconsistencies,
so a later :func:`load_solver` + :meth:`~repro.core.solver.Solver.resume`
continues the solve exactly where it stopped and converges to the same
fixpoint an uninterrupted run would have reached.  Fully solved dumps
keep emitting version 2 unchanged.

Only :class:`~repro.core.annotations.MonoidAlgebra`,
:class:`~repro.core.annotations.CompiledMonoidAlgebra` and
:class:`~repro.core.annotations.UnannotatedAlgebra` systems are
supported (parametric substitution environments would need their own
encoding; nothing in the applications serializes those).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from collections import deque
from typing import Any, Callable

from repro.core.annotations import (
    CompiledMonoidAlgebra,
    MonoidAlgebra,
    UnannotatedAlgebra,
)
from repro.core.errors import Inconsistency, SnapshotCorrupt
from repro.core.flatcore import FlatSolver
from repro.core.solver import Solver
from repro.core.terms import Constructed, Constructor, Variable
from repro.dfa.automaton import DFA
from repro.dfa.monoid import RepresentativeFunction

FORMAT_VERSION = 2
#: Emitted instead of :data:`FORMAT_VERSION` when the dump is a
#: checkpoint of an interrupted solve (non-empty worklist).
CHECKPOINT_VERSION = 3
SUPPORTED_VERSIONS = (1, 2, 3)

#: Difference-propagation snapshot assigned to reloaded pending facts:
#: larger than any lower-bound sequence, so the resumed drain clamps it
#: to the full current window.  Insertion-time snapshots are not dumped
#: (they are an optimization, not state); re-walking the whole window
#: after a reload costs only deduped re-compositions.
_DRAINED_ALL = 1 << 62


# -- symbols: JSON-safe encoding of hashable alphabet symbols -----------------


def _encode_symbol(symbol: Any) -> Any:
    if isinstance(symbol, str):
        return symbol
    if isinstance(symbol, tuple):
        return {"t": [_encode_symbol(part) for part in symbol]}
    if isinstance(symbol, (int, bool)) or symbol is None:
        return {"v": symbol}
    raise TypeError(f"cannot serialize alphabet symbol {symbol!r}")


def _decode_symbol(data: Any) -> Any:
    if isinstance(data, str):
        return data
    if isinstance(data, dict) and "t" in data:
        return tuple(_decode_symbol(part) for part in data["t"])
    if isinstance(data, dict) and "v" in data:
        return data["v"]
    raise TypeError(f"cannot deserialize alphabet symbol {data!r}")


# -- machines -------------------------------------------------------------------


def dfa_to_dict(machine: DFA) -> dict:
    """A JSON-representable description of a DFA."""
    symbols = sorted(machine.alphabet, key=repr)
    return {
        "version": FORMAT_VERSION,
        "n_states": machine.n_states,
        "start": machine.start,
        "accepting": sorted(machine.accepting),
        "alphabet": [_encode_symbol(s) for s in symbols],
        "delta": [
            [machine.delta[(state, symbol)] for symbol in symbols]
            for state in range(machine.n_states)
        ],
    }


def dfa_from_dict(data: dict) -> DFA:
    symbols = [_decode_symbol(s) for s in data["alphabet"]]
    delta = {
        (state, symbol): row[index]
        for state, row in enumerate(data["delta"])
        for index, symbol in enumerate(symbols)
    }
    return DFA(
        n_states=data["n_states"],
        alphabet=frozenset(symbols),
        start=data["start"],
        accepting=frozenset(data["accepting"]),
        delta=delta,
    )


#: Fingerprint recorded for systems with no property machine (the
#: unannotated algebra) — distinct from every real machine hash.
UNANNOTATED_FINGERPRINT = "unannotated"


def machine_fingerprint(machine: DFA | None) -> str:
    """A stable content hash of a property machine.

    Covers the alphabet, transition table, start state and accepting
    set (everything :func:`dfa_to_dict` serializes), so two machines
    fingerprint equal iff they are the same automaton up to the
    serialized form.  ``None`` (no machine — the unannotated algebra)
    maps to :data:`UNANNOTATED_FINGERPRINT`.
    """
    if machine is None:
        return UNANNOTATED_FINGERPRINT
    data = dfa_to_dict(machine)
    del data["version"]  # the fingerprint is format-version independent
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# -- solved systems ----------------------------------------------------------------


def _encode_annotation(ann: Any) -> Any:
    if isinstance(ann, RepresentativeFunction):
        return list(ann.mapping)
    if ann == ():
        return None  # the unannotated algebra's identity
    raise TypeError(f"cannot serialize annotation {ann!r}")


def _decode_annotation(data: Any) -> Any:
    if data is None:
        return ()
    return RepresentativeFunction(tuple(data))


class _ElementTable:
    """Dump-side interning of distinct annotations into an index table.

    A solved form repeats the same handful of monoid elements across
    thousands of facts; version-2 dumps store each element's state
    mapping once and let every fact carry just an index.
    """

    def __init__(self, to_object: Callable[[Any], Any]):
        self._to_object = to_object
        self._indices: dict[Any, int] = {}
        self.encoded: list[Any] = []

    def index_of(self, ann: Any) -> int:
        idx = self._indices.get(ann)
        if idx is None:
            idx = self._indices[ann] = len(self.encoded)
            self.encoded.append(_encode_annotation(self._to_object(ann)))
        return idx


def _encode_constructed(expr: Constructed) -> dict:
    ctor = expr.constructor
    return {
        "name": ctor.name,
        "arity": ctor.arity,
        "variance": list(ctor.variance) if ctor.variance is not None else None,
        "args": [arg.name for arg in expr.args],
    }


def _decode_constructed(data: dict) -> Constructed:
    variance = tuple(data["variance"]) if data["variance"] is not None else None
    ctor = Constructor(data["name"], data["arity"], variance)
    return Constructed(ctor, tuple(Variable(n) for n in data["args"]))


def _encode_pending_fact(
    fact: tuple, elements: "_ElementTable", canon_var, canon_term
) -> list:
    """One worklist entry, for checkpoint dumps (version 3).

    Variable slots are canonicalized through the dump's collapse map:
    the dumped tables are keyed by representatives, so a pending fact
    naming a merged-away variable would pair with nothing after reload.
    """
    kind = fact[0]
    if kind == "lower":
        _tag, var, src, ann = fact
        return [
            "lower",
            canon_var(var).name,
            _encode_constructed(canon_term(src)),
            elements.index_of(ann),
        ]
    if kind == "upper":
        _tag, var, snk, ann = fact
        return [
            "upper",
            canon_var(var).name,
            _encode_constructed(canon_term(snk)),
            elements.index_of(ann),
        ]
    if kind == "edge":
        _tag, src_var, dst_var, ann = fact
        return [
            "edge",
            canon_var(src_var).name,
            canon_var(dst_var).name,
            elements.index_of(ann),
        ]
    if kind == "proj":
        _tag, var, ctor, index, target, ann = fact
        return [
            "proj",
            canon_var(var).name,
            _encode_constructor(ctor),
            index,
            canon_var(target).name,
            elements.index_of(ann),
        ]
    raise TypeError(f"cannot serialize pending fact {fact!r}")


def _encode_constructor(ctor: Constructor) -> dict:
    return {
        "name": ctor.name,
        "arity": ctor.arity,
        "variance": list(ctor.variance) if ctor.variance is not None else None,
    }


def dump_solver(solver: Solver | FlatSolver) -> str:
    """Serialize a solver's solved form (and its machine, if any).

    A solver at its fixpoint dumps as format version 2, exactly as
    before.  A solver with a non-empty worklist — a solve interrupted by
    budget exhaustion or cancellation — dumps as a version-3
    *checkpoint* carrying the pending worklist, the met-pair memo and
    recorded inconsistencies; loading one restores the interrupted state
    and :meth:`~repro.core.solver.Solver.resume` finishes the solve.

    :class:`~repro.core.flatcore.FlatSolver` systems dump in the *same*
    canonical fact format — the on-disk solved form is a function of the
    solution, not of the core that computed it — plus a ``"core":
    "flat"`` marker so :func:`load_solver` reconstructs the same core.
    A flat dump loads into an object solver (and vice versa) by
    stripping or ignoring that marker.
    """
    algebra = solver.algebra
    if isinstance(algebra, CompiledMonoidAlgebra):
        algebra_tag = "compiled"
        # Read the machine off the algebra, not its monoid: an algebra
        # attached from a shared-memory arena (repro.core.shm) carries
        # the compiled tables and the machine but no enumerated monoid.
        machine: DFA | None = algebra.machine
        to_object: Callable[[Any], Any] = algebra.decode
    elif isinstance(algebra, MonoidAlgebra):
        algebra_tag = "monoid"
        machine = algebra.machine
        to_object = lambda ann: ann  # noqa: E731 — already an object annotation
    elif isinstance(algebra, UnannotatedAlgebra):
        algebra_tag = "unannotated"
        machine = None
        to_object = lambda ann: ann  # noqa: E731
    else:
        raise TypeError(
            f"cannot serialize systems over {type(algebra).__name__}"
        )
    machine_data = dfa_to_dict(machine) if machine is not None else None
    elements = _ElementTable(to_object)
    lowers = []
    uppers = []
    edges = []
    projections = []
    # Dumps canonicalize through the *full* identity-cycle quotient
    # (canonical_facts): the on-disk solved form is then a function of
    # the solution alone, not of which cycles the bounded online
    # sampler happened to merge during this particular run.  The
    # loser → representative map rides along so merged-away variables
    # stay queryable after reload.
    merged: dict[str, str] = {}
    if solver.cycle_elim:
        cmap = solver.collapse_map()
        merged = {var.name: rep.name for var, rep in cmap.items() if var != rep}

        def canon_var(v: Variable) -> Variable:
            return cmap.get(v, v)

        def canon_term(term: Constructed) -> Constructed:
            if term.args and any(cmap.get(a, a) != a for a in term.args):
                return Constructed(
                    term.constructor, tuple(cmap.get(a, a) for a in term.args)
                )
            return term

        fact_iter = solver.canonical_facts()
    else:
        canon_var = lambda v: v  # noqa: E731
        canon_term = lambda t: t  # noqa: E731

        def _raw_facts():
            for var in sorted(solver.variables(), key=lambda v: v.name):
                for src, ann in solver.lower_bounds(var):
                    yield ("lower", var, src, ann)
                for snk, ann in solver.upper_bounds(var):
                    yield ("upper", var, snk, ann)
                for dst, ann in solver.edges_from(var):
                    yield ("edge", var, dst, ann)
                for ctor, index, target, ann in solver.projection_sinks(var):
                    yield ("proj", var, ctor, index, target, ann)

        fact_iter = _raw_facts()
    for fact in fact_iter:
        kind = fact[0]
        if kind == "lower":
            _tag, var, src, ann = fact
            lowers.append(
                [var.name, _encode_constructed(src), elements.index_of(ann)]
            )
        elif kind == "upper":
            _tag, var, snk, ann = fact
            uppers.append(
                [var.name, _encode_constructed(snk), elements.index_of(ann)]
            )
        elif kind == "edge":
            _tag, var, dst, ann = fact
            edges.append([var.name, dst.name, elements.index_of(ann)])
        else:
            _tag, var, ctor, index, target, ann = fact
            projections.append(
                [
                    var.name,
                    _encode_constructor(ctor),
                    index,
                    target.name,
                    elements.index_of(ann),
                ]
            )
    payload: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "core": "flat" if isinstance(solver, FlatSolver) else "object",
        "algebra": algebra_tag,
        "machine": machine_data,
        "fingerprint": machine_fingerprint(machine),
        "pn_projections": solver.pn_projections,
        "prune_dead": solver.prune_dead,
        "cycle_elim": solver.cycle_elim,
        "elements": elements.encoded,
        "lowers": lowers,
        "uppers": uppers,
        "edges": edges,
        "projections": projections,
    }
    if merged:
        payload["merged"] = merged
    if solver.pending_count():
        payload["version"] = CHECKPOINT_VERSION
        pending_pairs = (
            solver._pending_object_facts()
            if isinstance(solver, FlatSolver)
            else iter(solver._work)
        )
        payload["pending"] = [
            _encode_pending_fact(fact, elements, canon_var, canon_term)
            for fact, _snap in pending_pairs
        ]
        # The met memo keeps a resumed drain from re-deriving (and the
        # inconsistency list from double-recording) meets the
        # interrupted run already resolved.  Its terms canonicalize like
        # the facts, so resumed meets over the reloaded (canonical)
        # tables hit the memo.
        met_triples = (
            solver._met_object_facts()
            if isinstance(solver, FlatSolver)
            else iter(solver._met)
        )
        payload["met"] = [
            [
                _encode_constructed(canon_term(src)),
                _encode_constructed(canon_term(snk)),
                elements.index_of(ann),
            ]
            for src, snk, ann in met_triples
        ]
        payload["inconsistencies"] = [
            [
                _encode_constructed(inc.source),
                _encode_constructed(inc.sink),
                elements.index_of(inc.annotation),
            ]
            for inc in solver.inconsistencies
        ]
    return json.dumps(payload)


def load_solver(
    text: str, expected_fingerprint: str | None = None
) -> Solver | FlatSolver:
    """Reconstruct a solver holding an already-closed solved form.

    Facts are installed directly (the dump was closed, so re-closing is
    unnecessary work the loader skips); further ``add`` calls resume
    online solving from this state.  Version-3 checkpoints additionally
    restore the pending worklist of an interrupted solve;
    :meth:`~repro.core.solver.Solver.resume` (or any ``add``) finishes
    it.

    The dump embeds a :func:`machine_fingerprint` of its property
    machine.  It is verified against the machine actually stored in the
    dump (detecting a corrupted or hand-edited snapshot), and — when
    ``expected_fingerprint`` is given — against the machine the caller
    intends to use, so a snapshot can never be silently replayed
    against the wrong property machine.  Both mismatches raise
    :class:`ValueError`.
    """
    data = json.loads(text)
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported dump version {version!r}")
    algebra_tag = data.get("algebra")
    if algebra_tag is None:  # version-1 dumps carry no tag
        algebra_tag = "monoid" if data["machine"] is not None else "unannotated"
    if data["machine"] is not None:
        machine = dfa_from_dict(data["machine"])
        if algebra_tag == "compiled":
            algebra: Any = CompiledMonoidAlgebra(machine)
        else:
            algebra = MonoidAlgebra(machine)
    else:
        machine = None
        algebra = UnannotatedAlgebra()
    actual = machine_fingerprint(machine)
    stored = data.get("fingerprint")
    if stored is not None and stored != actual:
        raise ValueError(
            f"snapshot fingerprint {stored!r} does not match its own "
            f"machine ({actual!r}): the dump is corrupt or was edited"
        )
    if expected_fingerprint is not None and expected_fingerprint != actual:
        raise ValueError(
            f"snapshot was solved against machine {actual!r} but "
            f"{expected_fingerprint!r} was expected: refusing to replay "
            "it against a different property machine"
        )
    if data.get("core") == "flat":
        return _load_flat(data, algebra, version)
    solver = Solver(
        algebra,
        pn_projections=data.get("pn_projections", False),
        prune_dead=data.get("prune_dead", True),
        cycle_elim=data.get("cycle_elim", True),
    )
    # Loaded facts carry no Reason records (see below), so the solved
    # form cannot back a support graph: DeltaSolver checks this flag
    # and refuses warm-loaded systems with a typed error.
    solver.provenance_complete = False

    # A solved form repeats the same few terms, variables and
    # annotations across tens of thousands of facts; interning them
    # makes loading linear in *distinct* objects, which is what lets a
    # snapshot warm-start beat re-solving.  Loaded facts get no
    # provenance entry: witness reconstruction treats a missing reason
    # exactly like the opaque ``loaded`` rule (the dump carries no
    # antecedents), so populating ``_reasons`` would only burn time.
    variables: dict[str, Variable] = {}
    constructed: dict[tuple, Constructed] = {}
    annotations: dict[tuple | None, Any] = {}

    def intern_var(name: str) -> Variable:
        var = variables.get(name)
        if var is None:
            var = variables[name] = Variable(name)
        return var

    def intern_constructed(cdata: dict) -> Constructed:
        key = (
            cdata["name"],
            cdata["arity"],
            tuple(cdata["variance"]) if cdata["variance"] is not None else None,
            tuple(cdata["args"]),
        )
        expr = constructed.get(key)
        if expr is None:
            ctor = Constructor(key[0], key[1], key[2])
            expr = constructed[key] = Constructed(
                ctor, tuple(intern_var(n) for n in cdata["args"])
            )
        return expr

    def to_domain(ann: Any) -> Any:
        # Map an object-mode annotation into the loaded algebra's domain
        # (a compiled algebra solves over table indices, not functions).
        if algebra_tag == "compiled":
            return algebra.encode(ann)
        return ann

    def intern_annotation(adata: Any) -> Any:
        key = None if adata is None else tuple(adata)
        ann = annotations.get(key)
        if ann is None:
            ann = annotations[key] = to_domain(_decode_annotation(adata))
        return ann

    if version >= 2:
        elements = [
            to_domain(_decode_annotation(adata)) for adata in data["elements"]
        ]

        def annotation_of(ann_data: Any) -> Any:
            return elements[ann_data]

    else:

        def annotation_of(ann_data: Any) -> Any:
            return intern_annotation(ann_data)

    for var_name, src_data, ann_data in data["lowers"]:
        var = intern_var(var_name)
        key = (intern_constructed(src_data), annotation_of(ann_data))
        bucket = solver._lower.setdefault(var, {})
        if key not in bucket:
            bucket[key] = None
            solver._lower_seq.setdefault(var, []).append(key)
    for var_name, snk_data, ann_data in data["uppers"]:
        var = intern_var(var_name)
        key = (intern_constructed(snk_data), annotation_of(ann_data))
        bucket = solver._upper.setdefault(var, {})
        if key not in bucket:
            bucket[key] = None
            solver._upper_seq.setdefault(var, []).append(key)
    for src_name, dst_name, ann_data in data["edges"]:
        src, dst = intern_var(src_name), intern_var(dst_name)
        ann = annotation_of(ann_data)
        bucket = solver._succ.setdefault(src, {})
        if (dst, ann) not in bucket:
            bucket[(dst, ann)] = None
            solver._succ_seq.setdefault(src, []).append((dst, ann))
        solver._pred.setdefault(dst, {})[(src, ann)] = None
    def intern_constructor(cdata: dict) -> Constructor:
        variance = (
            tuple(cdata["variance"]) if cdata["variance"] is not None else None
        )
        return Constructor(cdata["name"], cdata["arity"], variance)

    for var_name, ctor_data, index, target_name, ann_data in data["projections"]:
        var = intern_var(var_name)
        ctor = intern_constructor(ctor_data)
        key = (ctor, index, intern_var(target_name), annotation_of(ann_data))
        bucket = solver._proj.setdefault(var, {})
        if key not in bucket:
            bucket[key] = None
            solver._proj_seq.setdefault(var, []).append(key)

    # Collapse map from cycle elimination: merged-away variables resolve
    # to the representative their facts were dumped under, keeping them
    # queryable (and countable) exactly as in the dumping process.
    for loser_name, rep_name in data.get("merged", {}).items():
        solver._uf.parent[intern_var(loser_name)] = intern_var(rep_name)

    # Difference propagation: a dumped solver already composed each of
    # its stored lowers against the neighbor tables it was dumped with,
    # so they count as drained.  Facts added after the load (including
    # the pending backlog below) snapshot against these counters; a
    # snapshot covering the whole sequence costs at worst re-deduped
    # compositions across the checkpoint boundary, never a missed pair.
    solver._lower_drained = {
        var: len(seq) for var, seq in solver._lower_seq.items()
    }

    # Checkpoint sections (version 3): the interrupted drain's backlog,
    # met memo and inconsistency record.  Restoring them makes resume()
    # continue the solve exactly where the dumping process stopped.
    # Pending facts lost their insertion-time snapshots; ``_DRAINED_ALL``
    # makes the resumed drain walk their full (clamped) lower windows.
    if data.get("pending"):
        work: deque = deque()
        for entry in data["pending"]:
            kind = entry[0]
            if kind == "lower":
                _tag, var_name, src_data, ann_data = entry
                work.append(
                    (
                        (
                            "lower",
                            intern_var(var_name),
                            intern_constructed(src_data),
                            annotation_of(ann_data),
                        ),
                        0,
                    )
                )
            elif kind == "upper":
                _tag, var_name, snk_data, ann_data = entry
                work.append(
                    (
                        (
                            "upper",
                            intern_var(var_name),
                            intern_constructed(snk_data),
                            annotation_of(ann_data),
                        ),
                        _DRAINED_ALL,
                    )
                )
            elif kind == "edge":
                _tag, src_name, dst_name, ann_data = entry
                work.append(
                    (
                        (
                            "edge",
                            intern_var(src_name),
                            intern_var(dst_name),
                            annotation_of(ann_data),
                        ),
                        _DRAINED_ALL,
                    )
                )
            elif kind == "proj":
                _tag, var_name, ctor_data, index, target_name, ann_data = entry
                work.append(
                    (
                        (
                            "proj",
                            intern_var(var_name),
                            intern_constructor(ctor_data),
                            index,
                            intern_var(target_name),
                            annotation_of(ann_data),
                        ),
                        _DRAINED_ALL,
                    )
                )
            else:
                raise ValueError(f"unknown pending fact kind {kind!r}")
        solver._work = work
    for src_data, snk_data, ann_data in data.get("met", ()):
        solver._met.add(
            (
                intern_constructed(src_data),
                intern_constructed(snk_data),
                annotation_of(ann_data),
            )
        )
    for src_data, snk_data, ann_data in data.get("inconsistencies", ()):
        solver.inconsistencies.append(
            Inconsistency(
                intern_constructed(src_data),
                intern_constructed(snk_data),
                annotation_of(ann_data),
            )
        )
    return solver


def _load_flat(data: dict, algebra: Any, version: int) -> FlatSolver:
    """Reconstruct a :class:`FlatSolver` from a ``"core": "flat"`` dump.

    The fact sections are identical to object dumps; installation goes
    through the flat enqueue path (interning, dedupe, adjacency
    mirrors), then the install-time worklist records are discarded and
    the lower columns marked drained — loading restores the solved form
    without re-closure, exactly like the object loader.
    """
    if version < 2:
        raise ValueError("flat dumps are always format version 2 or later")
    if not hasattr(algebra, "encode"):
        raise ValueError(
            f"flat dumps require a compiled algebra, got {data.get('algebra')!r}"
        )
    solver = FlatSolver(
        algebra,
        pn_projections=data.get("pn_projections", False),
        prune_dead=data.get("prune_dead", True),
        cycle_elim=data.get("cycle_elim", True),
    )

    variables: dict[str, Variable] = {}
    constructed: dict[tuple, Constructed] = {}

    def intern_var(name: str) -> Variable:
        var = variables.get(name)
        if var is None:
            var = variables[name] = Variable(name)
        return var

    def intern_constructed(cdata: dict) -> Constructed:
        key = (
            cdata["name"],
            cdata["arity"],
            tuple(cdata["variance"]) if cdata["variance"] is not None else None,
            tuple(cdata["args"]),
        )
        expr = constructed.get(key)
        if expr is None:
            ctor = Constructor(key[0], key[1], key[2])
            expr = constructed[key] = Constructed(
                ctor, tuple(intern_var(n) for n in cdata["args"])
            )
        return expr

    def intern_constructor(cdata: dict) -> Constructor:
        variance = (
            tuple(cdata["variance"]) if cdata["variance"] is not None else None
        )
        return Constructor(cdata["name"], cdata["arity"], variance)

    elements = [
        algebra.encode(_decode_annotation(adata)) for adata in data["elements"]
    ]

    install = solver._install_fact
    for var_name, src_data, ann_data in data["lowers"]:
        install(
            (
                "lower",
                intern_var(var_name),
                intern_constructed(src_data),
                elements[ann_data],
            )
        )
    for var_name, snk_data, ann_data in data["uppers"]:
        install(
            (
                "upper",
                intern_var(var_name),
                intern_constructed(snk_data),
                elements[ann_data],
            )
        )
    for src_name, dst_name, ann_data in data["edges"]:
        install(
            ("edge", intern_var(src_name), intern_var(dst_name), elements[ann_data])
        )
    for var_name, ctor_data, index, target_name, ann_data in data["projections"]:
        install(
            (
                "proj",
                intern_var(var_name),
                intern_constructor(ctor_data),
                index,
                intern_var(target_name),
                elements[ann_data],
            )
        )
    for loser_name, rep_name in data.get("merged", {}).items():
        solver._ufp[solver._intern_var(intern_var(loser_name))] = (
            solver._intern_var(intern_var(rep_name))
        )
    solver._settle_loaded()

    # Checkpoint sections: re-queue the interrupted backlog.  Pending
    # facts lost their insertion-time snapshots; ``_DRAINED_ALL`` makes
    # the resumed drain walk their full (clamped) lower windows.
    for entry in data.get("pending", ()):
        kind = entry[0]
        if kind == "lower":
            _tag, var_name, src_data, ann_data = entry
            solver._enqueue_pending(
                (
                    "lower",
                    intern_var(var_name),
                    intern_constructed(src_data),
                    elements[ann_data],
                ),
                0,
            )
        elif kind == "upper":
            _tag, var_name, snk_data, ann_data = entry
            solver._enqueue_pending(
                (
                    "upper",
                    intern_var(var_name),
                    intern_constructed(snk_data),
                    elements[ann_data],
                ),
                _DRAINED_ALL,
            )
        elif kind == "edge":
            _tag, src_name, dst_name, ann_data = entry
            solver._enqueue_pending(
                (
                    "edge",
                    intern_var(src_name),
                    intern_var(dst_name),
                    elements[ann_data],
                ),
                _DRAINED_ALL,
            )
        elif kind == "proj":
            _tag, var_name, ctor_data, index, target_name, ann_data = entry
            solver._enqueue_pending(
                (
                    "proj",
                    intern_var(var_name),
                    intern_constructor(ctor_data),
                    index,
                    intern_var(target_name),
                    elements[ann_data],
                ),
                _DRAINED_ALL,
            )
        else:
            raise ValueError(f"unknown pending fact kind {kind!r}")
    for src_data, snk_data, ann_data in data.get("met", ()):
        solver._met.add(
            (
                solver._intern_term(intern_constructed(src_data)),
                solver._intern_term(intern_constructed(snk_data)),
                elements[ann_data],
            )
        )
    for src_data, snk_data, ann_data in data.get("inconsistencies", ()):
        solver.inconsistencies.append(
            Inconsistency(
                intern_constructed(src_data),
                intern_constructed(snk_data),
                elements[ann_data],
            )
        )
    return solver


# -- crash-safe snapshot files -----------------------------------------------

#: First bytes of a checksummed snapshot file.  Files without it are
#: treated as legacy bare-JSON dumps (readable, but unverifiable).
SNAPSHOT_MAGIC = "#repro-snapshot"

#: Seam for fault injection (:mod:`repro.testing.faults` patches this to
#: simulate a crash at the commit point); always ``os.replace`` in
#: production.
_rename = os.replace


def snapshot_digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def write_snapshot(path: str | pathlib.Path, text: str) -> None:
    """Atomically persist a dump to ``path`` with a checksum header.

    The write-temp → flush → fsync → rename dance guarantees a reader
    (or a restarted process) only ever sees either the previous complete
    snapshot or the new complete snapshot — never a torn one, no matter
    when the writer crashes.  The header records a SHA-256 of the
    payload so damage *after* a successful write (truncation, bit rot)
    is caught by :func:`read_snapshot`.
    """
    path = pathlib.Path(path)
    payload = text.encode("utf-8")
    header = (
        f"{SNAPSHOT_MAGIC} sha256={snapshot_digest(payload)} "
        f"size={len(payload)}\n"
    ).encode("ascii")
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, header + payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        _rename(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Make the rename itself durable where the platform allows it.
    try:
        dir_fd = os.open(str(path.parent), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def read_snapshot(path: str | pathlib.Path) -> str:
    """Read a snapshot file, verifying its checksum header.

    Raises :class:`~repro.core.errors.SnapshotCorrupt` when the header
    is malformed, the recorded size disagrees (truncation), or the
    checksum does not match (bit flips).  Files that never had a header
    (legacy bare dumps) are returned as-is — their internal fingerprint
    check in :func:`load_solver` is then the only guard.
    """
    path = pathlib.Path(path)
    raw = path.read_bytes()
    if not raw.startswith(SNAPSHOT_MAGIC.encode("ascii")):
        return raw.decode("utf-8")
    newline = raw.find(b"\n")
    if newline < 0:
        raise SnapshotCorrupt(str(path), "header line is truncated")
    header = raw[:newline].decode("ascii", "replace")
    payload = raw[newline + 1 :]
    fields = dict(
        part.split("=", 1) for part in header.split()[1:] if "=" in part
    )
    expected_digest = fields.get("sha256")
    expected_size = fields.get("size")
    if expected_digest is None or expected_size is None:
        raise SnapshotCorrupt(str(path), f"malformed header {header!r}")
    try:
        size = int(expected_size)
    except ValueError:
        raise SnapshotCorrupt(str(path), f"malformed size in header {header!r}")
    if len(payload) != size:
        raise SnapshotCorrupt(
            str(path),
            f"payload is {len(payload)} bytes but header promised {size} "
            "(truncated or padded)",
        )
    actual = snapshot_digest(payload)
    if actual != expected_digest:
        raise SnapshotCorrupt(
            str(path),
            f"checksum mismatch (header {expected_digest[:12]}…, "
            f"payload {actual[:12]}…)",
        )
    return payload.decode("utf-8")


# -- write-ahead journal record framing ---------------------------------------

#: Header line opening a journal file.  Files that do not start with it
#: are not journals (or lost their first sectors) and are rejected.
JOURNAL_MAGIC = "#repro-journal v1"

#: Per-record line prefix.  A journal is the magic line followed by zero
#: or more record lines, each ``J <sha256-16> <size> <payload>\n`` with
#: the checksum and byte size covering the payload exactly — a record is
#: trusted iff its own line vouches for it, independent of its
#: neighbors, which is what lets recovery replay the intact prefix of a
#: torn file.
JOURNAL_RECORD_TAG = "J"


def frame_journal_record(payload: dict) -> bytes:
    """One checksummed record line (with trailing newline) for ``payload``.

    The payload is compact single-line JSON; the frame records its
    SHA-256 prefix and byte length so :func:`parse_journal_record`
    detects truncation (torn tail) and bit flips without trusting any
    surrounding bytes.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    digest = hashlib.sha256(blob).hexdigest()[:16]
    return (
        f"{JOURNAL_RECORD_TAG} {digest} {len(blob)} ".encode("ascii")
        + blob
        + b"\n"
    )


def parse_journal_record(line: bytes, path: str = "<journal>") -> dict:
    """Decode and verify one framed record line (no trailing newline).

    Raises :class:`~repro.core.errors.JournalCorrupt` when the frame is
    malformed, the size disagrees (truncation) or the checksum does not
    match (bit rot).  ``torn`` is left False here — only the reader
    knows whether the damage sits at the tail.
    """
    from repro.core.errors import JournalCorrupt

    parts = line.split(b" ", 3)
    if len(parts) != 4 or parts[0] != JOURNAL_RECORD_TAG.encode("ascii"):
        raise JournalCorrupt(path, f"malformed record frame {line[:40]!r}")
    _tag, digest, size_text, blob = parts
    try:
        size = int(size_text)
    except ValueError:
        raise JournalCorrupt(path, f"malformed record size {size_text!r}")
    if len(blob) != size:
        raise JournalCorrupt(
            path,
            f"record payload is {len(blob)} bytes but frame promised {size} "
            "(truncated or padded)",
        )
    actual = hashlib.sha256(blob).hexdigest()[:16]
    if actual != digest.decode("ascii", "replace"):
        raise JournalCorrupt(
            path,
            f"record checksum mismatch (frame {digest!r}, payload {actual!r})",
        )
    try:
        payload = json.loads(blob)
    except json.JSONDecodeError as exc:
        raise JournalCorrupt(path, f"record is not JSON: {exc}")
    if not isinstance(payload, dict):
        raise JournalCorrupt(path, "record payload is not an object")
    return payload


def read_journal(path: str | pathlib.Path) -> tuple[list[dict], str | None]:
    """Read a journal file: ``(intact records, tail damage or None)``.

    Damage confined to the *last* record line — a torn frame, a missing
    trailing newline, a checksum mismatch right at the tail — is the
    signature of a crash mid-append: the intact prefix is returned along
    with a description of the tear, and the caller decides whether to
    trust it.  Damage anywhere *before* the tail (or a missing/forged
    magic line) means the file cannot be trusted at all and raises
    :class:`~repro.core.errors.JournalCorrupt` with ``torn=False``.
    """
    from repro.core.errors import JournalCorrupt

    path = pathlib.Path(path)
    raw = path.read_bytes()
    name = str(path)
    if not raw.startswith(JOURNAL_MAGIC.encode("ascii")):
        raise JournalCorrupt(name, "missing journal magic header")
    lines = raw.split(b"\n")
    # A well-formed journal ends with a newline, so the final split
    # element is empty; anything else is an unterminated (torn) tail.
    torn_tail = lines[-1] != b""
    body = lines[1:-1] if not torn_tail else lines[1:]
    records: list[dict] = []
    for index, line in enumerate(body):
        if not line:
            continue
        at_tail = index == len(body) - 1
        try:
            records.append(parse_journal_record(line, name))
        except JournalCorrupt as exc:
            if at_tail:
                return records, f"torn tail record: {exc.detail}"
            raise JournalCorrupt(
                name,
                f"record {index} is damaged before the tail: {exc.detail}",
            )
    if torn_tail and (not body or body[-1] == b""):
        return records, "torn tail record: empty unterminated line"
    return records, None


def write_solver_snapshot(
    path: str | pathlib.Path, solver: Solver | FlatSolver
) -> None:
    """Convenience: :func:`dump_solver` + :func:`write_snapshot`."""
    write_snapshot(path, dump_solver(solver))


def load_solver_snapshot(
    path: str | pathlib.Path, expected_fingerprint: str | None = None
) -> Solver | FlatSolver:
    """Convenience: :func:`read_snapshot` + :func:`load_solver`."""
    return load_solver(
        read_snapshot(path), expected_fingerprint=expected_fingerprint
    )
