"""Forward and backward solving strategies (Section 5).

Bidirectional solving must keep full representative functions —
elements of ``F_M^≡``, of which there may be ``|S|^|S|`` — because a
derived constraint can later be extended on *either* side.  A forward
solver only ever extends words on the right, so it may collapse
annotations under the coarser **right congruence**::

    w ≡_r w'  ⟺  ∀x. wx ∈ L(M) iff w'x ∈ L(M)

whose classes (for reachability from the start state) are simply the
machine states ``δ(w, s0)`` — at most ``|S|`` derived annotations.
Symmetrically, a backward solver uses the **left congruence**, whose
classes are the accepting preimages ``{ s | δ(w, s) ∈ S_accept }``.

The tradeoff (Section 5.1): unidirectional solvers are batch/demand
driven — they need all sources (resp. sinks) up front — while the
bidirectional solver is online and supports separate analysis.  The
original BANSHEE implementation shipped only the bidirectional solver
(the paper notes no forward/backward set-constraint solver was publicly
available); accordingly these solvers implement the annotated
*reachability* fragment (variables and annotated edges, the domain of
the complexity comparison in Sections 4–5), not the full constructor
language.

Both solvers demonstrate the paper's headline complexity claim: the
number of derived annotations per variable is bounded by ``|S|``
(forward) or by the reversed machine's state count (backward), versus
``|F_M^≡|`` for the bidirectional strategy — see
``benchmarks/bench_complexity.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Sequence

from repro.core.budget import Budget
from repro.core.cycles import DEFAULT_SEARCH_BOUND, UnionFind, find_identity_cycle
from repro.dfa.automaton import DFA, Symbol

Node = Hashable


def _is_empty_word(word: tuple) -> bool:
    return not word


class AnnotatedGraph:
    """A directed graph with edges labeled by words over a machine's
    alphabet — the constraint-graph fragment the unidirectional solvers
    operate on (an edge ``X ⊆^w Y`` is ``add_edge(X, Y, w)``).

    Cycles of empty-word edges (the identity annotation of this
    fragment) are collapsed online exactly as in the bidirectional
    solver: nodes on such a cycle receive identical state sets, so
    merging them is exact.  Queries resolve merged nodes through
    :meth:`find`, so callers keep using their original node names.
    """

    def __init__(
        self,
        machine: DFA,
        cycle_elim: bool = True,
        cycle_search_bound: int = DEFAULT_SEARCH_BOUND,
    ):
        self.machine = machine
        self.cycle_elim = cycle_elim
        self.cycle_search_bound = cycle_search_bound
        self._succ: dict[Node, list[tuple[Node, tuple[Symbol, ...]]]] = {}
        self._pred: dict[Node, list[tuple[Node, tuple[Symbol, ...]]]] = {}
        self.nodes: set[Node] = set()
        self._uf = UnionFind()
        self.cycles_collapsed = 0
        self.nodes_merged = 0

    def find(self, node: Node) -> Node:
        uf = self._uf
        if not uf.parent:
            return node
        return uf.find(node)

    def add_edge(
        self, src: Node, dst: Node, word: Iterable[Symbol] = ()
    ) -> None:
        word = tuple(word)
        for sym in word:
            if sym not in self.machine.alphabet:
                raise ValueError(f"symbol {sym!r} not in the machine's alphabet")
        self.nodes.add(src)
        self.nodes.add(dst)
        s, d = self.find(src), self.find(dst)
        if s == d and not word:
            return  # an empty-word self-loop adds nothing
        self._succ.setdefault(s, []).append((d, word))
        self._pred.setdefault(d, []).append((s, word))
        if self.cycle_elim and not word:
            cycle = find_identity_cycle(
                self._pred, self.find, _is_empty_word, s, d, self.cycle_search_bound
            )
            if cycle is not None:
                self._collapse(cycle)

    def _collapse(self, cycle: list[Node]) -> None:
        winner = min(cycle, key=repr)
        self.cycles_collapsed += 1
        self.nodes_merged += len(cycle) - 1
        for loser in cycle:
            if loser == winner:
                continue
            self._uf.union(winner, loser)
            succ = self._succ.pop(loser, None)
            pred = self._pred.pop(loser, None)
            if succ:
                wsucc = self._succ.setdefault(winner, [])
                for node, word in succ:
                    node = self.find(node)
                    if node == winner and not word:
                        continue
                    wsucc.append((node, word))
            if pred:
                wpred = self._pred.setdefault(winner, [])
                for node, word in pred:
                    node = self.find(node)
                    if node == winner and not word:
                        continue
                    wpred.append((node, word))

    def successors(self, node: Node) -> Sequence[tuple[Node, tuple[Symbol, ...]]]:
        return self._succ.get(self.find(node), ())

    def predecessors(self, node: Node) -> Sequence[tuple[Node, tuple[Symbol, ...]]]:
        return self._pred.get(self.find(node), ())


class ForwardSolver:
    """Push sources forward; derived annotations are machine states.

    ``solve(sources)`` computes, for every node, the set of states
    ``δ(w, s0)`` over all words ``w`` spelled by paths from any source.
    Dead states (no accepting continuation) are pruned, mirroring the
    prefix-language domain ``T^{M^pre}``.
    """

    def __init__(self, graph: AnnotatedGraph, budget: Budget | None = None):
        self.graph = graph
        self.machine = graph.machine
        self._live = self.machine.coreachable_states()
        self.states: dict[Node, set[int]] = {}
        self.facts_processed = 0
        #: Composition accounting: ``compose_calls`` counts every
        #: (fact, edge) pair considered; ``compose_evals`` counts the
        #: pairs whose word actually had to be run through the machine.
        #: The gap is the double-composition waste the ``(state, word)``
        #: memo short-circuits — pairs that dedupe to an already-known
        #: transition never pay for the run.
        self.compose_calls = 0
        self.compose_evals = 0
        self._run_memo: dict[tuple[int, tuple[Symbol, ...]], int] = {}
        #: Optional resource governor; checked between facts, exactly
        #: like the bidirectional solver's drain (see repro.core.budget).
        self.budget = budget
        # The worklist lives on the instance so a budget interrupt keeps
        # its backlog and resume() continues where solving stopped.
        self._work: deque[tuple[Node, int]] = deque()

    def fact_count(self) -> int:
        """Derived (node, state) facts so far — for budget progress."""
        return sum(len(bucket) for bucket in self.states.values())

    def pending_count(self) -> int:
        return len(self._work)

    def resume(self, budget: Budget | None = None) -> None:
        """Continue an interrupted solve (no new sources)."""
        if budget is not None:
            self.budget = budget
        self.solve(())

    def solve(
        self, sources: Iterable[Node] = (), budget: Budget | None = None
    ) -> None:
        if budget is not None:
            self.budget = budget
        machine = self.machine
        work = self._work
        find = self.graph.find
        run_memo = self._run_memo
        for src in sources:
            src = find(src)
            if machine.start in self._live and machine.start not in self.states.setdefault(src, set()):
                self.states[src].add(machine.start)
                work.append((src, machine.start))
        budget = self.budget
        check_every = countdown = 0
        if budget is not None and work:
            check_every = budget.check_interval
            countdown = check_every
            budget.charge(0, self)
        while work:
            if budget is not None:
                countdown -= 1
                if countdown <= 0:
                    countdown = check_every
                    budget.charge(check_every, self)
            node, state = work.popleft()
            self.facts_processed += 1
            for succ, word in self.graph.successors(node):
                self.compose_calls += 1
                key = (state, word)
                nxt = run_memo.get(key)
                if nxt is None:
                    self.compose_evals += 1
                    nxt = run_memo[key] = machine.run(word, state)
                if nxt not in self._live:
                    continue
                # Edges recorded before a later merge may still name a
                # merged-away node; its states live at the representative.
                succ = find(succ)
                bucket = self.states.setdefault(succ, set())
                if nxt not in bucket:
                    bucket.add(nxt)
                    work.append((succ, nxt))
        if budget is not None:
            budget.settle(check_every - countdown)

    def states_of(self, node: Node) -> set[int]:
        return set(self.states.get(self.graph.find(node), set()))

    def reachable_accepting(self, node: Node) -> bool:
        """Is ``node`` reached by some path spelling a word of ``L(M)``?"""
        return bool(
            self.states.get(self.graph.find(node), set()) & self.machine.accepting
        )


class BackwardSolver:
    """Push sinks backward; derived annotations are accepting preimages.

    ``solve(sinks)`` computes, for every node, the set of left-congruence
    classes ``{ s | δ(w, s) ∈ S_accept }`` of words ``w`` spelled by
    paths to any sink.  A node carries an accepting class iff some path
    from it to a sink spells a word of ``L(M)`` starting at ``s0``
    (checked with :meth:`reaches_accepting`).
    """

    def __init__(self, graph: AnnotatedGraph, budget: Budget | None = None):
        self.graph = graph
        self.machine = graph.machine
        self._reachable = self.machine.reachable_states()
        self.classes: dict[Node, set[frozenset[int]]] = {}
        self.facts_processed = 0
        #: Same accounting as :class:`ForwardSolver`, but the memoized
        #: compose here is a whole preimage computation (``n_states``
        #: machine runs), so the short-circuit saves far more per hit.
        self.compose_calls = 0
        self.compose_evals = 0
        self._pre_memo: dict[
            tuple[frozenset[int], tuple[Symbol, ...]], frozenset[int]
        ] = {}
        self.budget = budget
        self._work: deque[tuple[Node, frozenset[int]]] = deque()

    def fact_count(self) -> int:
        """Derived (node, class) facts so far — for budget progress."""
        return sum(len(bucket) for bucket in self.classes.values())

    def pending_count(self) -> int:
        return len(self._work)

    def resume(self, budget: Budget | None = None) -> None:
        """Continue an interrupted solve (no new sinks)."""
        if budget is not None:
            self.budget = budget
        self.solve(())

    def solve(
        self, sinks: Iterable[Node] = (), budget: Budget | None = None
    ) -> None:
        if budget is not None:
            self.budget = budget
        machine = self.machine
        everything = frozenset(machine.accepting)
        work = self._work
        find = self.graph.find
        pre_memo = self._pre_memo
        for sink in sinks:
            sink = find(sink)
            bucket = self.classes.setdefault(sink, set())
            if everything not in bucket:
                bucket.add(everything)
                work.append((sink, everything))
        budget = self.budget
        check_every = countdown = 0
        if budget is not None and work:
            check_every = budget.check_interval
            countdown = check_every
            budget.charge(0, self)
        while work:
            if budget is not None:
                countdown -= 1
                if countdown <= 0:
                    countdown = check_every
                    budget.charge(check_every, self)
            node, cls = work.popleft()
            self.facts_processed += 1
            for pred, word in self.graph.predecessors(node):
                self.compose_calls += 1
                key = (cls, word)
                prepended = pre_memo.get(key)
                if prepended is None:
                    self.compose_evals += 1
                    prepended = pre_memo[key] = frozenset(
                        s
                        for s in range(machine.n_states)
                        if machine.run(word, s) in cls
                    )
                if not (prepended & self._reachable):
                    continue  # no live way to begin such a word
                pred = find(pred)
                bucket = self.classes.setdefault(pred, set())
                if prepended not in bucket:
                    bucket.add(prepended)
                    work.append((pred, prepended))
        if budget is not None:
            budget.settle(check_every - countdown)

    def classes_of(self, node: Node) -> set[frozenset[int]]:
        return set(self.classes.get(self.graph.find(node), set()))

    def reaches_accepting(self, node: Node) -> bool:
        """Can ``node`` reach a sink along a word of ``L(M)``?"""
        return any(
            self.machine.start in cls
            for cls in self.classes.get(self.graph.find(node), set())
        )
