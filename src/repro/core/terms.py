"""Constructors, set expressions, and annotated ground terms (Section 2).

The set-expression grammar of the paper is::

    se ::= X | c(X_1, ..., X_{a(c)}) | c^{-i}(X)

— variables, constructors applied to variables, and projections.  For
usability the public API also accepts nested expressions in constructor
arguments; :meth:`repro.core.solver.Solver.add` normalizes them to the
paper's grammar by introducing fresh variables.

Ground *annotated terms* (:class:`GroundTerm`) carry a word annotation at
every constructor level and implement the ``t · w`` append operation of
Section 2.3, which distributes over all levels.  They are used by the
denotational-semantics reference checker in the test suite and by
least-solution enumeration (stack-aware alias queries, Section 7.5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.core.errors import ConstraintError


@dataclass(frozen=True)
class Constructor:
    """A set constructor ``c`` with arity ``a(c)``.

    Constants are constructors of arity zero.  Constructors are
    non-strict (Section 3 explains why strict constructors are
    avoided).  Arguments are covariant by default, as in the paper;
    ``variance`` may mark positions contravariant (``False``), which
    BANSHEE also supports and which the classic ``ref(get, set)``
    points-to encoding needs.  Contravariant decomposition is only
    defined for identity annotations (reversing an annotated flow would
    need the reversed word, which the bidirectional domain does not
    track) — the solver enforces this.
    """

    name: str
    arity: int = 0
    variance: tuple[bool, ...] | None = None  # True = covariant

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise ConstraintError(f"constructor {self.name!r} has negative arity")
        if self.variance is not None and len(self.variance) != self.arity:
            raise ConstraintError(
                f"constructor {self.name!r}: variance length "
                f"{len(self.variance)} != arity {self.arity}"
            )
        object.__setattr__(
            self, "_hash", hash((self.name, self.arity, self.variance))
        )

    def covariant(self, index: int) -> bool:
        """Is the 1-based argument position covariant?"""
        if self.variance is None:
            return True
        return self.variance[index - 1]

    def __hash__(self) -> int:
        return self._hash

    def __call__(self, *args: "SetExpression") -> "Constructed":
        return Constructed(self, tuple(args))

    def proj(self, index: int, operand: "Variable") -> "Projection":
        """The projection expression ``c^{-index}(operand)`` (1-based).

        Only covariant positions may be projected — extracting a
        contravariant (write) field would reverse the flow direction.
        """
        if not self.covariant(index):
            raise ConstraintError(
                f"cannot project contravariant argument {index} of {self.name!r}"
            )
        return Projection(self, index, operand)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Variable:
    """A set variable.  Create via :class:`VariableFactory` or directly."""

    name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("var", self.name)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self.name


class VariableFactory:
    """Generates fresh, distinct set variables with a common prefix."""

    def __init__(self, prefix: str = "v"):
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self, hint: str | None = None) -> Variable:
        label = hint if hint is not None else self._prefix
        return Variable(f"{label}#{next(self._counter)}")


@dataclass(frozen=True)
class Constructed:
    """A constructor application ``c(e_1, ..., e_k)``.

    Arguments may be arbitrary set expressions; the solver normalizes
    non-variable arguments away.  A zero-arity application is a constant.
    """

    constructor: Constructor
    args: tuple["SetExpression", ...] = ()

    def __post_init__(self) -> None:
        if len(self.args) != self.constructor.arity:
            raise ConstraintError(
                f"constructor {self.constructor.name!r} has arity "
                f"{self.constructor.arity}, applied to {len(self.args)} arguments"
            )
        object.__setattr__(self, "_hash", hash((self.constructor, self.args)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_constant(self) -> bool:
        return not self.args

    def __str__(self) -> str:
        if not self.args:
            return self.constructor.name
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.constructor.name}({inner})"


@dataclass(frozen=True)
class Projection:
    """A projection ``c^{-index}(operand)`` selecting the index-th field.

    ``index`` is 1-based, following the paper.  Projections may only
    appear on the left-hand side of constraints.
    """

    constructor: Constructor
    index: int
    operand: "Variable"

    def __post_init__(self) -> None:
        if not (1 <= self.index <= self.constructor.arity):
            raise ConstraintError(
                f"projection index {self.index} out of range for "
                f"{self.constructor.name!r} (arity {self.constructor.arity})"
            )

    def __str__(self) -> str:
        return f"{self.constructor.name}^-{self.index}({self.operand})"


SetExpression = Variable | Constructed | Projection


def constant(name: str) -> Constructed:
    """Convenience: a constant (zero-ary constructor application)."""
    return Constructor(name, 0)()


# ---------------------------------------------------------------------------
# Annotated ground terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroundTerm:
    """An annotated ground term ``c^w(t_1, ..., t_k)``.

    ``annotation`` is the word ``w`` — a tuple of alphabet symbols for
    the reference semantics, or any annotation-algebra element when
    produced by least-solution enumeration.
    """

    constructor: Constructor
    annotation: Any
    children: tuple["GroundTerm", ...] = ()

    def __post_init__(self) -> None:
        if len(self.children) != self.constructor.arity:
            raise ConstraintError(
                f"ground term for {self.constructor.name!r} has "
                f"{len(self.children)} children, arity is {self.constructor.arity}"
            )

    def append(self, word: tuple) -> "GroundTerm":
        """The ``t · w`` operation: append ``word`` at every level."""
        return GroundTerm(
            constructor=self.constructor,
            annotation=self.annotation + tuple(word),
            children=tuple(child.append(word) for child in self.children),
        )

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def erase(self) -> tuple:
        """The underlying unannotated term, as a nested tuple."""
        return (self.constructor.name, tuple(c.erase() for c in self.children))

    def __str__(self) -> str:
        word = "".join(str(s) for s in self.annotation) or "ε"
        if not self.children:
            return f"{self.constructor.name}^{word}"
        inner = ", ".join(str(c) for c in self.children)
        return f"{self.constructor.name}^{word}({inner})"


def ground(name: str, word: Iterable = (), *children: GroundTerm) -> GroundTerm:
    """Convenience builder for annotated ground terms."""
    return GroundTerm(Constructor(name, len(children)), tuple(word), children)


def subterms(term: GroundTerm) -> Iterator[GroundTerm]:
    """All subterms of ``term``, including itself (pre-order)."""
    yield term
    for child in term.children:
        yield from subterms(child)
