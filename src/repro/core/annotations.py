"""Annotation algebras — what the solver composes during closure.

The constraint solver is generic over the annotation domain.  It needs
exactly the operations the transitive-closure rule of Section 3.1 uses:

* an identity element (``f_ε``),
* an associative composition (``then`` in word order — the paper's
  ``g ∘ f`` is ``then(f, g)``),
* a *liveness* test used to drop annotations that are "necessarily
  non-accepting" (the paper's minimality-based pruning), and
* hashability, so derived constraints deduplicate — the termination
  argument of Lemma 3.1 is precisely that annotations range over a
  finite set.

Five algebras are provided:

* :class:`MonoidAlgebra` — representative functions of a property DFA,
  the paper's main construction (Section 2.4);
* :class:`CompiledMonoidAlgebra` — the *specialized* form (Section 8):
  annotations are small integers indexing the enumerated monoid, and
  every operation is a precompiled table lookup;
* :class:`ProductAlgebra` — component-wise products, used for n-bit
  gen/kill languages without building the ``2^n``-state product machine
  (Sections 3.3, 4);
* :class:`CompiledGenKillAlgebra` — the compiled counterpart of an
  n-bit gen/kill product: the n one-bit components are packed into one
  integer, composition is a handful of bitwise operations;
* :class:`repro.core.parametric.ParametricAlgebra` — substitution
  environments for parametric annotations (Section 6.4).

Compiled algebras are drop-in solver domains (``identity``/``then``/
``is_live``) whose annotations are plain ``int``s; :func:`compile_algebra`
builds one from a machine.  ``encode``/``decode`` convert between the
compiled and object representations, which is what the cross-validation
suite uses to prove the two modes solve identically.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Protocol, Sequence

from repro.dfa.automaton import DFA, Symbol
from repro.dfa.monoid import RepresentativeFunction, TransitionMonoid

try:  # The optional ``fast`` extra (``pip install .[fast]``).
    import numpy as _np
except ImportError:  # pragma: no cover - environment-dependent
    _np = None

#: True when the vectorized ``then_many`` backends are available.  The
#: flat solver core consults the per-algebra ``then_many`` attribute
#: (``None`` when numpy is missing), so everything degrades to the
#: pure-python composition loops without it.
HAVE_NUMPY = _np is not None

Annotation = Hashable


class AnnotationAlgebra(Protocol):
    """The operations the solver requires of an annotation domain."""

    identity: Annotation

    def then(self, first: Annotation, second: Annotation) -> Annotation:
        """Composition in word order: ``first``'s word, then ``second``'s."""
        ...

    def is_live(self, annotation: Annotation) -> bool:
        """May words of this class still extend to a word of interest?"""
        ...


class MonoidAlgebra:
    """Annotations are representative functions of a property machine.

    This is the paper's bidirectional-solver domain: each annotation is
    an element of ``F_M^≡`` and composition is function composition
    (constant-time table lookup once memoized).
    """

    def __init__(self, machine: DFA, eager: bool = True, max_size: int = 500_000):
        self.machine = machine
        self.monoid = TransitionMonoid(machine, eager=eager, max_size=max_size)
        self.identity = self.monoid.identity
        self._live_memo: dict[RepresentativeFunction, bool] = {}

    def symbol(self, symbol: Symbol) -> RepresentativeFunction:
        """The annotation ``f_σ`` of a single alphabet symbol."""
        return self.monoid.generator(symbol)

    def word(self, word: Iterable[Symbol]) -> RepresentativeFunction:
        """The annotation of an arbitrary word over the alphabet."""
        return self.monoid.of_word(word)

    def then(
        self, first: RepresentativeFunction, second: RepresentativeFunction
    ) -> RepresentativeFunction:
        return self.monoid.then(first, second)

    def is_live(self, annotation: RepresentativeFunction) -> bool:
        cached = self._live_memo.get(annotation)
        if cached is None:
            cached = self.monoid.is_live(annotation)
            self._live_memo[annotation] = cached
        return cached

    def is_accepting(self, annotation: RepresentativeFunction) -> bool:
        """Does the annotation represent full words of ``L(M)``?"""
        return self.monoid.is_accepting(annotation)

    def state_after(self, annotation: RepresentativeFunction) -> int:
        """The machine state reached from the start by the annotation."""
        return annotation(self.machine.start)


class CompiledMonoidAlgebra:
    """The specialized annotation domain of Section 8: indices + tables.

    BANSHEE compiles an annotation specification by enumerating
    ``F_M^≡`` once and emitting a dense composition table; thereafter
    the solver never touches state-mapping tuples.  This class is that
    compilation step: annotations are ``int`` indices into a frozen
    ``elements`` tuple, ``then`` is a single ``table[f][g]`` access, and
    the liveness/acceptance/forward-class predicates are precomputed
    per-index tuples — no memo dicts, no per-call hashing.

    Requires eager enumeration; machines whose monoid exceeds
    ``max_size`` (the Fig 2 adversarial family) must stay on the lazy
    :class:`MonoidAlgebra`.
    """

    def __init__(self, machine: DFA, max_size: int = 500_000):
        self.machine = machine
        self.monoid = TransitionMonoid(machine, eager=True, max_size=max_size)
        elements, table = self.monoid.composition_table()
        #: Frozen element list; ``elements[i]`` is the representative
        #: function a compiled annotation ``i`` stands for.
        self.elements: tuple[RepresentativeFunction, ...] = tuple(elements)
        self._table: tuple[tuple[int, ...], ...] = tuple(
            tuple(row) for row in table
        )
        self._index: dict[RepresentativeFunction, int] = {
            fn: i for i, fn in enumerate(self.elements)
        }
        self.identity: int = self._index[self.monoid.identity]
        #: The identity's table index, exposed so the solver's per-edge
        #: identity test (cycle elimination) is a plain int comparison.
        self.identity_index: int = self.identity
        self._live: tuple[bool, ...] = tuple(
            self.monoid.is_live(fn) for fn in self.elements
        )
        self._accepting: tuple[bool, ...] = tuple(
            self.monoid.is_accepting(fn) for fn in self.elements
        )
        start = machine.start
        self._state_after: tuple[int, ...] = tuple(
            fn(start) for fn in self.elements
        )
        self._symbols: dict[Symbol, int] = {
            sym: self._index[fn] for sym, fn in self.monoid.generators.items()
        }
        # Vectorized column composition (built lazily on first use);
        # ``None`` advertises "no batch backend" to the flat core.
        self._np_table = None
        if _np is None:
            self.then_many = None  # type: ignore[assignment]

    def size(self) -> int:
        return len(self.elements)

    def then_many(self, anns: Sequence[int], hi: int, second: int) -> list[int]:
        """Compose ``anns[:hi]`` (a column of annotations) with one
        right-hand ``second`` — the numpy gather the flat core hands
        whole lower-bound columns to."""
        table = self._np_table
        if table is None:
            table = self._np_table = _np.asarray(self._table, dtype=_np.intp)
        return table[_np.asarray(anns[:hi]), second].tolist()

    # -- conversions --------------------------------------------------------

    def encode(self, fn: RepresentativeFunction) -> int:
        """Compiled index of an object-mode annotation."""
        return self._index[fn]

    def decode(self, annotation: int) -> RepresentativeFunction:
        """Object-mode annotation a compiled index stands for."""
        return self.elements[annotation]

    # -- the solver interface ------------------------------------------------

    def symbol(self, symbol: Symbol) -> int:
        """The compiled annotation ``f_σ`` of a single alphabet symbol."""
        return self._symbols[symbol]

    def word(self, word: Iterable[Symbol]) -> int:
        table = self._table
        symbols = self._symbols
        fn = self.identity
        for sym in word:
            fn = table[fn][symbols[sym]]
        return fn

    def then(self, first: int, second: int) -> int:
        return self._table[first][second]

    def is_live(self, annotation: int) -> bool:
        return self._live[annotation]

    def is_accepting(self, annotation: int) -> bool:
        return self._accepting[annotation]

    def state_after(self, annotation: int) -> int:
        return self._state_after[annotation]

    def forward_class(self, annotation: int) -> int:
        """Right-congruence class — same as :meth:`state_after`."""
        return self._state_after[annotation]


def compile_algebra(machine: DFA, max_size: int = 500_000) -> CompiledMonoidAlgebra:
    """Specialize the annotation domain for ``machine`` (the §8 pipeline:
    machine → transition monoid → composition table → compiled algebra)."""
    return CompiledMonoidAlgebra(machine, max_size=max_size)


class UnannotatedAlgebra:
    """The trivial one-element algebra — ordinary set constraints.

    Solving with this algebra is exactly the classical cubic fragment;
    it exists so the solver can serve as its own unannotated baseline in
    the complexity benchmarks (Section 4's ``O(n^3)`` reference point).
    """

    identity = ()

    def then(self, first: tuple, second: tuple) -> tuple:
        return ()

    def is_live(self, annotation: tuple) -> bool:
        return True

    def is_accepting(self, annotation: tuple) -> bool:
        return True


class ProductAlgebra:
    """Component-wise product of annotation algebras.

    An n-bit gen/kill language (Section 3.3) is the product of n one-bit
    machines; representing annotations as tuples of one-bit functions
    keeps composition ``O(n)`` instead of materializing the exponential
    product machine.  Liveness is approximated component-wise: a product
    annotation is live iff *every* component is live (equivalently, dead
    as soon as *any* component is dead — a necessary condition, not a
    sufficient one, hence sound for pruning).
    """

    def __init__(self, components: Sequence[Any]):
        if not components:
            raise ValueError("ProductAlgebra needs at least one component")
        self.components = tuple(components)
        self.n_components = len(self.components)
        self.identity = tuple(c.identity for c in self.components)
        # Composition memo: the annotation domain is finite (Lemma 3.1),
        # so the table of observed pairs is bounded — and the solver
        # re-composes the same pairs constantly (every transitive step
        # over a hot edge).  ``compose_calls``/``compose_evals`` expose
        # the hit rate to the regression tests.
        self._then_memo: dict[tuple[tuple, tuple], tuple] = {}
        self.compose_calls = 0
        self.compose_evals = 0

    def then(self, first: tuple, second: tuple) -> tuple:
        self.compose_calls += 1
        key = (first, second)
        out = self._then_memo.get(key)
        if out is None:
            self.compose_evals += 1
            components = self.components
            out = tuple(
                components[i].then(first[i], second[i])
                for i in range(self.n_components)
            )
            self._then_memo[key] = out
        return out

    def is_live(self, annotation: tuple) -> bool:
        components = self.components
        for i in range(self.n_components):
            if not components[i].is_live(annotation[i]):
                return False
        return True

    def accepting_bits(self, annotation: tuple) -> tuple[bool, ...]:
        """Per-component acceptance — e.g. which dataflow facts hold."""
        components = self.components
        return tuple(
            components[i].is_accepting(annotation[i])
            for i in range(self.n_components)
        )

    def is_accepting(self, annotation: tuple) -> bool:
        """Accepting in the product language (all components accept)."""
        components = self.components
        for i in range(self.n_components):
            if not components[i].is_accepting(annotation[i]):
                return False
        return True


class CompiledGenKillAlgebra:
    """Compiled n-bit gen/kill product: one ``int`` per annotation.

    The one-bit monoid is ``{f_ε, f_gen, f_kill}`` (Fig 1).  Each
    component is packed into two bitmask positions of a single integer:
    bit ``i`` of the low word says the component is *forced* (non-ε) and
    bit ``i`` of the high word says the forced value is *gen*.  Word-
    order composition ``then(f, g)`` — "``g`` wins wherever ``g`` is
    forced" — is then four bitwise operations on machine words instead
    of rebuilding an n-tuple, so it is ``O(n / wordsize)`` rather than
    ``O(n)`` object operations, with zero allocation for the common
    widths.

    ``bit_machine`` defaults to the Fig 1 machine; any 2-state machine
    whose monoid is ``{identity, constant-on, constant-off}`` works (the
    constructor verifies the shape).  ``encode``/``decode`` convert to
    and from the tuple annotations of the equivalent
    :class:`ProductAlgebra` of :class:`MonoidAlgebra` components.
    """

    def __init__(
        self,
        n_bits: int,
        bit_machine: DFA | None = None,
        gen: Symbol = "g",
        kill: Symbol = "k",
    ):
        if n_bits < 1:
            raise ValueError("CompiledGenKillAlgebra needs at least one bit")
        if bit_machine is None:
            from repro.dfa.gallery import one_bit_machine

            bit_machine = one_bit_machine(gen=gen, kill=kill)
        self.bit = CompiledMonoidAlgebra(bit_machine)
        if self.bit.size() != 3:
            raise ValueError(
                "bit machine must have the 3-element gen/kill monoid "
                f"{{f_eps, f_gen, f_kill}}, got {self.bit.size()} elements"
            )
        self._eps = self.bit.identity
        self._gen = self.bit.symbol(gen)
        self._kill = self.bit.symbol(kill)
        self.n_bits = n_bits
        self._mask = (1 << n_bits) - 1
        self.identity = 0
        #: Packed identity (every bit ε), as an int for the solver's O(1)
        #: identity test in cycle elimination.
        self.identity_index = 0
        # Per-element predicates of the one-bit monoid, used to assemble
        # the packed predicates below.
        accepting = {
            e: self.bit.is_accepting(e) for e in (self._eps, self._gen, self._kill)
        }
        live = {e: self.bit.is_live(e) for e in (self._eps, self._gen, self._kill)}
        self._acc_eps = accepting[self._eps]
        self._acc_gen = accepting[self._gen]
        self._acc_kill = accepting[self._kill]
        #: With the standard Fig 1 machine every one-bit element is live,
        #: so the product-wide liveness test degenerates to ``True``.
        self._never_dead = all(live.values())
        self._dead_eps = not live[self._eps]
        self._dead_gen = not live[self._gen]
        self._dead_kill = not live[self._kill]
        # The vectorized column compose works on int64 lanes; packed
        # annotations occupy 2*n_bits, so widths past 31 bits would
        # overflow the lane and must fall back to the scalar loop.
        if _np is None or 2 * n_bits > 62:
            self.then_many = None  # type: ignore[assignment]

    # -- packing -------------------------------------------------------------

    def of_effect(self, gen_bits: Iterable[int], kill_bits: Iterable[int]) -> int:
        """Packed annotation of a statement generating/killing fact sets."""
        forced = 0
        value = 0
        for i in gen_bits:
            bit = 1 << i
            forced |= bit
            value |= bit
        for i in kill_bits:
            forced |= 1 << i
        return forced | (value << self.n_bits)

    def encode(self, annotation: tuple) -> int:
        """Pack a :class:`ProductAlgebra`-style tuple of one-bit elements."""
        if len(annotation) != self.n_bits:
            raise ValueError(
                f"expected {self.n_bits} components, got {len(annotation)}"
            )
        forced = 0
        value = 0
        bit_index = self.bit._index
        for i, component in enumerate(annotation):
            element = (
                component
                if isinstance(component, int)
                else bit_index[component]
            )
            if element == self._gen:
                forced |= 1 << i
                value |= 1 << i
            elif element == self._kill:
                forced |= 1 << i
        return forced | (value << self.n_bits)

    def decode(self, annotation: int) -> tuple[RepresentativeFunction, ...]:
        """The tuple-of-representative-functions view of a packed int."""
        forced = annotation & self._mask
        value = annotation >> self.n_bits
        out = []
        for i in range(self.n_bits):
            bit = 1 << i
            if forced & bit:
                out.append(self.bit.decode(self._gen if value & bit else self._kill))
            else:
                out.append(self.bit.decode(self._eps))
        return tuple(out)

    # -- the solver interface ------------------------------------------------

    def then(self, first: int, second: int) -> int:
        """``g`` wins wherever forced; ``f`` shows through elsewhere."""
        n = self.n_bits
        mask = self._mask
        f_forced = first & mask
        f_value = first >> n
        g_forced = second & mask
        g_value = second >> n
        keep = ~g_forced & mask
        return (f_forced | g_forced) | (((f_value & keep) | g_value) << n)

    def then_many(self, anns: Sequence[int], hi: int, second: int) -> list[int]:
        """Compose ``anns[:hi]`` against one ``second``, vectorized.

        The bitwise form of :meth:`then` maps directly onto numpy int64
        lanes: ``second`` is broadcast, the column is packed once, and
        the whole gen/kill update runs as five array ops.  Disabled
        (``then_many = None``) when numpy is missing or the packed width
        exceeds an int64 lane.
        """
        n = self.n_bits
        mask = self._mask
        g_forced = second & mask
        g_value = second >> n
        keep = ~g_forced & mask
        arr = _np.array(anns[:hi], dtype=_np.int64)
        out = ((arr & mask) | g_forced) | (
            (((arr >> n) & keep) | g_value) << n
        )
        return out.tolist()

    def is_live(self, annotation: int) -> bool:
        if self._never_dead:
            return True
        forced = annotation & self._mask
        value = annotation >> self.n_bits
        if self._dead_eps and (~forced & self._mask):
            return False
        if self._dead_gen and (forced & value):
            return False
        if self._dead_kill and (forced & ~value):
            return False
        return True

    def accepting_mask(self, annotation: int) -> int:
        """Bitmask of accepting components (bit ``i`` set iff fact ``i``
        holds after the annotation's words)."""
        forced = annotation & self._mask
        value = annotation >> self.n_bits
        result = 0
        if self._acc_gen:
            result |= forced & value
        if self._acc_kill:
            result |= forced & ~value
        if self._acc_eps:
            result |= ~forced & self._mask
        return result

    def accepting_bits(self, annotation: int) -> tuple[bool, ...]:
        """Per-component acceptance, in :class:`ProductAlgebra` layout."""
        mask = self.accepting_mask(annotation)
        return tuple(bool(mask & (1 << i)) for i in range(self.n_bits))

    def is_accepting(self, annotation: int) -> bool:
        return self.accepting_mask(annotation) == self._mask
