"""Annotation algebras — what the solver composes during closure.

The constraint solver is generic over the annotation domain.  It needs
exactly the operations the transitive-closure rule of Section 3.1 uses:

* an identity element (``f_ε``),
* an associative composition (``then`` in word order — the paper's
  ``g ∘ f`` is ``then(f, g)``),
* a *liveness* test used to drop annotations that are "necessarily
  non-accepting" (the paper's minimality-based pruning), and
* hashability, so derived constraints deduplicate — the termination
  argument of Lemma 3.1 is precisely that annotations range over a
  finite set.

Three algebras are provided:

* :class:`MonoidAlgebra` — representative functions of a property DFA,
  the paper's main construction (Section 2.4);
* :class:`ProductAlgebra` — component-wise products, used for n-bit
  gen/kill languages without building the ``2^n``-state product machine
  (Sections 3.3, 4);
* :class:`repro.core.parametric.ParametricAlgebra` — substitution
  environments for parametric annotations (Section 6.4).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Protocol, Sequence

from repro.dfa.automaton import DFA, Symbol
from repro.dfa.monoid import RepresentativeFunction, TransitionMonoid

Annotation = Hashable


class AnnotationAlgebra(Protocol):
    """The operations the solver requires of an annotation domain."""

    identity: Annotation

    def then(self, first: Annotation, second: Annotation) -> Annotation:
        """Composition in word order: ``first``'s word, then ``second``'s."""
        ...

    def is_live(self, annotation: Annotation) -> bool:
        """May words of this class still extend to a word of interest?"""
        ...


class MonoidAlgebra:
    """Annotations are representative functions of a property machine.

    This is the paper's bidirectional-solver domain: each annotation is
    an element of ``F_M^≡`` and composition is function composition
    (constant-time table lookup once memoized).
    """

    def __init__(self, machine: DFA, eager: bool = True, max_size: int = 500_000):
        self.machine = machine
        self.monoid = TransitionMonoid(machine, eager=eager, max_size=max_size)
        self.identity = self.monoid.identity
        self._live_memo: dict[RepresentativeFunction, bool] = {}

    def symbol(self, symbol: Symbol) -> RepresentativeFunction:
        """The annotation ``f_σ`` of a single alphabet symbol."""
        return self.monoid.generator(symbol)

    def word(self, word: Iterable[Symbol]) -> RepresentativeFunction:
        """The annotation of an arbitrary word over the alphabet."""
        return self.monoid.of_word(word)

    def then(
        self, first: RepresentativeFunction, second: RepresentativeFunction
    ) -> RepresentativeFunction:
        return self.monoid.then(first, second)

    def is_live(self, annotation: RepresentativeFunction) -> bool:
        cached = self._live_memo.get(annotation)
        if cached is None:
            cached = self.monoid.is_live(annotation)
            self._live_memo[annotation] = cached
        return cached

    def is_accepting(self, annotation: RepresentativeFunction) -> bool:
        """Does the annotation represent full words of ``L(M)``?"""
        return self.monoid.is_accepting(annotation)

    def state_after(self, annotation: RepresentativeFunction) -> int:
        """The machine state reached from the start by the annotation."""
        return annotation(self.machine.start)


class UnannotatedAlgebra:
    """The trivial one-element algebra — ordinary set constraints.

    Solving with this algebra is exactly the classical cubic fragment;
    it exists so the solver can serve as its own unannotated baseline in
    the complexity benchmarks (Section 4's ``O(n^3)`` reference point).
    """

    identity = ()

    def then(self, first: tuple, second: tuple) -> tuple:
        return ()

    def is_live(self, annotation: tuple) -> bool:
        return True

    def is_accepting(self, annotation: tuple) -> bool:
        return True


class ProductAlgebra:
    """Component-wise product of annotation algebras.

    An n-bit gen/kill language (Section 3.3) is the product of n one-bit
    machines; representing annotations as tuples of one-bit functions
    keeps composition ``O(n)`` instead of materializing the exponential
    product machine.  Deadness is approximated component-wise (a product
    annotation is dead if *any* component is dead — necessary, not
    sufficient, hence sound for pruning).
    """

    def __init__(self, components: Sequence[Any]):
        if not components:
            raise ValueError("ProductAlgebra needs at least one component")
        self.components = tuple(components)
        self.identity = tuple(c.identity for c in self.components)

    def then(self, first: tuple, second: tuple) -> tuple:
        return tuple(
            algebra.then(f, s)
            for algebra, f, s in zip(self.components, first, second)
        )

    def is_live(self, annotation: tuple) -> bool:
        return all(
            algebra.is_live(component)
            for algebra, component in zip(self.components, annotation)
        )

    def accepting_bits(self, annotation: tuple) -> tuple[bool, ...]:
        """Per-component acceptance — e.g. which dataflow facts hold."""
        return tuple(
            algebra.is_accepting(component)
            for algebra, component in zip(self.components, annotation)
        )

    def is_accepting(self, annotation: tuple) -> bool:
        """Accepting in the product language (all components accept)."""
        return all(self.accepting_bits(annotation))
