"""Sharded solving: partition the constraint graph, solve regions in
parallel, stitch the frontier to the same canonical solved form.

The scalability story of Section 8 is single-solver engineering; this
module adds the orthogonal axis — *data* parallelism over the
constraint graph itself.  The partitioner quotients the variable graph
by identity-annotated SCCs first (via :meth:`collapse_map`, the same
canonical quotient cycle elimination uses), because splitting an
identity cycle across shards only creates avoidable frontier traffic:
every member carries the same solved form.  A deterministic
min-cut-ish region grower then assigns quotient nodes to ``K`` regions,
greedily growing the currently-smallest region along its
heaviest-connected unassigned neighbor — a pure function of the
constraint multiset, so shard assignment is reproducible run to run.

Each region becomes one solver (the flat core when the algebra is
compiled) holding the constraints *homed* to it: a constraint lives in
the shard of the variable whose bucket columns will consume it — the
source of an edge, the anchor of an upper or a projection — because
every resolution rule of the system fires by scanning the consumer
columns at the variable where a lower bound lands (see
:meth:`repro.core.flatcore.FlatSolver._drain`).  That locality is what
makes the stitch fixpoint small: shards exchange only *lower bounds* of
shared variables, importing them into every shard holding consumer
columns for that variable, and re-drain until no shard learns a new
fact.

Soundness and completeness of the stitch: every shard applies the same
resolution rules to facts derivable in the global system (plus imports
of globally derived facts), so the union of shard facts never exceeds
the global closure.  Conversely, any rule instance of the global
closure pairs a lower bound at ``v`` with a consumer fact at ``v``; the
consumer exists in some shard ``S`` (asserted constraints are homed
somewhere, derived consumers are derived in the shard that fired the
deriving rule), and at the exchange fixpoint ``S`` has imported every
lower bound at ``v`` — so the instance has fired in ``S`` and its
conclusion is in the union.  By induction the union *is* the global
closure, and canonicalizing it through the full identity-cycle quotient
(:meth:`canonical_facts`) yields the same canonical solved form as a
single-solver run — the property the equivalence suite asserts for
``K ∈ {1, 2, 4}`` with cycle elimination on and off.

Cross-process execution uses the flat-column wire format: a shard
worker solves its region and returns the canonical v3 dump
(:func:`repro.core.persist.dump_solver` — int-interned columns, the
format snapshots share), which the parent reloads without re-closing.
Compiled-annotation indices are deterministic per machine (the monoid
enumeration is a pure function of the automaton), so indices agree
across worker processes.
"""

from __future__ import annotations

import heapq
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core.budget import Budget
from repro.core.errors import ConstraintError, Inconsistency
from repro.core.flatcore import FlatSolver
from repro.core.solver import FactKey, Solver
from repro.core.terms import Constructed, Projection, SetExpression, Variable


def _is_flat_algebra(algebra: Any) -> bool:
    """Compiled algebras (int annotations) run on the flat core."""
    return getattr(algebra, "identity_index", None) is not None


def _make_solver(
    algebra: Any,
    *,
    cycle_elim: bool,
    pn_projections: bool = False,
    budget: Budget | None = None,
    track_redundant: bool = False,
) -> Solver | FlatSolver:
    if _is_flat_algebra(algebra):
        return FlatSolver(
            algebra,
            pn_projections=pn_projections,
            budget=budget,
            cycle_elim=cycle_elim,
            track_redundant=track_redundant,
        )
    return Solver(
        algebra,
        pn_projections=pn_projections,
        record_reasons=False,
        budget=budget,
        cycle_elim=cycle_elim,
        track_redundant=track_redundant,
    )


def _normalize_constraints(constraints: Iterable[tuple]) -> list[tuple]:
    """Materialize ``(lhs, rhs, annotation-or-None)`` triples."""
    out: list[tuple] = []
    for item in constraints:
        lhs, rhs = item[0], item[1]
        ann = item[2] if len(item) > 2 else None
        out.append((lhs, rhs, ann))
    return out


def _constraint_links(
    lhs: SetExpression, rhs: SetExpression
) -> Iterator[tuple[Variable, Variable]]:
    """Variable pairs a constraint connects (for the region graph)."""
    if isinstance(lhs, Variable) and isinstance(rhs, Variable):
        yield lhs, rhs
    elif isinstance(lhs, Constructed) and isinstance(rhs, Variable):
        for arg in lhs.args:
            yield arg, rhs
    elif isinstance(lhs, Variable) and isinstance(rhs, Constructed):
        for arg in rhs.args:
            yield lhs, arg
    elif isinstance(lhs, Constructed) and isinstance(rhs, Constructed):
        for a in lhs.args:
            for b in rhs.args:
                yield a, b
    elif isinstance(lhs, Projection):
        if isinstance(rhs, Variable):
            yield lhs.operand, rhs
        elif isinstance(rhs, Constructed):
            for arg in rhs.args:
                yield lhs.operand, arg


def _constraint_vars(
    lhs: SetExpression, rhs: SetExpression
) -> Iterator[Variable]:
    for expr in (lhs, rhs):
        if isinstance(expr, Variable):
            yield expr
        elif isinstance(expr, Constructed):
            yield from expr.args
        elif isinstance(expr, Projection):
            yield expr.operand


def identity_quotient(
    constraints: list[tuple], algebra: Any
) -> dict[Variable, Variable]:
    """Quotient the variable graph by identity-annotated SCCs.

    Literally: feed the identity ``u ⊆ v`` constraints to a solver and
    take its :meth:`collapse_map` — the same complete Kosaraju pass the
    canonical solved form is defined by.  (Edges drain against empty
    lower columns, so this costs one pass over the edge list.)
    """
    if _is_flat_algebra(algebra):
        identity: Any = algebra.identity_index
    else:
        identity = algebra.identity
    edges = [
        (lhs, rhs)
        for lhs, rhs, ann in constraints
        if isinstance(lhs, Variable)
        and isinstance(rhs, Variable)
        and (ann is None or ann == identity)
    ]
    scc = _make_solver(algebra, cycle_elim=False)
    scc.add_many(edges)
    return scc.collapse_map()


def grow_regions(
    nodes: list[Variable],
    weights: dict[Variable, dict[Variable, int]],
    shards: int,
) -> dict[Variable, int]:
    """Deterministically assign quotient nodes to ``shards`` regions.

    Min-cut-ish greedy growth: seeds are the heaviest-degree nodes that
    are mutually least connected; thereafter the smallest region grows
    by the unassigned node with the largest edge weight into it (ties
    broken by name), falling back to the lexicographically smallest
    unassigned node when the frontier is exhausted (fresh component).
    Pure function of ``(nodes, weights, shards)``.
    """
    if not nodes:
        return {}
    shards = max(1, min(shards, len(nodes)))
    ordered = sorted(nodes, key=lambda v: v.name)
    if shards == 1:
        return {v: 0 for v in ordered}
    degree = {
        v: sum(weights.get(v, {}).values()) for v in ordered
    }
    assignment: dict[Variable, int] = {}
    # Seeds: start from the heaviest node, then repeatedly pick the
    # unassigned node least connected to the already-chosen seeds
    # (preferring heavy, early names on ties) — seeds land in different
    # regions of the graph, which is what keeps the eventual cut small.
    by_weight = sorted(ordered, key=lambda v: (-degree[v], v.name))
    seeds = [by_weight[0]]
    while len(seeds) < shards:
        best: Variable | None = None
        best_key: tuple | None = None
        chosen = set(seeds)
        for v in by_weight:
            if v in chosen:
                continue
            attached = sum(
                w for u, w in weights.get(v, {}).items() if u in chosen
            )
            key = (attached, -degree[v], v.name)
            if best_key is None or key < best_key:
                best, best_key = v, key
        assert best is not None
        seeds.append(best)
    # Per-shard frontier heaps of (-gain, name) with lazy invalidation.
    gain: list[dict[Variable, int]] = [dict() for _ in range(shards)]
    heaps: list[list[tuple[int, str]]] = [[] for _ in range(shards)]
    sizes = [0] * shards
    by_name: dict[str, Variable] = {v.name: v for v in ordered}

    def assign(v: Variable, shard: int) -> None:
        assignment[v] = shard
        sizes[shard] += 1
        bucket = gain[shard]
        heap = heaps[shard]
        for u, w in weights.get(v, {}).items():
            if u in assignment:
                continue
            g = bucket.get(u, 0) + w
            bucket[u] = g
            heapq.heappush(heap, (-g, u.name))

    for index, seed in enumerate(seeds):
        assign(seed, index)
    cursor = 0  # over ``ordered`` for the no-frontier fallback
    remaining = len(ordered) - shards
    while remaining:
        shard = min(range(shards), key=lambda i: (sizes[i], i))
        heap = heaps[shard]
        bucket = gain[shard]
        picked: Variable | None = None
        while heap:
            neg, name = heapq.heappop(heap)
            v = by_name[name]
            if v in assignment or bucket.get(v, 0) != -neg:
                continue  # stale entry
            picked = v
            break
        if picked is None:
            while cursor < len(ordered) and ordered[cursor] in assignment:
                cursor += 1
            picked = ordered[cursor]
        assign(picked, shard)
        remaining -= 1
    return assignment


def _frontier_counts(
    assignment: dict[Variable, int],
    weights: dict[Variable, dict[Variable, int]],
    shards: int,
) -> tuple[int, list[int]]:
    """Frontier edge count of a region assignment.

    Counts *distinct quotient-graph edges* whose endpoints land in
    different shards — the quantity that sizes the cross-shard
    lower-bound exchange (each cut edge is a variable adjacency whose
    lowers must ship).  Returns ``(total, per_shard)`` where the
    per-shard figure counts each cut edge at both endpoints (a shard's
    own frontier, as reported by ``repro check --shards -v``).
    """
    total = 0
    per_shard = [0] * shards
    for u, neighbors in weights.items():
        su = assignment.get(u, 0)
        for v in neighbors:
            if u.name >= v.name:
                continue  # count each unordered pair once
            sv = assignment.get(v, 0)
            if su != sv:
                total += 1
                per_shard[su] += 1
                per_shard[sv] += 1
    return total, per_shard


def refine_regions(
    assignment: dict[Variable, int],
    weights: dict[Variable, dict[Variable, int]],
    shards: int,
) -> dict[Variable, int]:
    """One Fiduccia–Mattheyses-style move pass over a region assignment.

    Scans nodes in name order; a node moves to the neighboring shard
    with the largest *strictly positive* gain, where gain is counted in
    distinct cut **edges** (neighbors in the target shard minus
    neighbors in the home shard).  Because each accepted move strictly
    reduces the number of cut edges and the count is a non-negative
    integer, the pass provably leaves the frontier edge count no larger
    than it started — and strictly smaller whenever any move is
    accepted.  A balance cap (``ceil(n / shards)`` plus 25% slack)
    keeps refinement from collapsing everything into one shard, and a
    shard is never drained below one node.  Ties break toward the
    lowest shard index; the scan order is name-sorted — the whole pass
    is a pure function of its inputs, like :func:`grow_regions`.
    """
    if shards <= 1 or len(assignment) <= shards:
        return assignment
    assignment = dict(assignment)
    sizes = [0] * shards
    for shard in assignment.values():
        sizes[shard] += 1
    n = len(assignment)
    cap = -(-n // shards)  # ceil
    cap += max(1, cap // 4)
    for v in sorted(assignment, key=lambda node: node.name):
        neighbors = weights.get(v)
        if not neighbors:
            continue
        home = assignment[v]
        if sizes[home] <= 1:
            continue
        # Distinct-neighbor tallies per shard (edge-pair gain, not
        # weight gain — the metric being minimized is cut edges).
        conn = [0] * shards
        for u in neighbors:
            conn[assignment.get(u, home)] += 1
        best_shard = home
        best_gain = 0
        for shard in range(shards):
            if shard == home or sizes[shard] >= cap:
                continue
            gain = conn[shard] - conn[home]
            if gain > best_gain:
                best_gain = gain
                best_shard = shard
        if best_shard != home:
            assignment[v] = best_shard
            sizes[home] -= 1
            sizes[best_shard] += 1
    return assignment


#: Recognized partitioning strategies (the CLI exposes these).
PARTITION_STRATEGIES = ("greedy", "roundrobin")


@dataclass
class ShardPlan:
    """A deterministic partition of a constraint batch into regions."""

    shards: int
    #: Variable name → shard, on quotient representatives *and* their
    #: members (every variable of the batch resolves here).
    assignment: dict[str, int]
    #: Per-constraint home shard, aligned with the normalized batch.
    constraint_shard: list[int]
    #: Quotient map (loser name → representative name) the plan used.
    quotient: dict[str, str]
    sizes: list[int] = field(default_factory=list)
    #: Strategy that produced the assignment ("greedy" or "roundrobin").
    partition: str = "greedy"
    #: Distinct quotient-graph edges crossing shards (the exchange load).
    frontier_edges: int = 0
    #: Per-shard frontier, counting each cut edge at both endpoints.
    frontier_per_shard: list[int] = field(default_factory=list)

    def shard_of(self, var: Variable) -> int:
        return self.assignment.get(var.name, 0)


def plan_shards(
    constraints: list[tuple],
    algebra: Any,
    shards: int,
    partition: str = "greedy",
) -> ShardPlan:
    """Partition a normalized constraint batch into ``shards`` regions.

    ``partition`` picks the strategy: ``"greedy"`` (default) grows
    locality-aware regions and runs one FM refinement pass over the cut
    (:func:`grow_regions` + :func:`refine_regions`); ``"roundrobin"``
    deals quotient nodes out cyclically in name order — the locality
    baseline the bench gate compares against.  Both are deterministic,
    and both yield the same canonical solved form (partitioning affects
    only *where* constraints are homed, never what is derived — the
    equivalence suite asserts this per strategy).
    """
    if partition not in PARTITION_STRATEGIES:
        raise ConstraintError(
            f"unknown partition strategy {partition!r}; "
            f"expected one of {PARTITION_STRATEGIES}"
        )
    cmap = identity_quotient(constraints, algebra)

    def rep(v: Variable) -> Variable:
        return cmap.get(v, v)

    nodes: set[Variable] = set()
    weights: dict[Variable, dict[Variable, int]] = {}
    for lhs, rhs, _ann in constraints:
        for v in _constraint_vars(lhs, rhs):
            nodes.add(rep(v))
        for a, b in _constraint_links(lhs, rhs):
            ra, rb = rep(a), rep(b)
            if ra == rb:
                continue
            weights.setdefault(ra, {})[rb] = weights.get(ra, {}).get(rb, 0) + 1
            weights.setdefault(rb, {})[ra] = weights.get(rb, {}).get(ra, 0) + 1
    ordered_nodes = sorted(nodes, key=lambda v: v.name)
    if partition == "roundrobin":
        region = {v: i % shards for i, v in enumerate(ordered_nodes)}
    else:
        region = grow_regions(ordered_nodes, weights, shards)
    shards = max(region.values(), default=0) + 1 if region else 1
    if partition == "greedy" and shards > 1:
        region = refine_regions(region, weights, shards)
    frontier_edges, frontier_per_shard = _frontier_counts(
        region, weights, shards
    )

    def shard_of(v: Variable) -> int:
        return region.get(rep(v), 0)

    homes: list[int] = []
    for lhs, rhs, _ann in constraints:
        if isinstance(lhs, Variable) and isinstance(rhs, Variable):
            home = shard_of(lhs)  # edge consumes lowers at its source
        elif isinstance(rhs, Variable):
            home = shard_of(rhs)  # lower bound lands at rhs
        elif isinstance(lhs, Projection):
            home = shard_of(lhs.operand)  # proj consumes lowers at operand
        elif isinstance(lhs, Variable):
            home = shard_of(lhs)  # upper bound anchors at lhs
        else:  # term ⊆ term: a meet, location-free
            args = list(_constraint_vars(lhs, rhs))
            home = shard_of(args[0]) if args else 0
        homes.append(home)
    assignment = {v.name: region.get(rep(v), 0) for v in cmap} | {
        v.name: s for v, s in region.items()
    }
    sizes = [0] * shards
    for home in homes:
        sizes[home] += 1
    return ShardPlan(
        shards=shards,
        assignment=assignment,
        constraint_shard=homes,
        quotient={v.name: r.name for v, r in cmap.items() if v != r},
        sizes=sizes,
        partition=partition,
        frontier_edges=frontier_edges,
        frontier_per_shard=frontier_per_shard,
    )


# -- cross-process shard workers ------------------------------------------------


#: Worker-global compiled algebras, keyed by machine fingerprint — each
#: pool worker compiles a property machine's monoid once and reuses the
#: tables for every shard batch it solves.
_WORKER_ALGEBRAS: dict[str, Any] = {}


def _worker_algebra(
    machine_data: dict, fingerprint: str, arena_name: str | None = None
) -> Any:
    algebra = _WORKER_ALGEBRAS.get(fingerprint)
    if algebra is None:
        if arena_name is not None:
            # Zero-copy path: index the parent's published composition
            # tables instead of recompiling the monoid in this worker.
            try:
                from repro.core import shm

                algebra, _arena = shm.attach_algebra(
                    arena_name, expected_fingerprint=fingerprint
                )
            except Exception:
                algebra = None
        if algebra is None:
            from repro.core.annotations import CompiledMonoidAlgebra
            from repro.core.persist import dfa_from_dict

            algebra = CompiledMonoidAlgebra(dfa_from_dict(machine_data))
        _WORKER_ALGEBRAS[fingerprint] = algebra
    return algebra


def solve_shard_remote(
    machine_data: dict,
    fingerprint: str,
    constraints: list[tuple],
    cycle_elim: bool,
    pn_projections: bool,
    arena_name: str | None = None,
    want_shm: bool = False,
) -> dict:
    """Solve one region in a pool worker; return a transfer envelope.

    When ``want_shm`` is set and shared memory is usable, the solved
    columns are published as a named segment and only its handle crosses
    the process boundary: ``{"shm": name, "resident_bytes": n,
    "wire_bytes": small}``.  Otherwise the envelope carries the flat v3
    dump — ``{"dump": json, "wire_bytes": len(json)}`` — whose
    int-interned columns the parent reinstalls without re-closing
    (:func:`repro.core.persist.load_solver` settles the columns and
    marks the lowers drained).
    """
    algebra = _worker_algebra(machine_data, fingerprint, arena_name)
    solver = FlatSolver(
        algebra, pn_projections=pn_projections, cycle_elim=cycle_elim
    )
    solver.add_many(constraints)
    if want_shm:
        try:
            from repro.core import shm

            if shm.shm_available():
                name, resident = shm.publish_columns(solver, fingerprint)
                return {
                    "shm": name,
                    "resident_bytes": resident,
                    "wire_bytes": len(name),
                }
        except Exception:
            pass  # fall through to the pickle-compatible dump
    from repro.core.persist import dump_solver

    dump = dump_solver(solver)
    return {"dump": dump, "wire_bytes": len(dump)}


# -- the stitch fixpoint --------------------------------------------------------


def _has_consumers(solver: Solver | FlatSolver, var: Variable) -> bool:
    """Does any resolution rule in this shard consume lowers at ``var``?"""
    return (
        next(solver.edges_from(var), None) is not None
        or next(solver.upper_bounds(var), None) is not None
        or next(solver.projection_sinks(var), None) is not None
    )


def _exchange_fixpoint(
    solvers: list[Solver | FlatSolver],
) -> tuple[int, int]:
    """Exchange frontier lower bounds until no shard learns a new fact.

    Returns ``(rounds, facts_imported)``.  Each round scans every
    shard's solved form, pools the lower bounds per variable name, and
    imports the ones missing from any shard holding consumer columns at
    that variable; the shard re-drains on import (difference
    propagation makes the re-drain proportional to the imported delta,
    not the whole column).
    """
    rounds = 0
    imported = 0
    while True:
        rounds += 1
        pool: dict[Variable, set[tuple]] = {}
        consumers: dict[Variable, list[int]] = {}
        shard_lowers: list[dict[Variable, set[tuple]]] = []
        for index, solver in enumerate(solvers):
            lowers: dict[Variable, set[tuple]] = {}
            for var in sorted(solver.variables(), key=lambda v: v.name):
                bounds = set(solver.lower_bounds(var))
                if bounds:
                    lowers[var] = bounds
                    pool.setdefault(var, set()).update(bounds)
                if _has_consumers(solver, var):
                    consumers.setdefault(var, []).append(index)
            shard_lowers.append(lowers)
        batches: list[list[tuple]] = [[] for _ in solvers]
        for var in sorted(consumers, key=lambda v: v.name):
            bounds = pool.get(var)
            if not bounds:
                continue
            for index in consumers[var]:
                have = shard_lowers[index].get(var, set())
                missing = bounds - have
                if missing:
                    batches[index].extend(
                        (term, var, ann)
                        for term, ann in sorted(missing, key=repr)
                    )
        added = 0
        for index, batch in enumerate(batches):
            if batch:
                solvers[index].add_many(batch)
                added += len(batch)
        if not added:
            return rounds, imported
        imported += added


def _merged_inconsistencies(
    solvers: list[Solver | FlatSolver],
) -> list[Inconsistency]:
    out: list[Inconsistency] = []
    seen: set[tuple] = set()
    for solver in solvers:
        for inc in solver.inconsistencies:
            key = (repr(inc.source), repr(inc.sink), repr(inc.annotation))
            if key not in seen:
                seen.add(key)
                out.append(inc)
    return out


class ShardedSolution:
    """The result of a sharded solve: per-region solvers plus a merged view.

    ``merged()`` materializes one solver holding the union solved form
    (installed via the flat columns, not re-closed — the union is
    already a fixpoint, see the module docstring); queries and
    :meth:`canonical_facts` run against it.
    """

    def __init__(
        self,
        plan: ShardPlan,
        solvers: list[Solver | FlatSolver],
        algebra: Any,
        cycle_elim: bool,
        pn_projections: bool,
        rounds: int,
        exchanged: int,
        transfer: dict | None = None,
    ) -> None:
        self.plan = plan
        self.solvers = solvers
        self.algebra = algebra
        self.cycle_elim = cycle_elim
        self.pn_projections = pn_projections
        self.rounds = rounds
        self.exchanged = exchanged
        #: How solved columns crossed the process boundary: mode is
        #: "local" (no boundary), "shm" (segment handles), or "pickle";
        #: bytes counts wire traffic (dump text, or handle names on shm).
        self.transfer = transfer or {
            "mode": "local",
            "bytes": 0,
            "shm_attaches": 0,
            "pickle_fallbacks": 0,
        }
        self._merged: Solver | FlatSolver | None = None

    @property
    def shards(self) -> int:
        return len(self.solvers)

    def merged(self) -> Solver | FlatSolver:
        if self._merged is not None:
            return self._merged
        if len(self.solvers) == 1:
            self._merged = self.solvers[0]
            return self._merged
        merged = _make_solver(
            self.algebra,
            cycle_elim=self.cycle_elim,
            pn_projections=self.pn_projections,
        )
        # A shard's canonical facts are emitted modulo its *own* identity
        # quotient, which erases the equivalence witness other shards'
        # facts rely on (they still name the merged-away variables).
        # Re-installing each shard's quotient as identity 2-cycles
        # restores it; the merged canonicalization then unifies the
        # component again and dedupes the overlap.
        if isinstance(merged, FlatSolver):
            identity = self.algebra.identity_index
            for solver in self.solvers:
                for fact in solver.canonical_facts():
                    merged._install_fact(fact)
                cmap = solver.collapse_map()
                for var in sorted(cmap, key=lambda v: v.name):
                    rep = cmap[var]
                    if var != rep:
                        merged._install_fact(("edge", var, rep, identity))
                        merged._install_fact(("edge", rep, var, identity))
            merged._settle_loaded()
        else:
            # Object core: canonical facts are all expressible as given
            # constraints, so the merged form is re-added (meets re-fire,
            # rediscovering the same inconsistencies).
            identity = self.algebra.identity
            batch: list[tuple] = []
            for solver in self.solvers:
                for fact in solver.canonical_facts():
                    batch.append(_fact_to_constraint(fact))
                cmap = solver.collapse_map()
                for var in sorted(cmap, key=lambda v: v.name):
                    rep = cmap[var]
                    if var != rep:
                        batch.append((var, rep, identity))
                        batch.append((rep, var, identity))
            merged.add_many(batch)
        merged.inconsistencies = _merged_inconsistencies(
            self.solvers + ([merged] if merged.inconsistencies else [])
        )
        self._merged = merged
        return merged

    def canonical_facts(self) -> Iterator[FactKey]:
        return self.merged().canonical_facts()

    def fact_count(self) -> int:
        return self.merged().fact_count()

    @property
    def inconsistencies(self) -> list[Inconsistency]:
        return self.merged().inconsistencies

    @property
    def is_consistent(self) -> bool:
        return not self.inconsistencies

    def shard_stats(self) -> list[dict]:
        """Per-shard solved-form sizes and composition counts (bench)."""
        out = []
        for index, solver in enumerate(self.solvers):
            stats = solver.stats
            facts = solver.fact_count()
            out.append(
                {
                    "shard": index,
                    "constraints": self.plan.sizes[index]
                    if index < len(self.plan.sizes)
                    else 0,
                    "facts": facts,
                    "compositions": stats.compositions,
                    "ratio": round(stats.compositions / facts, 4)
                    if facts
                    else 0.0,
                    "frontier_edges": self.plan.frontier_per_shard[index]
                    if index < len(self.plan.frontier_per_shard)
                    else 0,
                }
            )
        return out


def _fact_to_constraint(fact: FactKey) -> tuple:
    kind = fact[0]
    if kind == "lower":
        _tag, var, term, ann = fact
        return (term, var, ann)
    if kind == "upper":
        _tag, var, term, ann = fact
        return (var, term, ann)
    if kind == "edge":
        _tag, src, dst, ann = fact
        return (src, dst, ann)
    if kind == "proj":
        _tag, var, ctor, index, target, ann = fact
        return (Projection(ctor, index, var), target, ann)
    raise ConstraintError(f"unknown fact kind {kind!r}")


def solve_sharded(
    constraints: Iterable[tuple],
    algebra: Any,
    shards: int = 2,
    *,
    cycle_elim: bool = True,
    pn_projections: bool = False,
    budget: Budget | None = None,
    executor: Executor | None = None,
    partition: str = "greedy",
    transfer: str | None = None,
) -> ShardedSolution:
    """Partition, solve regions (optionally in parallel), stitch, done.

    ``executor`` runs the per-region initial solves in parallel: a
    :class:`~concurrent.futures.ProcessPoolExecutor` ships each region's
    constraints to a pool worker and gets solved columns back — as a
    shared-memory segment handle when :mod:`repro.core.shm` is usable
    (zero-copy: the parent maps the worker's bytes), else as the flat
    v3 dump (compiled algebras only — the wire format is int columns);
    any other executor (threads) solves shared-memory solvers
    concurrently.  The stitch fixpoint always runs in the caller's
    process: it is a small number of rounds over frontier variables
    only.

    ``partition`` selects the placement strategy (see
    :func:`plan_shards`).  ``transfer`` forces the process-pool result
    path: ``"pickle"`` disables shm publication, ``"shm"``/``None``
    prefer it when available.

    ``budget`` is threaded through the serial path's shard drains and
    the stitch (one shared budget across regions); parallel initial
    solves run unbudgeted.
    """
    batch = _normalize_constraints(constraints)
    if shards <= 1 or len(batch) < 2:
        solver = _make_solver(
            algebra,
            cycle_elim=cycle_elim,
            pn_projections=pn_projections,
            budget=budget,
        )
        solver.add_many(batch)
        plan = ShardPlan(
            shards=1,
            assignment={},
            constraint_shard=[0] * len(batch),
            quotient={},
            sizes=[len(batch)],
            partition=partition,
        )
        return ShardedSolution(
            plan, [solver], algebra, cycle_elim, pn_projections, 0, 0
        )
    plan = plan_shards(batch, algebra, shards, partition=partition)
    groups: list[list[tuple]] = [[] for _ in range(plan.shards)]
    for home, item in zip(plan.constraint_shard, batch):
        groups[home].append(item)

    use_process = isinstance(executor, ProcessPoolExecutor)
    if use_process and not _is_flat_algebra(algebra):
        raise ConstraintError(
            "process-parallel sharding needs a compiled algebra (the "
            "flat-column wire format carries int annotations)"
        )
    solvers: list[Solver | FlatSolver]
    transfer_stats: dict | None = None
    if executor is not None and use_process:
        from repro.core import shm
        from repro.core.persist import (
            dfa_to_dict,
            load_solver,
            machine_fingerprint,
        )

        machine = algebra.machine
        machine_data = dfa_to_dict(machine)
        fingerprint = machine_fingerprint(machine)
        want_shm = transfer != "pickle" and shm.shm_available()
        arena_name: str | None = None
        if want_shm:
            try:
                # Published once per fingerprint and kept for the process
                # lifetime (publish_algebra dedupes) — every worker maps
                # these composition tables instead of recompiling.
                arena_name = shm.publish_algebra(algebra, fingerprint).name
            except Exception:
                arena_name = None
        futures = [
            executor.submit(
                solve_shard_remote,
                machine_data,
                fingerprint,
                group,
                cycle_elim,
                pn_projections,
                arena_name,
                want_shm,
            )
            for group in groups
        ]
        solvers = []
        transfer_stats = {
            "mode": "shm" if want_shm else "pickle",
            "bytes": 0,
            "shm_attaches": 0,
            "pickle_fallbacks": 0,
        }
        for future in futures:
            envelope = future.result()
            transfer_stats["bytes"] += envelope.get("wire_bytes", 0)
            if "shm" in envelope:
                solvers.append(shm.attach_columns(envelope["shm"], algebra))
                transfer_stats["shm_attaches"] += 1
            else:
                solvers.append(
                    load_solver(
                        envelope["dump"], expected_fingerprint=fingerprint
                    )
                )
                if want_shm:
                    transfer_stats["pickle_fallbacks"] += 1
    elif executor is not None:

        def _solve_local(group: list[tuple]) -> Solver | FlatSolver:
            solver = _make_solver(
                algebra, cycle_elim=cycle_elim, pn_projections=pn_projections
            )
            solver.add_many(group)
            return solver

        solvers = [
            future.result()
            for future in [executor.submit(_solve_local, g) for g in groups]
        ]
    else:
        solvers = []
        for group in groups:
            solver = _make_solver(
                algebra,
                cycle_elim=cycle_elim,
                pn_projections=pn_projections,
                budget=budget,
            )
            solver.add_many(group)
            solvers.append(solver)
    rounds, exchanged = _exchange_fixpoint(solvers)
    return ShardedSolution(
        plan,
        solvers,
        algebra,
        cycle_elim,
        pn_projections,
        rounds,
        exchanged,
        transfer=transfer_stats,
    )
