"""A reference implementation of the Section 2 denotational semantics.

This module exists for validation, not performance: it computes least
solutions of (lower-bound) annotated constraint systems directly over
ground annotated terms with explicit *words*, exactly as Section 2
defines them —

* an assignment maps set variables to sets of annotated terms;
* ``ρ`` is a solution of ``se1 ⊆^w se2`` iff ``ρ(se1)·w ⊆ ρ(se2)``,
  where ``t·w`` appends the word at every constructor level;
* constructed expressions build terms whose fresh constructor carries
  the empty word (the query convention ``f_ε ⊆ α`` of Section 3.2);
* projections select components.

The test suite compares the solver's representative-function facts
against this word-level model via the ``≡_M`` congruence (a term with
word ``w`` matches a solver fact with annotation ``f`` iff
``f = δ(w, ·)``, Theorem 2.1).

Only constraints without constructed *upper* bounds are supported —
upper bounds restrict rather than generate, so they have no place in a
least-solution generator (the solver's decomposition of them is
validated separately by unit tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import ConstraintError
from repro.core.terms import (
    Constructed,
    Constructor,
    GroundTerm,
    Projection,
    SetExpression,
    Variable,
)
from repro.dfa.automaton import DFA, Symbol

#: The undefined term ⊥ of the Section 2.1 domain.  Constructors are
#: non-strict, so ``c(t, ⊥)`` is a term; ``⊥ · w = ⊥``; every
#: (non-empty) downward-closed set contains ⊥, which we model by always
#: offering ⊥ as a constructor argument.
BOTTOM = GroundTerm(Constructor("__bottom__", 0), ())


def is_bottom(term: GroundTerm) -> bool:
    return term.constructor.name == "__bottom__"


def append_word(term: GroundTerm, word: tuple) -> GroundTerm:
    """``t · w`` respecting ``⊥ · w = ⊥``."""
    if is_bottom(term):
        return term
    return GroundTerm(
        term.constructor,
        term.annotation + tuple(word),
        tuple(append_word(child, word) for child in term.children),
    )


@dataclass(frozen=True)
class WordConstraint:
    """A surface constraint ``lhs ⊆^word rhs`` with an explicit word."""

    lhs: SetExpression
    rhs: Variable
    word: tuple[Symbol, ...] = ()


class ReferenceSemantics:
    """Word-level least solutions for lower-bound constraint systems."""

    def __init__(
        self,
        machine: DFA,
        constraints: Iterable[WordConstraint],
        max_depth: int = 4,
        max_word: int = 8,
        max_iterations: int = 50,
    ):
        self.machine = machine
        self.constraints = list(constraints)
        self.max_depth = max_depth
        self.max_word = max_word
        self.max_iterations = max_iterations
        for constraint in self.constraints:
            if not isinstance(constraint.rhs, Variable):
                raise ConstraintError(
                    "reference semantics supports variable right-hand sides only"
                )
        self.solution = self._least_solution()

    # -- evaluation ---------------------------------------------------------

    def _admissible(self, term: GroundTerm) -> bool:
        """Cut off terms beyond the depth/word bounds (approximation)."""
        if term.depth() > self.max_depth or len(term.annotation) > self.max_word:
            return False
        return all(self._admissible(child) for child in term.children)

    def _evaluate(
        self,
        expr: SetExpression,
        rho: dict[Variable, set[GroundTerm]],
    ) -> set[GroundTerm]:
        if isinstance(expr, Variable):
            return rho.get(expr, set())
        if isinstance(expr, Constructed):
            child_sets = []
            for arg in expr.args:
                if not isinstance(arg, Variable):
                    raise ConstraintError(
                        "reference semantics needs variable constructor arguments"
                    )
                # Non-strict constructors: ⊥ is always available as a
                # component (the downward-closure of any solution).
                child_sets.append(rho.get(arg, set()) | {BOTTOM})
            if expr.is_constant:
                return {GroundTerm(expr.constructor, ())}
            results: set[GroundTerm] = set()
            for children in itertools.product(*child_sets):
                results.add(GroundTerm(expr.constructor, (), tuple(children)))
            return results
        if isinstance(expr, Projection):
            results = set()
            for term in rho.get(expr.operand, set()):
                if (
                    term.constructor == expr.constructor
                    and len(term.children) >= expr.index
                ):
                    results.add(term.children[expr.index - 1])
            return results
        raise ConstraintError(f"unsupported expression {expr!r}")

    def _least_solution(self) -> dict[Variable, set[GroundTerm]]:
        rho: dict[Variable, set[GroundTerm]] = {}
        for _ in range(self.max_iterations):
            changed = False
            for constraint in self.constraints:
                produced = self._evaluate(constraint.lhs, rho)
                target = rho.setdefault(constraint.rhs, set())
                for term in produced:
                    appended = append_word(term, constraint.word)
                    if is_bottom(appended):
                        continue  # ⊥ is implicitly everywhere
                    if self._admissible(appended) and appended not in target:
                        target.add(appended)
                        changed = True
            if not changed:
                return rho
        return rho  # bounded approximation for recursive systems

    # -- queries -------------------------------------------------------------

    def terms_of(self, var: Variable) -> set[GroundTerm]:
        return set(self.solution.get(var, set()))

    def constants_with_words(
        self, var: Variable
    ) -> set[tuple[str, tuple[Symbol, ...]]]:
        """All (constant name, accumulated word) pairs in ``var``'s
        least solution, descending through constructors.

        The word a nested constant has seen is simply its own
        annotation — ``·`` already appended every enclosing journey to
        it — so this is the word-level mirror of the query engine's
        PN reachability table.
        """
        found: set[tuple[str, tuple[Symbol, ...]]] = set()

        def walk(term: GroundTerm) -> None:
            if is_bottom(term):
                return
            if not term.children:
                found.add((term.constructor.name, term.annotation))
            for child in term.children:
                walk(child)

        for term in self.solution.get(var, set()):
            walk(term)
        return found

    def entails_constant(
        self, var: Variable, name: str, accepting_only: bool = True
    ) -> bool:
        """The Section 3.2 simple query, decided at the word level."""
        for const_name, word in self.constants_with_words(var):
            if const_name != name:
                continue
            if not accepting_only or self.machine.accepts(word):
                return True
        return False
