"""Online cycle elimination for identity-annotated constraint edges.

BANSHEE's headline scaling trick (Fähndrich, Foster, Su & Aiken,
"Partial online cycle elimination in inclusion constraint graphs"):
variables on a cycle of inclusion edges have equal solutions and can be
merged into a single representative, shrinking the ``n`` the cubic
closure runs over.  For *annotated* constraints the sound case is the
cycle all of whose edges carry the identity annotation: ``id ∘ id = id``
means every lower bound circulates unchanged, so the members' solutions
coincide exactly.  A cycle with any non-identity edge must **not** be
collapsed — a bound crossing such an edge re-enters the cycle with a
different annotation, and the members' annotation sets genuinely differ.

Detection is *partial online*, as in the paper: when an identity
var→var edge ``src → dst`` is inserted, a bounded reverse DFS from
``src`` over identity predecessor edges looks for ``dst``; a hit means
``dst → … → src → dst`` is an identity cycle and the nodes on the found
path are merged.  The bound keeps the per-edge overhead constant; cycles
the sample misses are still solved correctly, just without the merge.

The union-find here is deliberately *rank-free*: the representative of
a merge is always the member with the lexicographically smallest name.
That makes the choice a pure function of the merged set — independent of
merge order, of interleaving with checkpoints, and of how much of an SCC
each bounded search happened to find — which is what keeps solved forms
comparable across a run and its dump/load/resume replay.  Identity SCCs
in real constraint graphs are small (loop headers, copy chains), so the
asymptotic loss against union-by-rank is irrelevant; path compression
still applies (the solver disables it while a retraction epoch is open,
because compressed pointers cannot be unwound by the undo log).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

#: Nodes a single reverse-path sample may visit before giving up.  Large
#: enough that the search is complete on the small identity SCCs real
#: programs produce; small enough to bound the per-edge insertion cost.
DEFAULT_SEARCH_BOUND = 64


class UnionFind:
    """Union-find over hashable nodes with min-name representative choice.

    Only nodes that have been merged appear in ``parent``; every other
    node is implicitly its own root, so ``find`` on an untouched node is
    a single dict miss.  ``union`` links two *roots*; the caller decides
    which survives (the solver picks the smallest name, see module
    docstring).  ``undo_union`` unlinks a loser again — valid only in
    LIFO order with no intervening path compression, which the solver
    guarantees by disabling compression while a journal epoch is open.
    """

    __slots__ = ("parent", "find_calls")

    def __init__(self) -> None:
        self.parent: dict[Hashable, Hashable] = {}
        self.find_calls = 0

    def find(self, node: Hashable, compress: bool = True) -> Hashable:
        self.find_calls += 1
        parent = self.parent
        root = parent.get(node)
        if root is None:
            return node
        path = []
        while True:
            nxt = parent.get(root)
            if nxt is None:
                break
            path.append(root)
            root = nxt
        if compress:
            for step in path:
                parent[step] = root
            parent[node] = root
        return root

    def union(self, winner: Hashable, loser: Hashable) -> None:
        """Link root ``loser`` under root ``winner``."""
        self.parent[loser] = winner

    def undo_union(self, loser: Hashable) -> None:
        self.parent.pop(loser, None)

    def members(self, root: Hashable) -> list[Hashable]:
        """All merged-away nodes whose current representative is ``root``.

        The scan is over merged nodes only (``parent``'s keys), which
        stays small in practice; the incremental engine calls this on
        the rare demotion path, never per fact.
        """
        return [n for n in self.parent if self.find(n, False) == root]

    def release(self, nodes: Iterable[Hashable]) -> None:
        """Detach ``nodes`` from the forest entirely.

        Used by incremental *demotion*: when a retraction breaks an
        identity cycle, the whole merged class is dissolved and its
        members become their own representatives again before the
        class's constraints are re-asserted.  Callers must release a
        class in full (every member of :meth:`members` plus nothing
        else), since parent pointers never cross class boundaries.
        """
        for node in nodes:
            self.parent.pop(node, None)


def find_identity_cycle(
    pred: dict,
    find: Callable,
    is_identity: Callable,
    src: Hashable,
    dst: Hashable,
    bound: int = DEFAULT_SEARCH_BOUND,
) -> list | None:
    """Reverse-path sample: does ``dst`` reach ``src`` over identity edges?

    Called just after the identity edge ``src → dst`` was inserted; a
    path ``dst ⟵ … ⟵ src`` in ``pred`` (i.e. ``dst → … → src`` forward)
    closes an identity cycle through the new edge.  ``pred`` maps a node
    to a dict keyed by ``(predecessor, annotation)``; predecessors are
    canonicalized through ``find`` on the fly, so stale keys left behind
    by earlier merges cost nothing but a lookup.

    Returns the cycle's nodes (each a current union-find root, all
    distinct) or ``None`` if no cycle was found within ``bound`` node
    visits.
    """
    if src == dst:
        return None
    stack = [src]
    parent_map = {src: None}
    visits = 0
    while stack:
        node = stack.pop()
        visits += 1
        if visits > bound:
            return None
        bucket = pred.get(node)
        if not bucket:
            continue
        for p, ann in bucket:
            if not is_identity(ann):
                continue
            p = find(p)
            if p == node or p in parent_map:
                continue
            if p == dst:
                # Reconstruct dst ⟵ node ⟵ … ⟵ src.
                path = [dst]
                cur = node
                while cur is not None:
                    path.append(cur)
                    cur = parent_map[cur]
                return path
            parent_map[p] = node
            stack.append(p)
    return None
