"""Flat-array solver core for compiled annotation algebras (ISSUE 7).

:class:`FlatSolver` is a drop-in replacement for the object-mode
:class:`repro.core.solver.Solver` restricted to *compiled* algebras
(:class:`~repro.core.annotations.CompiledMonoidAlgebra`,
:class:`~repro.core.annotations.CompiledGenKillAlgebra`), whose
annotations are already small integers.  It pushes the Section 8
specialization one level further: variables and constructed terms are
interned to dense integer ids, the four fact tables are append-only
parallel list-of-int columns indexed by variable id, membership tests
are packed-int set probes (``src_id * ann_span + ann``), and the
worklist is a flat integer array walked by index — the drain loop does
no tuple allocation and no object hashing.

Difference propagation is built in exactly as in the object solver:
each variable keeps a drained-lowers high-water mark, non-lower facts
snapshot it at insertion, and their drains compose only against the
pre-snapshot prefix of the lower column, so every (lower, neighbor)
pair is composed exactly once at the fixpoint.

Semantics are *identical* to the object solver — the test suite and
benchmarks assert canonical-solved-form equality across both cores,
with cycle elimination, mark/rollback, and budget interrupt/resume in
play.  Two deliberate non-goals:

* **No provenance.**  ``record_reasons=True`` is rejected; witness
  extraction and :class:`repro.incremental.DeltaSolver` (which walks
  reasons to retract) stay on the object solver.  ``reason()`` returns
  ``None`` for every fact, which every query degrades gracefully on.
* **Object algebras are rejected** — representative functions and
  substitution environments are not ints; the object solver remains
  the semantic reference for them.

The flat layout is also what makes snapshots cheap: persistence dumps
the raw columns (see ``repro.core.persist``), with no per-fact object
encode on the way out — the ROADMAP's shard-stitching item builds on
this.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.core.annotations import Annotation
from repro.core.budget import Budget
from repro.core.cycles import DEFAULT_SEARCH_BOUND
from repro.core.errors import ConstraintError, Inconsistency, NoSolutionError
from repro.core.queries import Origin
from repro.core.solver import FactKey, SolverStats
from repro.core.terms import (
    Constructed,
    Constructor,
    Projection,
    SetExpression,
    Variable,
    VariableFactory,
)

#: Fact-kind codes in worklist records and journal entries.
_LOWER, _EDGE, _UPPER, _PROJ = 0, 1, 2, 3

#: Worklist record width: [kind, var, a, b, c, d, snap].  Lower facts
#: use (a=src term, b=ann); edges (a=dst, b=ann); uppers (a=sink term,
#: b=ann); projections (a=ctor, b=index, c=target, d=ann).
_W = 7

#: Shared placeholder origin for the flat reachability table: the flat
#: core records no provenance, so every entry's witness trace is empty
#: (``stack_of`` sees ``kind == "direct"`` and ``trace_lower`` finds no
#: reason) — exactly how the object solver behaves with
#: ``record_reasons=False``.
_FLAT_ORIGIN = Origin("direct", ("lower", None, None, None))

#: Column length at which the drain hands a whole lower column to the
#: algebra's vectorized ``then_many`` (numpy backend) instead of
#: composing entry by entry.  Below this the fixed cost of array
#: conversion beats the win.
NUMPY_MIN_COLUMN = 64


def _ann_span(algebra: Any) -> int:
    """Exclusive upper bound of the algebra's packed annotation ints."""
    n_bits = getattr(algebra, "n_bits", None)
    if n_bits is not None:
        return 1 << (2 * n_bits)
    size = getattr(algebra, "size", None)
    if size is not None:
        return size()
    raise TypeError(
        "FlatSolver requires a compiled algebra with int annotations "
        f"(got {type(algebra).__name__}); use the object Solver"
    )


class FlatSolver:
    """Flat-array online solver over a compiled annotation algebra."""

    def __init__(
        self,
        algebra: Any,
        pn_projections: bool = False,
        prune_dead: bool = True,
        record_reasons: bool = False,
        budget: Budget | None = None,
        cycle_elim: bool = True,
        cycle_search_bound: int = DEFAULT_SEARCH_BOUND,
        track_redundant: bool = False,
    ):
        if record_reasons:
            raise TypeError(
                "FlatSolver does not record provenance; use the object "
                "Solver for witness extraction and incremental patching"
            )
        if getattr(algebra, "identity_index", None) is None:
            raise TypeError(
                "FlatSolver requires a compiled algebra with int "
                f"annotations (got {type(algebra).__name__})"
            )
        self.algebra = algebra
        self.budget = budget
        self.prune_dead = prune_dead
        self.pn_projections = pn_projections
        self.record_reasons = False
        self.provenance_complete = False
        self.cycle_elim = cycle_elim
        self.cycle_search_bound = cycle_search_bound
        self.track_redundant = track_redundant
        self._pair_seen: set[tuple] = set()
        self._idk: int = algebra.identity_index
        self._span: int = _ann_span(algebra)
        self._is_live = algebra.is_live
        self._fresh = VariableFactory("tmp")
        self._collapsing = False

        # Interning: dense ids for variables, constructors and terms.
        self._var_ids: dict[Variable, int] = {}
        self._vars: list[Variable] = []
        self._ctor_ids: dict[Constructor, int] = {}
        self._ctors: list[Constructor] = []
        self._term_ids: dict[Constructed, int] = {}
        self._terms: list[Constructed] = []
        self._term_ctor: list[int] = []
        self._term_args: list[tuple[int, ...]] = []
        self._term_key: dict[tuple, int] = {}

        # Per-variable bucket columns, indexed by variable id.  A slot
        # is replaced by ``None`` when cycle elimination rehomes the
        # variable onto its representative (mirroring the object
        # solver's popped tables).  ``_pred`` holds only *identity*
        # predecessor ids — the sole consumer is the bounded cycle
        # search, which only follows identity edges.
        self._low_src: list[list[int] | None] = []
        self._low_ann: list[list[int] | None] = []
        self._low_set: list[set[int] | None] = []
        self._up_snk: list[list[int] | None] = []
        self._up_ann: list[list[int] | None] = []
        self._up_set: list[set[int] | None] = []
        self._succ_dst: list[list[int] | None] = []
        self._succ_ann: list[list[int] | None] = []
        self._succ_set: list[set[int] | None] = []
        self._pred: list[set[int] | None] = []
        self._proj_rows: list[list[tuple[int, int, int, int]] | None] = []
        self._proj_set: list[set[tuple[int, int, int, int]] | None] = []
        #: Identity out-degree, maintained *monotonically* (never
        #: decremented on rollback or rehome — overcounting only costs a
        #: wasted cycle search, undercounting would miss cycles).  An
        #: inserted edge src→dst can only close an identity cycle if an
        #: identity path dst→…→src exists, which needs dst to have at
        #: least one identity out-edge — this guard skips the bounded
        #: DFS for the common acyclic-frontier insert.
        self._id_out: list[int] = []
        #: Difference propagation: drained-lowers high-water mark.
        self._lower_drained: list[int] = []

        #: Variables whose columns are read-only views of a shared-memory
        #: arena (:meth:`attach_columns`).  Reads index the views
        #: directly; the first mutation routes through :meth:`_thaw`,
        #: which copies that one variable's columns into plain lists.
        self._frozen: set[int] = set()
        #: The arena backing the frozen columns, if any — held so the
        #: mapping outlives the views (the segment itself may already be
        #: unlinked).
        self._shm_arena: Any = None

        self._met: set[tuple[int, int, int]] = set()
        self.inconsistencies: list[Inconsistency] = []
        # Flat worklist: _W ints per record, consumed by advancing
        # ``_whead`` (no pops, no tuples); compacted when drained dry.
        self._wq: list[int] = []
        self._whead = 0
        # Int union-find (min-name representative, like the object
        # solver); path compression is suppressed while a journal epoch
        # is open because the undo log cannot unwind it.
        self._ufp: dict[int, int] = {}
        self._find_calls = 0
        self._journal: list[list[tuple]] = []
        self.facts_processed = 0
        self.stats = SolverStats()

    # -- interning -------------------------------------------------------------

    def _intern_var(self, var: Variable) -> int:
        vid = self._var_ids.get(var)
        if vid is not None:
            return vid
        vid = len(self._vars)
        self._var_ids[var] = vid
        self._vars.append(var)
        # Columns are allocated lazily on first insert: most variables
        # never receive every fact kind, and eager allocation is the
        # dominant interning cost.  ``None`` doubles as the "no facts
        # here" marker the drain skips over; whether a variable was
        # *rehomed* (vs never used) is answered by the union-find.
        self._low_src.append(None)
        self._low_ann.append(None)
        self._low_set.append(None)
        self._up_snk.append(None)
        self._up_ann.append(None)
        self._up_set.append(None)
        self._succ_dst.append(None)
        self._succ_ann.append(None)
        self._succ_set.append(None)
        self._pred.append(None)
        self._proj_rows.append(None)
        self._proj_set.append(None)
        self._id_out.append(0)
        self._lower_drained.append(0)
        return vid

    def _intern_ctor(self, ctor: Constructor) -> int:
        cid = self._ctor_ids.get(ctor)
        if cid is None:
            cid = len(self._ctors)
            self._ctor_ids[ctor] = cid
            self._ctors.append(ctor)
        return cid

    def _intern_term(self, term: Constructed) -> int:
        tid = self._term_ids.get(term)
        if tid is not None:
            return tid
        cid = self._intern_ctor(term.constructor)
        args = tuple(self._intern_var(a) for a in term.args)
        tid = len(self._terms)
        self._term_ids[term] = tid
        self._terms.append(term)
        self._term_ctor.append(cid)
        self._term_args.append(args)
        self._term_key.setdefault((cid,) + args, tid)
        return tid

    # -- shared-memory attach ----------------------------------------------------

    def _thaw(self, vid: int) -> None:
        """Materialize one attached variable's columns (copy-on-write).

        Attached columns are read-only int64 views of a shared-memory
        arena and ship without their dedupe membership sets.  Every
        mutation path (the enqueues, cycle collapse, ``has_lower``)
        funnels through here first, so exactly the variables that change
        after attach pay the copy; the rest stay zero-copy views for the
        solver's lifetime.
        """
        self._frozen.discard(vid)
        span = self._span
        srcs = self._low_src[vid]
        if srcs is not None and type(srcs) is not list:
            srcs = list(srcs)
            anns = list(self._low_ann[vid])
            self._low_src[vid] = srcs
            self._low_ann[vid] = anns
            self._low_set[vid] = {
                srcs[i] * span + anns[i] for i in range(len(srcs))
            }
        snks = self._up_snk[vid]
        if snks is not None and type(snks) is not list:
            snks = list(snks)
            anns = list(self._up_ann[vid])
            self._up_snk[vid] = snks
            self._up_ann[vid] = anns
            self._up_set[vid] = {
                snks[i] * span + anns[i] for i in range(len(snks))
            }
        dsts = self._succ_dst[vid]
        if dsts is not None and type(dsts) is not list:
            dsts = list(dsts)
            anns = list(self._succ_ann[vid])
            self._succ_dst[vid] = dsts
            self._succ_ann[vid] = anns
            self._succ_set[vid] = {
                dsts[i] * span + anns[i] for i in range(len(dsts))
            }
        rows = self._proj_rows[vid]
        if rows is not None and self._proj_set[vid] is None:
            self._proj_set[vid] = set(rows)

    def attach_columns(self, arena: Any) -> None:
        """Adopt a solved form published by :mod:`repro.core.shm`.

        The wire format is the flat core's own layout — prefix-offset
        int64 columns plus the variable/term intern tables — so
        attaching is interning (names, constructors, terms are
        object-shaped and must exist as Python objects) plus *slicing*:
        each variable's fact columns become views of the arena, marked
        frozen for copy-on-write.  The membership sets, identity
        predecessor index and cycle-search degree counters are *not*
        reconstructed; they exist to dedupe and to sample cycles during
        online solving, and the canonical solved form is independent of
        both (the full identity-SCC quotient recomputes from the
        columns).  Facts added after attach rebuild them per touched
        variable via :meth:`_thaw`.

        Requires a fresh solver (constructed with the dump's flags) and
        an algebra matching the arena's fingerprint — the shm layer
        checks the latter.
        """
        if self._vars or self._terms or self._wq:
            raise ValueError("attach_columns requires a fresh solver")
        meta = arena.meta
        n_vars = meta["n_vars"]
        n_terms = meta["n_terms"]
        # Wire integer ids are positional: interning variables, then
        # constructors, then terms in wire order reproduces them.
        if n_vars:
            for name in bytes(arena.section("varnames")).decode("utf-8").split(
                "\n"
            ):
                self._intern_var(Variable(name))
        for cdata in meta["ctors"]:
            variance = (
                tuple(cdata["variance"]) if cdata["variance"] is not None else None
            )
            self._intern_ctor(
                Constructor(cdata["name"], cdata["arity"], variance)
            )
        term_ctor = arena.ints("term_ctor")
        term_off = arena.ints("term_off")
        term_args = arena.ints("term_args")
        ctors = self._ctors
        vars_ = self._vars
        for tid in range(n_terms):
            term = Constructed(
                ctors[term_ctor[tid]],
                tuple(
                    vars_[a] for a in term_args[term_off[tid] : term_off[tid + 1]]
                ),
            )
            if self._intern_term(term) != tid:
                raise ValueError(
                    f"column arena term table out of order at id {tid}"
                )
        frozen = self._frozen
        low_off = arena.ints("low_off")
        low_src = arena.ints("low_src")
        low_ann = arena.ints("low_ann")
        up_off = arena.ints("up_off")
        up_snk = arena.ints("up_snk")
        up_ann = arena.ints("up_ann")
        succ_off = arena.ints("succ_off")
        succ_dst = arena.ints("succ_dst")
        succ_ann = arena.ints("succ_ann")
        proj_off = arena.ints("proj_off")
        proj_rows = arena.ints("proj_rows")
        n_proj = 0
        for vid in range(n_vars):
            lo, hi = low_off[vid], low_off[vid + 1]
            if hi > lo:
                self._low_src[vid] = low_src[lo:hi]
                self._low_ann[vid] = low_ann[lo:hi]
                frozen.add(vid)
            lo, hi = up_off[vid], up_off[vid + 1]
            if hi > lo:
                self._up_snk[vid] = up_snk[lo:hi]
                self._up_ann[vid] = up_ann[lo:hi]
                frozen.add(vid)
            lo, hi = succ_off[vid], succ_off[vid + 1]
            if hi > lo:
                self._succ_dst[vid] = succ_dst[lo:hi]
                self._succ_ann[vid] = succ_ann[lo:hi]
                frozen.add(vid)
            lo, hi = proj_off[vid], proj_off[vid + 1]
            if hi > lo:
                # Projection rows are 4-tuples the drain unpacks per
                # element; decoding eagerly is cheaper than a tuple-view
                # shim (projection columns are small next to the fact
                # columns).  The set side still builds lazily in _thaw.
                self._proj_rows[vid] = [
                    (
                        proj_rows[4 * i],
                        proj_rows[4 * i + 1],
                        proj_rows[4 * i + 2],
                        proj_rows[4 * i + 3],
                    )
                    for i in range(lo, hi)
                ]
                n_proj += hi - lo
                frozen.add(vid)
        ufp = arena.ints("ufp")
        for i in range(0, len(ufp), 2):
            self._ufp[ufp[i]] = ufp[i + 1]
        for src_tid, snk_tid, ann in meta.get("met", ()):
            self._met.add((src_tid, snk_tid, ann))
        terms = self._terms
        for src_tid, snk_tid, ann in meta.get("incons", ()):
            self.inconsistencies.append(
                Inconsistency(terms[src_tid], terms[snk_tid], ann)
            )
        stats = self.stats
        stats.lowers_added += len(low_src)
        stats.uppers_added += len(up_snk)
        stats.edges_added += len(succ_dst)
        stats.projections_added += n_proj
        self._shm_arena = arena
        self._settle_loaded()

    # -- public API ------------------------------------------------------------

    def fresh(self, hint: str | None = None) -> Variable:
        return self._fresh.fresh(hint)

    def add(
        self,
        lhs: SetExpression,
        rhs: SetExpression,
        annotation: Annotation | None = None,
        info: Any = None,
    ) -> None:
        ann = self._idk if annotation is None else annotation
        lhs = self._normalize_lower(lhs)
        rhs = self._normalize_upper(rhs)
        self._dispatch(lhs, rhs, ann)
        self._drain()

    def add_many(self, constraints: Iterable[tuple]) -> None:
        idk = self._idk
        dispatch = self._dispatch
        norm_lower = self._normalize_lower
        norm_upper = self._normalize_upper
        for item in constraints:
            lhs, rhs = item[0], item[1]
            annotation = item[2] if len(item) > 2 else None
            dispatch(
                norm_lower(lhs),
                norm_upper(rhs),
                idk if annotation is None else annotation,
            )
        self._drain()

    @property
    def is_consistent(self) -> bool:
        return not self.inconsistencies

    def check(self) -> None:
        if self.inconsistencies:
            raise NoSolutionError(str(self.inconsistencies[0]))

    def variables(self) -> set[Variable]:
        keys: set[Variable] = set()
        vars_ = self._vars
        for vid in range(len(vars_)):
            for cols in (
                self._low_src[vid],
                self._up_snk[vid],
                self._succ_dst[vid],
                self._proj_rows[vid],
            ):
                if cols:
                    keys.add(vars_[vid])
                    break
            else:
                pred = self._pred[vid]
                if pred:
                    keys.add(vars_[vid])
        # Both sides of every merge (mirrors the object solver).
        for vid, par in self._ufp.items():
            keys.add(vars_[vid])
            keys.add(vars_[par])
        return keys

    def find(self, var: Variable) -> Variable:
        vid = self._var_ids.get(var)
        if vid is None:
            return var
        if not self._ufp:
            return var
        return self._vars[self._find(vid)]

    def _find(self, vid: int) -> int:
        self._find_calls += 1
        parent = self._ufp
        root = parent.get(vid)
        if root is None:
            return vid
        path = []
        while True:
            nxt = parent.get(root)
            if nxt is None:
                break
            path.append(root)
            root = nxt
        if not self._journal:
            for step in path:
                parent[step] = root
            parent[vid] = root
        return root

    def lower_bounds(
        self, var: Variable
    ) -> Iterator[tuple[Constructed, Annotation]]:
        vid = self._var_ids.get(var)
        if vid is None:
            return
        vid = self._find(vid) if self._ufp else vid
        srcs = self._low_src[vid]
        if not srcs:
            return
        anns = self._low_ann[vid]
        terms = self._terms
        for i in range(len(srcs)):
            yield terms[srcs[i]], anns[i]

    def upper_bounds(
        self, var: Variable
    ) -> Iterator[tuple[Constructed, Annotation]]:
        vid = self._var_ids.get(var)
        if vid is None:
            return
        vid = self._find(vid) if self._ufp else vid
        snks = self._up_snk[vid]
        if not snks:
            return
        anns = self._up_ann[vid]
        terms = self._terms
        for i in range(len(snks)):
            yield terms[snks[i]], anns[i]

    def edges_from(self, var: Variable) -> Iterator[tuple[Variable, Annotation]]:
        vid = self._var_ids.get(var)
        if vid is None:
            return
        vid = self._find(vid) if self._ufp else vid
        dsts = self._succ_dst[vid]
        if not dsts:
            return
        anns = self._succ_ann[vid]
        vars_ = self._vars
        for i in range(len(dsts)):
            yield vars_[dsts[i]], anns[i]

    def projection_sinks(
        self, var: Variable
    ) -> Iterator[tuple[Any, int, Variable, Annotation]]:
        vid = self._var_ids.get(var)
        if vid is None:
            return
        vid = self._find(vid) if self._ufp else vid
        rows = self._proj_rows[vid]
        if not rows:
            return
        ctors = self._ctors
        vars_ = self._vars
        for cid, index, target, ann in rows:
            yield ctors[cid], index, vars_[target], ann

    def has_lower(
        self, var: Variable, source: Constructed, annotation: Annotation
    ) -> bool:
        vid = self._var_ids.get(var)
        if vid is None:
            return False
        vid = self._find(vid) if self._ufp else vid
        if self._frozen and vid in self._frozen:
            # The membership set is not shipped over the wire; build it.
            self._thaw(vid)
        bucket = self._low_set[vid]
        if not bucket:
            return False
        tid = self._term_ids.get(source)
        if tid is not None and tid * self._span + annotation in bucket:
            return True
        if self._ufp and source.args:
            ctid = (
                self._canonical_tid(tid, self._uf_roots())
                if tid is not None
                else None
            )
            if ctid is None:
                cid = self._ctor_ids.get(source.constructor)
                if cid is None:
                    return False
                args = []
                for a in source.args:
                    avid = self._var_ids.get(a)
                    if avid is None:
                        return False
                    args.append(self._find(avid))
                ctid = self._term_key.get((cid,) + tuple(args))
                if ctid is None:
                    return False
            return ctid * self._span + annotation in bucket
        return False

    def reason(self, fact: FactKey) -> None:
        return None

    # -- backtracking ----------------------------------------------------------

    def mark(self) -> int:
        self._journal.append([])
        self.stats.marks += 1
        return len(self._journal)

    def rollback(self) -> None:
        if not self._journal:
            raise RuntimeError("rollback() without a matching mark()")
        self.stats.rollbacks += 1
        epoch = self._journal.pop()
        span = self._span
        # Pass 1 (reverse order): undo the special records — demerges
        # first restore detached loser columns, then union links unwind
        # — and count fact insertions per (kind, variable).
        counts: dict[tuple[int, int], int] = {}
        for record in reversed(epoch):
            tag = record[0]
            if type(tag) is int:
                key = (tag, record[1])
                counts[key] = counts.get(key, 0) + 1
            elif tag == "met":
                self._met.discard(record[1])
            elif tag == "inc":
                if self.inconsistencies:
                    self.inconsistencies.pop()
            elif tag == "uf":
                self._ufp.pop(record[1], None)
            elif tag == "predfold":
                _t, winner, added = record
                bucket = self._pred[winner]
                for key in added:
                    bucket.discard(key)
            elif tag == "demerge":
                (
                    _t,
                    vid,
                    low_src,
                    low_ann,
                    low_set,
                    up_snk,
                    up_ann,
                    up_set,
                    succ_dst,
                    succ_ann,
                    succ_set,
                    pred,
                    proj_rows,
                    proj_set,
                    drained,
                ) = record
                self._low_src[vid] = low_src
                self._low_ann[vid] = low_ann
                self._low_set[vid] = low_set
                self._up_snk[vid] = up_snk
                self._up_ann[vid] = up_ann
                self._up_set[vid] = up_set
                self._succ_dst[vid] = succ_dst
                self._succ_ann[vid] = succ_ann
                self._succ_set[vid] = succ_set
                self._pred[vid] = pred
                self._proj_rows[vid] = proj_rows
                self._proj_set[vid] = proj_set
                self._lower_drained[vid] = drained
        # Pass 2: truncate the counted insertions.  Journal records for
        # one (kind, variable) always describe the *tail* of that
        # variable's column (columns are append-only), so popping the
        # last k entries — after pass 1 restored any detached columns —
        # removes exactly the epoch's facts.
        for (kind, vid), k in counts.items():
            if kind == _LOWER:
                srcs = self._low_src[vid]
                anns = self._low_ann[vid]
                bucket = self._low_set[vid]
                for _ in range(k):
                    bucket.discard(srcs.pop() * span + anns.pop())
                if self._lower_drained[vid] > len(srcs):
                    self._lower_drained[vid] = len(srcs)
            elif kind == _EDGE:
                dsts = self._succ_dst[vid]
                anns = self._succ_ann[vid]
                bucket = self._succ_set[vid]
                pred = self._pred
                idk = self._idk
                for _ in range(k):
                    dst = dsts.pop()
                    ann = anns.pop()
                    bucket.discard(dst * span + ann)
                    if ann == idk:
                        pbucket = pred[dst]
                        if pbucket is not None:
                            pbucket.discard(vid)
            elif kind == _UPPER:
                snks = self._up_snk[vid]
                anns = self._up_ann[vid]
                bucket = self._up_set[vid]
                for _ in range(k):
                    bucket.discard(snks.pop() * span + anns.pop())
            else:
                rows = self._proj_rows[vid]
                bucket = self._proj_set[vid]
                for _ in range(k):
                    bucket.discard(rows.pop())

    def _record(self, entry: tuple) -> None:
        if self._journal:
            self._journal[-1].append(entry)

    # -- worklist / solving ----------------------------------------------------

    def pending_count(self) -> int:
        return (len(self._wq) - self._whead) // _W

    def resume(self, budget: Budget | None = None) -> None:
        if budget is not None:
            self.budget = budget
        self._drain()

    def fact_count(self) -> int:
        if self.cycle_elim:
            return self._canonical_count()
        total = 0
        for vid in range(len(self._vars)):
            srcs = self._low_src[vid]
            if srcs:
                total += len(srcs)
            snks = self._up_snk[vid]
            if snks:
                total += len(snks)
            dsts = self._succ_dst[vid]
            if dsts:
                total += len(dsts)
            rows = self._proj_rows[vid]
            if rows:
                total += len(rows)
        return total

    # -- normalization / dispatch ----------------------------------------------

    def _normalize_lower(self, expr: SetExpression) -> SetExpression:
        if isinstance(expr, (Variable, Projection)):
            return expr
        if isinstance(expr, Constructed):
            args = []
            for arg in expr.args:
                if isinstance(arg, Variable):
                    args.append(arg)
                else:
                    var = self.fresh("arg")
                    inner = self._normalize_lower(arg)
                    self._dispatch(inner, var, self._idk)
                    args.append(var)
            return Constructed(expr.constructor, tuple(args))
        raise ConstraintError(f"unsupported left-hand side: {expr!r}")

    def _normalize_upper(self, expr: SetExpression) -> SetExpression:
        if isinstance(expr, Variable):
            return expr
        if isinstance(expr, Projection):
            raise ConstraintError("projections may not appear on the right-hand side")
        if isinstance(expr, Constructed):
            args = []
            for arg in expr.args:
                if isinstance(arg, Variable):
                    args.append(arg)
                else:
                    var = self.fresh("arg")
                    inner = self._normalize_upper(arg)
                    self._dispatch(var, inner, self._idk)
                    args.append(var)
            return Constructed(expr.constructor, tuple(args))
        raise ConstraintError(f"unsupported right-hand side: {expr!r}")

    def _dispatch(
        self, lhs: SetExpression, rhs: SetExpression, ann: Annotation
    ) -> None:
        if isinstance(lhs, Variable) and isinstance(rhs, Variable):
            self._enqueue_edge(self._intern_var(lhs), self._intern_var(rhs), ann)
        elif isinstance(lhs, Constructed) and isinstance(rhs, Variable):
            self._enqueue_lower(self._intern_var(rhs), self._intern_term(lhs), ann)
        elif isinstance(lhs, Variable) and isinstance(rhs, Constructed):
            self._enqueue_upper(self._intern_var(lhs), self._intern_term(rhs), ann)
        elif isinstance(lhs, Constructed) and isinstance(rhs, Constructed):
            self._meet(self._intern_term(lhs), self._intern_term(rhs), ann)
        elif isinstance(lhs, Projection):
            if isinstance(rhs, Constructed):
                bridge = self.fresh("proj")
                self._enqueue_proj(
                    self._intern_var(lhs.operand),
                    self._intern_ctor(lhs.constructor),
                    lhs.index,
                    self._intern_var(bridge),
                    ann,
                )
                self._enqueue_upper(
                    self._intern_var(bridge), self._intern_term(rhs), self._idk
                )
            else:
                self._enqueue_proj(
                    self._intern_var(lhs.operand),
                    self._intern_ctor(lhs.constructor),
                    lhs.index,
                    self._intern_var(rhs),
                    ann,
                )
        else:
            raise ConstraintError(f"unsupported constraint {lhs!r} ⊆ {rhs!r}")

    # -- fact insertion --------------------------------------------------------

    def _enqueue_lower(self, var: int, src: int, ann: int) -> None:
        if self.prune_dead and not self._is_live(ann):
            return
        ufp = self._ufp
        if ufp and var in ufp:
            var = self._find(var)
        if self._frozen and var in self._frozen:
            self._thaw(var)
        bucket = self._low_set[var]
        key = src * self._span + ann
        if bucket is None:
            bucket = self._low_set[var] = set()
            self._low_src[var] = []
            self._low_ann[var] = []
        elif key in bucket:
            self.stats.facts_deduped += 1
            return
        bucket.add(key)
        self._low_src[var].append(src)
        self._low_ann[var].append(ann)
        if self._journal:
            self._journal[-1].append((_LOWER, var))
        self.stats.lowers_added += 1
        self._wq.extend((_LOWER, var, src, ann, 0, 0, 0))

    def _enqueue_edge(self, src: int, dst: int, ann: int) -> None:
        if self.prune_dead and not self._is_live(ann):
            return
        ufp = self._ufp
        if ufp:
            if src in ufp:
                src = self._find(src)
            if dst in ufp:
                dst = self._find(dst)
        if src == dst and ann == self._idk:
            return
        if self._frozen and src in self._frozen:
            self._thaw(src)
        bucket = self._succ_set[src]
        key = dst * self._span + ann
        if bucket is None:
            bucket = self._succ_set[src] = set()
            self._succ_dst[src] = []
            self._succ_ann[src] = []
        elif key in bucket:
            self.stats.facts_deduped += 1
            return
        bucket.add(key)
        self._succ_dst[src].append(dst)
        self._succ_ann[src].append(ann)
        identity = ann == self._idk
        if identity:
            pbucket = self._pred[dst]
            if pbucket is None:
                pbucket = self._pred[dst] = set()
            pbucket.add(src)
            self._id_out[src] += 1
        if self._journal:
            self._journal[-1].append((_EDGE, src))
        self.stats.edges_added += 1
        self._wq.extend(
            (_EDGE, src, dst, ann, 0, 0, self._lower_drained[src])
        )
        if (
            identity
            and self.cycle_elim
            and not self._collapsing
            and self._id_out[dst]
        ):
            cycle = self._find_identity_cycle(src, dst)
            if cycle is not None:
                self._collapse(cycle)

    def _enqueue_upper(self, var: int, snk: int, ann: int) -> None:
        if self.prune_dead and not self._is_live(ann):
            return
        ufp = self._ufp
        if ufp and var in ufp:
            var = self._find(var)
        if self._frozen and var in self._frozen:
            self._thaw(var)
        bucket = self._up_set[var]
        key = snk * self._span + ann
        if bucket is None:
            bucket = self._up_set[var] = set()
            self._up_snk[var] = []
            self._up_ann[var] = []
        elif key in bucket:
            self.stats.facts_deduped += 1
            return
        bucket.add(key)
        self._up_snk[var].append(snk)
        self._up_ann[var].append(ann)
        if self._journal:
            self._journal[-1].append((_UPPER, var))
        self.stats.uppers_added += 1
        self._wq.extend(
            (_UPPER, var, snk, ann, 0, 0, self._lower_drained[var])
        )

    def _enqueue_proj(
        self, var: int, ctor: int, index: int, target: int, ann: int
    ) -> None:
        if self.prune_dead and not self._is_live(ann):
            return
        ufp = self._ufp
        if ufp:
            if var in ufp:
                var = self._find(var)
            if target in ufp:
                target = self._find(target)
        if self._frozen and var in self._frozen:
            self._thaw(var)
        bucket = self._proj_set[var]
        row = (ctor, index, target, ann)
        if bucket is None:
            bucket = self._proj_set[var] = set()
            self._proj_rows[var] = []
        elif row in bucket:
            self.stats.facts_deduped += 1
            return
        bucket.add(row)
        self._proj_rows[var].append(row)
        if self._journal:
            self._journal[-1].append((_PROJ, var))
        self.stats.projections_added += 1
        self._wq.extend(
            (_PROJ, var, ctor, index, target, ann, self._lower_drained[var])
        )

    def _meet(self, src: int, snk: int, ann: int) -> None:
        key = (src, snk, ann)
        if key in self._met:
            return
        self._met.add(key)
        self._record(("met", key))
        src_cid = self._term_ctor[src]
        snk_cid = self._term_ctor[snk]
        if src_cid != snk_cid:
            self.inconsistencies.append(
                Inconsistency(self._terms[src], self._terms[snk], ann)
            )
            self._record(("inc",))
            return
        ctor = self._ctors[src_cid]
        src_args = self._term_args[src]
        snk_args = self._term_args[snk]
        for index in range(len(src_args)):
            if ctor.covariant(index + 1):
                self._enqueue_edge(src_args[index], snk_args[index], ann)
            else:
                if ann != self._idk:
                    raise ConstraintError(
                        f"contravariant argument {index + 1} of {ctor.name!r} "
                        "met under a non-identity annotation"
                    )
                self._enqueue_edge(snk_args[index], src_args[index], ann)

    # -- cycle elimination -----------------------------------------------------

    def _find_identity_cycle(self, src: int, dst: int) -> list[int] | None:
        """Bounded reverse DFS over identity predecessor edges (ints).

        The union-find walk is inlined (no path compression): this runs
        on every identity-edge insert and is the hottest non-drain loop.
        """
        if src == dst:
            return None
        parent = self._ufp
        pred = self._pred
        stack = [src]
        parent_map: dict[int, int] = {src: -1}
        visits = 0
        bound = self.cycle_search_bound
        while stack:
            node = stack.pop()
            visits += 1
            if visits > bound:
                return None
            bucket = pred[node]
            if not bucket:
                continue
            for p in bucket:
                root = parent.get(p)
                if root is not None:
                    while True:
                        nxt = parent.get(root)
                        if nxt is None:
                            break
                        root = nxt
                    p = root
                if p == node or p in parent_map:
                    continue
                if p == dst:
                    path = [dst]
                    cur = node
                    while cur != -1:
                        path.append(cur)
                        cur = parent_map[cur]
                    return path
                parent_map[p] = node
                stack.append(p)
        return None

    def _collapse(self, cycle: list[int]) -> None:
        vars_ = self._vars
        if self._frozen:
            # Rehoming detaches loser columns into the undo journal and
            # appends into the winner's; both sides must own their lists
            # before that (arena views are read-only).
            for vid in cycle:
                if vid in self._frozen:
                    self._thaw(vid)
        winner = min(cycle, key=lambda vid: vars_[vid].name)
        losers = [vid for vid in cycle if vid != winner]
        stats = self.stats
        stats.cycles_collapsed += 1
        stats.vars_merged += len(losers)
        self._collapsing = True
        try:
            for loser in losers:
                self._ufp[loser] = winner
                self._record(("uf", loser))
            for loser in losers:
                self._rehome(loser, winner)
        finally:
            self._collapsing = False

    def _rehome(self, loser: int, winner: int) -> None:
        low_src = self._low_src[loser]
        low_ann = self._low_ann[loser]
        low_set = self._low_set[loser]
        up_snk = self._up_snk[loser]
        up_ann = self._up_ann[loser]
        up_set = self._up_set[loser]
        succ_dst = self._succ_dst[loser]
        succ_ann = self._succ_ann[loser]
        succ_set = self._succ_set[loser]
        pred = self._pred[loser]
        proj_rows = self._proj_rows[loser]
        proj_set = self._proj_set[loser]
        drained = self._lower_drained[loser]
        self._low_src[loser] = None
        self._low_ann[loser] = None
        self._low_set[loser] = None
        self._up_snk[loser] = None
        self._up_ann[loser] = None
        self._up_set[loser] = None
        self._succ_dst[loser] = None
        self._succ_ann[loser] = None
        self._succ_set[loser] = None
        self._pred[loser] = None
        self._proj_rows[loser] = None
        self._proj_set[loser] = None
        self._lower_drained[loser] = 0
        # Fold the loser's predecessor index into the winner's so future
        # reverse-path samples still see the incoming identity edges.
        added: list[int] = []
        if pred:
            wbucket = self._pred[winner]
            if wbucket is None:
                wbucket = self._pred[winner] = set()
            find = self._find
            for raw in pred:
                p = find(raw)
                if p == winner:
                    continue
                if p not in wbucket:
                    wbucket.add(p)
                    added.append(p)
        self._record(("predfold", winner, tuple(added)))
        self._record(
            (
                "demerge",
                loser,
                low_src,
                low_ann,
                low_set,
                up_snk,
                up_ann,
                up_set,
                succ_dst,
                succ_ann,
                succ_set,
                pred,
                proj_rows,
                proj_set,
                drained,
            )
        )
        # Re-enqueue the loser's facts; the enqueue canonicalizes loser
        # ids to the winner, dedups against the winner's entries, and
        # restores the worklist pairing invariant (re-enqueued lowers
        # snapshot the winner's drained counter).
        if low_src:
            for i in range(len(low_src)):
                self._enqueue_lower(loser, low_src[i], low_ann[i])
        if up_snk:
            for i in range(len(up_snk)):
                self._enqueue_upper(loser, up_snk[i], up_ann[i])
        if succ_dst:
            for i in range(len(succ_dst)):
                self._enqueue_edge(loser, succ_dst[i], succ_ann[i])
        if proj_rows:
            for ctor, index, target, ann in proj_rows:
                self._enqueue_proj(loser, ctor, index, target, ann)

    # -- the drain -------------------------------------------------------------

    def _drain(self) -> None:
        algebra = self.algebra
        then = algebra.then
        # Compiled monoids expose a dense composition table: index it
        # inline rather than paying a method call per composition.
        mono = getattr(algebra, "_table", None)
        then_many = getattr(algebra, "then_many", None)
        stats = self.stats
        idk = self._idk
        low_src = self._low_src
        low_ann = self._low_ann
        succ_dst = self._succ_dst
        succ_ann = self._succ_ann
        up_snk = self._up_snk
        up_ann = self._up_ann
        proj_rows = self._proj_rows
        lower_drained = self._lower_drained
        term_args = self._term_args
        term_ctor = self._term_ctor
        enqueue_lower = self._enqueue_lower
        enqueue_edge = self._enqueue_edge
        meet = self._meet
        track = self.track_redundant
        pair_seen = self._pair_seen
        pn = self.pn_projections
        wq = self._wq
        head = self._whead
        budget = self.budget
        check_every = countdown = 0
        if budget is not None and head < len(wq):
            check_every = budget.check_interval
            countdown = check_every
            budget.charge(0, self)
        try:
            while head < len(wq):
                if budget is not None:
                    countdown -= 1
                    if countdown <= 0:
                        countdown = check_every
                        budget.charge(check_every, self)
                kind = wq[head]
                var = wq[head + 1]
                a = wq[head + 2]
                b = wq[head + 3]
                head += _W
                self.facts_processed += 1
                if kind == _LOWER:
                    # a = source term, b = annotation.  Count this lower
                    # as drained *before* processing (facts enqueued
                    # mid-processing must snapshot past it).
                    lower_drained[var] += 1
                    f = b
                    dsts = succ_dst[var]
                    if dsts:
                        anns = succ_ann[var]
                        i, n = 0, len(dsts)
                        while i < n:
                            g = anns[i]
                            dst = dsts[i]
                            i += 1
                            stats.compositions += 1
                            if track:
                                pk = (0, var, a, f, dst, g)
                                if pk in pair_seen:
                                    stats.redundant_compositions += 1
                                else:
                                    pair_seen.add(pk)
                            if g == idk:
                                h = f
                            elif f == idk:
                                h = g
                            elif mono is not None:
                                h = mono[f][g]
                            else:
                                h = then(f, g)
                            enqueue_lower(dst, a, h)
                    snks = up_snk[var]
                    if snks:
                        anns = up_ann[var]
                        i, n = 0, len(snks)
                        while i < n:
                            g = anns[i]
                            snk = snks[i]
                            i += 1
                            stats.compositions += 1
                            if track:
                                pk = (1, var, a, f, snk, g)
                                if pk in pair_seen:
                                    stats.redundant_compositions += 1
                                else:
                                    pair_seen.add(pk)
                            if g == idk:
                                h = f
                            elif f == idk:
                                h = g
                            elif mono is not None:
                                h = mono[f][g]
                            else:
                                h = then(f, g)
                            meet(a, snk, h)
                    rows = proj_rows[var]
                    if rows:
                        args = term_args[a]
                        if args:
                            src_cid = term_ctor[a]
                            i, n = 0, len(rows)
                            while i < n:
                                ctor, index, target, g = rows[i]
                                i += 1
                                if ctor == src_cid:
                                    stats.compositions += 1
                                    if track:
                                        pk = (2, var, a, f, ctor, index, target, g)
                                        if pk in pair_seen:
                                            stats.redundant_compositions += 1
                                        else:
                                            pair_seen.add(pk)
                                    if g == idk:
                                        h = f
                                    elif f == idk:
                                        h = g
                                    elif mono is not None:
                                        h = mono[f][g]
                                    else:
                                        h = then(f, g)
                                    enqueue_edge(args[index - 1], target, h)
                        elif pn:
                            i, n = 0, len(rows)
                            while i < n:
                                ctor, index, target, g = rows[i]
                                i += 1
                                stats.compositions += 1
                                if track:
                                    pk = (3, var, a, f, ctor, index, target, g)
                                    if pk in pair_seen:
                                        stats.redundant_compositions += 1
                                    else:
                                        pair_seen.add(pk)
                                if g == idk:
                                    h = f
                                elif f == idk:
                                    h = g
                                elif mono is not None:
                                    h = mono[f][g]
                                else:
                                    h = then(f, g)
                                enqueue_lower(target, a, h)
                elif kind == _EDGE:
                    # a = destination, b = annotation; snap windows the
                    # lower column (difference propagation).
                    srcs = low_src[var]
                    if srcs:
                        n = len(srcs)
                        snap = wq[head - 1]
                        hi = snap if snap < n else n
                        if hi < n:
                            stats.compositions_saved += n - hi
                        if hi:
                            anns = low_ann[var]
                            g = b
                            if g == idk:
                                i = 0
                                while i < hi:
                                    stats.compositions += 1
                                    if track:
                                        pk = (0, var, srcs[i], anns[i], a, g)
                                        if pk in pair_seen:
                                            stats.redundant_compositions += 1
                                        else:
                                            pair_seen.add(pk)
                                    enqueue_lower(a, srcs[i], anns[i])
                                    i += 1
                            elif (
                                then_many is not None
                                and hi >= NUMPY_MIN_COLUMN
                            ):
                                out = then_many(anns, hi, g)
                                stats.compositions += hi
                                if track:
                                    i = 0
                                    while i < hi:
                                        pk = (0, var, srcs[i], anns[i], a, g)
                                        if pk in pair_seen:
                                            stats.redundant_compositions += 1
                                        else:
                                            pair_seen.add(pk)
                                        i += 1
                                i = 0
                                while i < hi:
                                    enqueue_lower(a, srcs[i], out[i])
                                    i += 1
                            else:
                                i = 0
                                while i < hi:
                                    f = anns[i]
                                    stats.compositions += 1
                                    if track:
                                        pk = (0, var, srcs[i], f, a, g)
                                        if pk in pair_seen:
                                            stats.redundant_compositions += 1
                                        else:
                                            pair_seen.add(pk)
                                    if f == idk:
                                        h = g
                                    elif mono is not None:
                                        h = mono[f][g]
                                    else:
                                        h = then(f, g)
                                    enqueue_lower(a, srcs[i], h)
                                    i += 1
                elif kind == _UPPER:
                    srcs = low_src[var]
                    if srcs:
                        n = len(srcs)
                        snap = wq[head - 1]
                        hi = snap if snap < n else n
                        if hi < n:
                            stats.compositions_saved += n - hi
                        if hi:
                            anns = low_ann[var]
                            g = b
                            i = 0
                            while i < hi:
                                f = anns[i]
                                stats.compositions += 1
                                if track:
                                    pk = (1, var, srcs[i], f, a, g)
                                    if pk in pair_seen:
                                        stats.redundant_compositions += 1
                                    else:
                                        pair_seen.add(pk)
                                if g == idk:
                                    h = f
                                elif f == idk:
                                    h = g
                                elif mono is not None:
                                    h = mono[f][g]
                                else:
                                    h = then(f, g)
                                meet(srcs[i], a, h)
                                i += 1
                else:
                    # a = constructor, b = index; c, d = target, ann.
                    srcs = low_src[var]
                    if srcs:
                        n = len(srcs)
                        snap = wq[head - 1]
                        hi = snap if snap < n else n
                        if hi < n:
                            stats.compositions_saved += n - hi
                        if hi:
                            anns = low_ann[var]
                            target = wq[head - 3]
                            g = wq[head - 2]
                            i = 0
                            while i < hi:
                                src = srcs[i]
                                args = term_args[src]
                                if args and term_ctor[src] == a:
                                    f = anns[i]
                                    stats.compositions += 1
                                    if track:
                                        pk = (2, var, src, f, a, b, target, g)
                                        if pk in pair_seen:
                                            stats.redundant_compositions += 1
                                        else:
                                            pair_seen.add(pk)
                                    if g == idk:
                                        h = f
                                    elif f == idk:
                                        h = g
                                    elif mono is not None:
                                        h = mono[f][g]
                                    else:
                                        h = then(f, g)
                                    enqueue_edge(args[b - 1], target, h)
                                elif pn and not args:
                                    f = anns[i]
                                    stats.compositions += 1
                                    if track:
                                        pk = (3, var, src, f, a, b, target, g)
                                        if pk in pair_seen:
                                            stats.redundant_compositions += 1
                                        else:
                                            pair_seen.add(pk)
                                    if g == idk:
                                        h = f
                                    elif f == idk:
                                        h = g
                                    elif mono is not None:
                                        h = mono[f][g]
                                    else:
                                        h = then(f, g)
                                    enqueue_lower(target, src, h)
                                i += 1
        finally:
            # Persist the cursor so an interrupt (budget) leaves the
            # worklist holding exactly the unresolved records — the
            # invariant checkpoint/resume relies on.
            if head >= len(wq):
                del wq[:]
                self._whead = 0
            else:
                self._whead = head
            stats.find_calls = self._find_calls
        if budget is not None:
            budget.settle(check_every - countdown)

    # -- canonical solved form -------------------------------------------------

    def _uf_roots(self) -> list[int]:
        """Union-find roots as a dense array — one walk per merged var.

        The canonicalization passes resolve every column entry through
        the union-find; a precomputed array turns each of those lookups
        into a list index.
        """
        roots = list(range(len(self._vars)))
        ufp = self._ufp
        if ufp:
            get = ufp.get
            for vid in ufp:
                r = get(vid)
                while True:
                    nxt = get(r)
                    if nxt is None:
                        break
                    r = nxt
                roots[vid] = r
        return roots

    def _canon_array(self) -> list[int]:
        """Fully-resolved representative per variable id: union-find
        roots composed with the full identity-SCC quotient."""
        roots = self._uf_roots()
        rep = self._collapse_map_int(roots)
        if rep:
            return [rep.get(r, r) for r in roots]
        return roots

    def _collapse_map_int(self, roots: list[int]) -> dict[int, int]:
        """Full identity-SCC quotient over current union-find roots."""
        idk = self._idk
        succ: dict[int, list[int]] = {}
        pred: dict[int, list[int]] = {}
        nodes: set[int] = set()
        for vid in range(len(self._vars)):
            dsts = self._succ_dst[vid]
            if not dsts:
                continue
            anns = self._succ_ann[vid]
            s = roots[vid]
            for j in range(len(dsts)):
                if anns[j] != idk:
                    continue
                d = roots[dsts[j]]
                if d == s:
                    continue
                succ.setdefault(s, []).append(d)
                pred.setdefault(d, []).append(s)
                nodes.add(s)
                nodes.add(d)
        rep: dict[int, int] = {}
        if nodes:
            order: list[int] = []
            visited: set[int] = set()
            for start in nodes:
                if start in visited:
                    continue
                stack: list[tuple[int, int]] = [(start, 0)]
                visited.add(start)
                while stack:
                    node, index = stack.pop()
                    successors = succ.get(node, [])
                    if index < len(successors):
                        stack.append((node, index + 1))
                        nxt = successors[index]
                        if nxt not in visited:
                            visited.add(nxt)
                            stack.append((nxt, 0))
                    else:
                        order.append(node)
            assigned: set[int] = set()
            vars_ = self._vars
            for start in reversed(order):
                if start in assigned:
                    continue
                component = [start]
                assigned.add(start)
                cursor = 0
                while cursor < len(component):
                    node = component[cursor]
                    cursor += 1
                    for prev in pred.get(node, []):
                        if prev not in assigned:
                            assigned.add(prev)
                            component.append(prev)
                if len(component) > 1:
                    root = min(component, key=lambda vid: vars_[vid].name)
                    for node in component:
                        if node != root:
                            rep[node] = root
        return rep

    def collapse_map(self) -> dict[Variable, Variable]:
        canon = self._canon_array()
        vars_ = self._vars
        out: dict[Variable, Variable] = {}
        for var in self.variables():
            out[var] = vars_[canon[self._var_ids[var]]]
        return out

    def _canonical_tid(self, tid: int, canon: list[int]) -> int:
        """Term id with argument variables resolved through ``canon``."""
        args = self._term_args[tid]
        if not args:
            return tid
        mapped = tuple(canon[a] for a in args)
        if mapped == args:
            return tid
        key = (self._term_ctor[tid],) + mapped
        ctid = self._term_key.get(key)
        if ctid is None:
            term = Constructed(
                self._ctors[self._term_ctor[tid]],
                tuple(self._vars[a] for a in mapped),
            )
            ctid = self._intern_term(term)
        return ctid

    def _group_members(self, canon: list[int]) -> dict[int, list[int]]:
        """Quotient-class members, in first-touched order per class."""
        members: dict[int, list[int]] = {}
        ufp = self._ufp
        for vid in range(len(self._vars)):
            if vid in ufp:
                # Rehomed loser: facts live at the representative.
                members.setdefault(canon[vid], []).append(vid)
                continue
            if (
                self._low_src[vid]
                or self._up_snk[vid]
                or self._succ_dst[vid]
                or self._proj_rows[vid]
            ):
                members.setdefault(canon[vid], []).append(vid)
        return members

    def _canonical_count(self) -> int:
        """`len(list(canonical_facts()))` without building object keys."""
        canon = self._canon_array()
        span = self._span
        idk = self._idk
        total = 0
        members = self._group_members(canon)
        tid_memo: dict[int, int] = {}
        for rep, group in members.items():
            emitted: set = set()
            for vid in group:
                srcs = self._low_src[vid]
                if srcs:
                    anns = self._low_ann[vid]
                    for i in range(len(srcs)):
                        tid = srcs[i]
                        ctid = tid_memo.get(tid)
                        if ctid is None:
                            ctid = self._canonical_tid(tid, canon)
                            tid_memo[tid] = ctid
                        emitted.add(ctid * span + anns[i])
            for vid in group:
                snks = self._up_snk[vid]
                if snks:
                    anns = self._up_ann[vid]
                    for i in range(len(snks)):
                        tid = snks[i]
                        ctid = tid_memo.get(tid)
                        if ctid is None:
                            ctid = self._canonical_tid(tid, canon)
                            tid_memo[tid] = ctid
                        emitted.add(("u", ctid * span + anns[i]))
            for vid in group:
                dsts = self._succ_dst[vid]
                if dsts:
                    anns = self._succ_ann[vid]
                    for i in range(len(dsts)):
                        ann = anns[i]
                        d = canon[dsts[i]]
                        if d == rep and ann == idk:
                            continue
                        emitted.add(("e", d * span + ann))
            for vid in group:
                rows = self._proj_rows[vid]
                if rows:
                    for ctor, index, target, ann in rows:
                        emitted.add(
                            ("p", ctor, index, canon[target], ann)
                        )
            total += len(emitted)
        return total

    def canonical_facts(self) -> Iterator[FactKey]:
        """The solved form modulo the full identity-cycle quotient.

        Decodes to the same object-level :data:`FactKey` stream as
        :meth:`repro.core.solver.Solver.canonical_facts`, which is what
        the cross-core equivalence suite compares.
        """
        canon = self._canon_array()
        idk = self._idk
        vars_ = self._vars
        terms = self._terms
        ctors = self._ctors

        def cv(vid: int) -> Variable:
            return vars_[canon[vid]]

        tid_memo: dict[int, Constructed] = {}

        def ct(tid: int) -> Constructed:
            term = tid_memo.get(tid)
            if term is None:
                args = self._term_args[tid]
                if not args:
                    term = terms[tid]
                else:
                    mapped = tuple(cv(a) for a in args)
                    original = terms[tid]
                    if mapped == original.args:
                        term = original
                    else:
                        term = Constructed(original.constructor, mapped)
                tid_memo[tid] = term
            return term

        members = self._group_members(canon)
        by_rep: dict[Variable, list[int]] = {}
        for rep, group in members.items():
            by_rep[vars_[rep]] = group
        for rep_var in sorted(by_rep, key=lambda v: v.name):
            group = sorted(by_rep[rep_var], key=lambda vid: vars_[vid].name)
            emitted: set[FactKey] = set()
            for vid in group:
                srcs = self._low_src[vid]
                if srcs:
                    anns = self._low_ann[vid]
                    for i in range(len(srcs)):
                        key = ("lower", rep_var, ct(srcs[i]), anns[i])
                        if key not in emitted:
                            emitted.add(key)
                            yield key
            for vid in group:
                snks = self._up_snk[vid]
                if snks:
                    anns = self._up_ann[vid]
                    for i in range(len(snks)):
                        key = ("upper", rep_var, ct(snks[i]), anns[i])
                        if key not in emitted:
                            emitted.add(key)
                            yield key
            for vid in group:
                dsts = self._succ_dst[vid]
                if dsts:
                    anns = self._succ_ann[vid]
                    for i in range(len(dsts)):
                        ann = anns[i]
                        d = cv(dsts[i])
                        if d == rep_var and ann == idk:
                            continue
                        key = ("edge", rep_var, d, ann)
                        if key not in emitted:
                            emitted.add(key)
                            yield key
            for vid in group:
                rows = self._proj_rows[vid]
                if rows:
                    for ctor, index, target, ann in rows:
                        key = (
                            "proj",
                            rep_var,
                            ctors[ctor],
                            index,
                            cv(target),
                            ann,
                        )
                        if key not in emitted:
                            emitted.add(key)
                            yield key

    # -- persistence hooks -----------------------------------------------------

    def _pending_object_facts(self) -> Iterator[tuple[tuple, int]]:
        """Worklist backlog decoded to object fact tuples (persist).

        Yields ``(fact, snap)`` pairs shaped exactly like the object
        solver's ``_work`` entries, so checkpoint dumps of an
        interrupted flat solve serialize through the same encoder.
        """
        wq = self._wq
        vars_ = self._vars
        terms = self._terms
        ctors = self._ctors
        head = self._whead
        while head < len(wq):
            kind = wq[head]
            var = vars_[wq[head + 1]]
            a = wq[head + 2]
            b = wq[head + 3]
            snap = wq[head + 6]
            if kind == _LOWER:
                yield ("lower", var, terms[a], b), snap
            elif kind == _EDGE:
                yield ("edge", var, vars_[a], b), snap
            elif kind == _UPPER:
                yield ("upper", var, terms[a], b), snap
            else:
                c = wq[head + 4]
                d = wq[head + 5]
                yield ("proj", var, ctors[a], b, vars_[c], d), snap
            head += _W

    def _met_object_facts(self) -> Iterator[tuple[Constructed, Constructed, int]]:
        """The met-pair memo decoded to object terms (persist)."""
        terms = self._terms
        for src, snk, ann in self._met:
            yield terms[src], terms[snk], ann

    def _install_fact(self, fact: tuple) -> None:
        """Insert one already-closed object fact without draining.

        The persist loader installs a dumped solved form through this:
        the enqueue path interns, dedupes and maintains the adjacency
        mirrors, and the caller discards the worklist records and marks
        the lower columns drained afterwards (:meth:`_settle_loaded`).
        """
        kind = fact[0]
        if kind == "lower":
            _tag, var, src, ann = fact
            self._enqueue_lower(
                self._intern_var(var), self._intern_term(src), ann
            )
        elif kind == "upper":
            _tag, var, snk, ann = fact
            self._enqueue_upper(
                self._intern_var(var), self._intern_term(snk), ann
            )
        elif kind == "edge":
            _tag, src_var, dst_var, ann = fact
            self._enqueue_edge(
                self._intern_var(src_var), self._intern_var(dst_var), ann
            )
        elif kind == "proj":
            _tag, var, ctor, index, target, ann = fact
            self._enqueue_proj(
                self._intern_var(var),
                self._intern_ctor(ctor),
                index,
                self._intern_var(target),
                ann,
            )
        else:
            raise ValueError(f"unknown fact kind {kind!r}")

    def _settle_loaded(self) -> None:
        """Discard install-time worklist records and mark lowers drained.

        A dumped fixpoint already composed every stored lower against
        its neighbor tables; facts added after the load snapshot against
        these high-water marks (difference propagation across the
        snapshot boundary).
        """
        self._wq.clear()
        self._whead = 0
        low_src = self._low_src
        lower_drained = self._lower_drained
        for vid in range(len(low_src)):
            col = low_src[vid]
            lower_drained[vid] = len(col) if col else 0

    def _enqueue_pending(self, fact: tuple, snap: int) -> None:
        """Re-queue one checkpointed pending fact (already in tables)."""
        kind = fact[0]
        wq = self._wq
        if kind == "lower":
            _tag, var, src, ann = fact
            wq.extend(
                (
                    _LOWER,
                    self._intern_var(var),
                    self._intern_term(src),
                    ann,
                    0,
                    0,
                    0,
                )
            )
        elif kind == "upper":
            _tag, var, snk, ann = fact
            wq.extend(
                (
                    _UPPER,
                    self._intern_var(var),
                    self._intern_term(snk),
                    ann,
                    0,
                    0,
                    snap,
                )
            )
        elif kind == "edge":
            _tag, src_var, dst_var, ann = fact
            wq.extend(
                (
                    _EDGE,
                    self._intern_var(src_var),
                    self._intern_var(dst_var),
                    ann,
                    0,
                    0,
                    snap,
                )
            )
        elif kind == "proj":
            _tag, var, ctor, index, target, ann = fact
            wq.extend(
                (
                    _PROJ,
                    self._intern_var(var),
                    self._intern_ctor(ctor),
                    index,
                    self._intern_var(target),
                    ann,
                    snap,
                )
            )
        else:
            raise ValueError(f"unknown pending fact kind {kind!r}")

    # -- flat reachability -----------------------------------------------------

    def reach_table(
        self, through_constructors: bool = True
    ) -> dict[Variable, dict[tuple[Constructed, Annotation], Origin]]:
        """Constants-with-annotations reaching each representative.

        The int-domain fast path behind
        :class:`repro.core.queries.Reachability`: the delta propagation
        runs entirely over term ids and packed annotation ints, and the
        table is decoded to object keys once at the end.  Origins are a
        shared placeholder (no provenance in the flat core), so
        ``witness`` traces are empty — as with ``record_reasons=False``.
        """
        algebra = self.algebra
        then = algebra.then
        mono = getattr(algebra, "_table", None)
        is_live = algebra.is_live
        idk = self._idk
        span = self._span
        roots = self._uf_roots()
        term_args = self._term_args
        terms = self._terms
        table: dict[int, set[int]] = {}
        wrappers: dict[int, list[tuple[int, int]]] = {}
        work: list[tuple[int, int, int]] = []
        for vid in range(len(self._vars)):
            srcs = self._low_src[vid]
            if srcs is None:
                continue
            if roots[vid] != vid:
                continue
            bucket = table.setdefault(vid, set())
            anns = self._low_ann[vid]
            for i in range(len(srcs)):
                tid = srcs[i]
                args = term_args[tid]
                if not args:
                    key = tid * span + anns[i]
                    if key not in bucket:
                        bucket.add(key)
                        work.append((vid, tid, anns[i]))
                elif through_constructors:
                    packed = vid * span + anns[i]
                    for arg in args:
                        wrappers.setdefault(roots[arg], []).append(
                            (tid, packed)
                        )
        if through_constructors:
            pop = work.pop
            while work:
                arg, const, inner = pop()
                lifted = wrappers.get(arg)
                if not lifted:
                    continue
                for _tid, packed in lifted:
                    outer = packed % span
                    target = packed // span
                    if outer == idk:
                        combined = inner
                    elif inner == idk:
                        combined = outer
                    elif mono is not None:
                        combined = mono[inner][outer]
                    else:
                        combined = then(inner, outer)
                    if not is_live(combined):
                        continue
                    key = const * span + combined
                    bucket = table[target]
                    if key not in bucket:
                        bucket.add(key)
                        work.append((target, const, combined))
        vars_ = self._vars
        out: dict[Variable, dict[tuple[Constructed, Annotation], Origin]] = {}
        for vid, bucket in table.items():
            decoded: dict[tuple[Constructed, Annotation], Origin] = {}
            for key in bucket:
                decoded[(terms[key // span], key % span)] = _FLAT_ORIGIN
            out[vars_[vid]] = decoded
        return out
