"""The bidirectional annotated-constraint solver (Section 3).

The solver maintains the constraint graph in *standard form*:

* ``lower``  — constructed lower bounds ``c(...) ⊆^f X`` per variable,
* ``upper``  — constructed upper bounds ``X ⊆^g c(...)`` per variable,
* ``succ``   — annotated variable-variable edges ``X ⊆^g Y``,
* ``proj``   — projection sinks ``c^{-i}(X) ⊆^g Z`` attached to ``X``,

and closes it under the resolution rules of Section 3.1 with a worklist:

* **transitive closure** — a lower bound reaching ``X`` with annotation
  ``f`` crosses an edge ``X ⊆^g Y`` as ``then(f, g)`` (the paper's
  ``g ∘ f``, a constant-time monoid operation);
* **constructor meet** — when a lower bound ``c^α(X⃗)`` and an upper
  bound ``c^β(Y⃗)`` meet at a variable with combined annotation ``f``,
  component constraints ``X_i ⊆^f Y_i`` are added; mismatched
  constructors are recorded as :class:`~repro.core.errors.Inconsistency`
  (the paper's "no solution");
* **projection** — a lower bound ``c^α(..., X_i, ...)`` meeting a
  projection sink ``c^{-i}(·) ⊆^g Z`` adds the edge ``X_i ⊆ Z`` with the
  composed annotation.

Annotations that are *dead* — provably never part of a word of ``L(M)``
again (``algebra.is_live`` is false) — are dropped at creation, the
pruning Section 3.1 justifies by minimality of ``M``.

Following the paper's implementation (Section 8), constructor-annotation
variables are never materialized during solving; the query engine
(:mod:`repro.core.queries`) reconstructs them on demand.

Solving is *online*: every :meth:`Solver.add` drains the worklist, so
constraints may be intermixed freely with queries — the property the
paper highlights as the advantage of bidirectional solving.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator

from repro.core.annotations import Annotation, UnannotatedAlgebra
from repro.core.budget import Budget
from repro.core.cycles import DEFAULT_SEARCH_BOUND, UnionFind, find_identity_cycle
from repro.core.errors import ConstraintError, Inconsistency, NoSolutionError
from repro.core.terms import (
    Constructed,
    Projection,
    SetExpression,
    Variable,
    VariableFactory,
)

FactKey = tuple


@dataclass
class SolverStats:
    """Lightweight monotone counters maintained by the solver.

    Plain integer increments on the hot path (no locks, no callbacks);
    :mod:`repro.service.metrics` snapshots them for the analysis
    service.  ``rollbacks`` counts :meth:`Solver.rollback` calls — it is
    monotone even though rollback removes facts.
    """

    edges_added: int = 0
    lowers_added: int = 0
    uppers_added: int = 0
    projections_added: int = 0
    compositions: int = 0
    # Difference propagation (ISSUE 7): neighbor-bucket entries the
    # drain *skipped* because they were already paired when this fact's
    # snapshot was taken — the re-compositions the pre-diff-prop solver
    # would have attempted.  ``redundant_compositions`` counts (fact,
    # neighbor) pairs composed more than once; it is only maintained
    # when ``Solver(track_redundant=True)`` and is asserted to be zero
    # at the fixpoint by the benchmarks and tests.
    compositions_saved: int = 0
    redundant_compositions: int = 0
    facts_deduped: int = 0
    marks: int = 0
    rollbacks: int = 0
    cycles_collapsed: int = 0
    vars_merged: int = 0
    find_calls: int = 0
    # Incremental re-solving (repro.incremental): facts removed by
    # DRed over-deletion, facts restored by the re-derive pass, and the
    # cumulative size of the affected cones.  Zero outside patch runs.
    facts_retracted: int = 0
    facts_rederived: int = 0
    cone_size: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "edges_added": self.edges_added,
            "lowers_added": self.lowers_added,
            "uppers_added": self.uppers_added,
            "projections_added": self.projections_added,
            "compositions": self.compositions,
            "compositions_saved": self.compositions_saved,
            "redundant_compositions": self.redundant_compositions,
            "facts_deduped": self.facts_deduped,
            "marks": self.marks,
            "rollbacks": self.rollbacks,
            "cycles_collapsed": self.cycles_collapsed,
            "vars_merged": self.vars_merged,
            "find_calls": self.find_calls,
            "facts_retracted": self.facts_retracted,
            "facts_rederived": self.facts_rederived,
            "cone_size": self.cone_size,
        }


@dataclass(frozen=True)
class Reason:
    """Provenance of a derived fact: the rule and its antecedent facts.

    ``info`` carries application payload for given constraints (the
    model checker stores the program statement an edge came from, which
    witness extraction turns into an error trace).
    """

    rule: str
    antecedents: tuple[FactKey, ...] = ()
    info: Any = None


class Solver:
    """Online bidirectional solver for regularly annotated set constraints."""

    def __init__(
        self,
        algebra: Any | None = None,
        pn_projections: bool = False,
        prune_dead: bool = True,
        record_reasons: bool = True,
        budget: Budget | None = None,
        cycle_elim: bool = True,
        cycle_search_bound: int = DEFAULT_SEARCH_BOUND,
        track_redundant: bool = False,
    ):
        self.algebra = algebra if algebra is not None else UnannotatedAlgebra()
        #: Optional resource governor (see :mod:`repro.core.budget`).
        #: Checked between facts at amortized intervals by every drain;
        #: may be attached or replaced at any point between drains —
        #: warm-started solvers get theirs after loading.
        self.budget = budget
        #: Drop facts whose annotation is necessarily non-accepting (the
        #: Section 3.1 pruning justified by minimality of M).  Disabled
        #: only by the ablation benchmark.
        self.prune_dead = prune_dead
        #: When true, *bare constants* also flow through projections
        #: (``c ⊆ Y`` and ``d^{-i}(Y) ⊆ Z`` give ``c ⊆ Z``).  This is the
        #: "unmatched return" half of PN reachability (Section 6.2): a
        #: value created inside a callee escapes to any caller.  Matched
        #: solving (the default) only extracts properly wrapped terms.
        self.pn_projections = pn_projections
        #: Provenance is only needed by clients that extract witnesses
        #: (the model checker's traces).  Dataflow, flow analysis and the
        #: service's reachability queries never do; with
        #: ``record_reasons=False`` the solver skips the per-fact
        #: :class:`Reason` allocation and the ``_reasons`` dict entirely,
        #: and :meth:`reason` returns ``None`` for every fact.
        self.record_reasons = record_reasons
        #: Whether ``_reasons`` covers every stored fact.  True for a
        #: solver that recorded provenance while solving; cleared by
        #: :func:`repro.core.persist.load_solver` (loaded facts carry no
        #: provenance) so :class:`repro.incremental.DeltaSolver` can
        #: refuse warm-loaded systems with a typed error instead of
        #: silently mis-retracting.
        self.provenance_complete = record_reasons
        #: Online cycle elimination (see :mod:`repro.core.cycles`): merge
        #: variables on a cycle of identity-annotated edges into one
        #: representative.  Exact — such variables have equal solutions —
        #: and on by default; ``cycle_elim=False`` is the escape hatch
        #: (and the baseline the benchmarks measure against).
        self.cycle_elim = cycle_elim
        self.cycle_search_bound = cycle_search_bound
        self._uf = UnionFind()
        self._collapsing = False
        self._identity = self.algebra.identity
        # Compiled algebras expose the identity as a precomputed table
        # index, making the per-edge identity test an int comparison.
        identity_index = getattr(self.algebra, "identity_index", None)
        self._identity_key = (
            identity_index if identity_index is not None else self._identity
        )
        self._is_live = self.algebra.is_live
        self._fresh = VariableFactory("tmp")
        # var -> {(source Constructed, annotation)} and so on; values are
        # insertion-ordered dicts so membership tests are O(1) and
        # iteration is deterministic.  The *_seq lists mirror each bucket
        # in insertion order: the drain loop iterates them by index under
        # a length snapshot, which tolerates appends without the per-fact
        # ``list(...)`` copy the dicts would force.  They only diverge
        # from the dicts during rollback, which rebuilds them.
        self._lower: dict[Variable, dict[tuple[Constructed, Annotation], None]] = {}
        self._upper: dict[Variable, dict[tuple[Constructed, Annotation], None]] = {}
        self._succ: dict[Variable, dict[tuple[Variable, Annotation], None]] = {}
        self._pred: dict[Variable, dict[tuple[Variable, Annotation], None]] = {}
        self._proj: dict[
            Variable, dict[tuple[Any, int, Variable, Annotation], None]
        ] = {}
        self._lower_seq: dict[Variable, list[tuple[Constructed, Annotation]]] = {}
        self._upper_seq: dict[Variable, list[tuple[Constructed, Annotation]]] = {}
        self._succ_seq: dict[Variable, list[tuple[Variable, Annotation]]] = {}
        self._proj_seq: dict[
            Variable, list[tuple[Any, int, Variable, Annotation]]
        ] = {}
        self._met: set[tuple[Constructed, Constructed, Annotation]] = set()
        self._reasons: dict[FactKey, Reason] = {}
        # Difference propagation state: how many entries of a variable's
        # lower-bound sequence have been *drained* (popped and paired
        # against the full neighbor tables).  FIFO draining makes the
        # drained entries a prefix of ``_lower_seq[var]``, so one counter
        # per variable is a complete high-water mark.  Worklist entries
        # are ``(fact, snap)`` pairs: for edge/upper/proj facts ``snap``
        # is the counter value at insertion time, and the drain composes
        # them only against ``lower_seq[var][:snap]`` — the older lowers;
        # every newer lower walks the full neighbor tables itself when
        # drained, so each (lower, neighbor) pair is composed exactly
        # once at the fixpoint.  Overstating a snapshot is always safe
        # (extra compositions dedupe); understating one loses pairs, so
        # every path that resets state (rollback, rebuild_seqs, persist
        # load) errs on the side of "already drained".
        self._lower_drained: dict[Variable, int] = {}
        #: Maintain ``stats.redundant_compositions`` by remembering every
        #: (fact, neighbor) pair composed.  Off by default — the pair set
        #: costs memory proportional to total compositions — and enabled
        #: by tests and the benchmarks' verification passes.
        self.track_redundant = track_redundant
        self._pair_seen: set[tuple] = set()
        self._work: deque[tuple[FactKey, int]] = deque()
        self.inconsistencies: list[Inconsistency] = []
        self.facts_processed = 0
        self.stats = SolverStats()
        # Backtracking journal (BANSHEE's toolkit supported constraint
        # retraction): each mark() opens an epoch; every fact recorded
        # while an epoch is open is undone by rollback().  Sound because
        # closure is monotone: facts derivable without the retracted
        # constraints were already present before the mark.
        self._journal: list[list[tuple]] = []

    # -- public API -----------------------------------------------------------

    def fresh(self, hint: str | None = None) -> Variable:
        """A fresh set variable (used by normalization and callers alike)."""
        return self._fresh.fresh(hint)

    def add(
        self,
        lhs: SetExpression,
        rhs: SetExpression,
        annotation: Annotation | None = None,
        info: Any = None,
    ) -> None:
        """Add the constraint ``lhs ⊆^annotation rhs`` and solve online.

        ``annotation`` defaults to the algebra's identity (an
        unannotated constraint).  ``info`` is attached to the
        constraint's provenance for witness extraction.
        """
        ann = self._identity if annotation is None else annotation
        reason = Reason("given", (), info) if self.record_reasons else None
        lhs = self._normalize_lower(lhs, reason)
        rhs = self._normalize_upper(rhs, reason)
        self._dispatch(lhs, rhs, ann, reason)
        self._drain()

    def add_many(
        self,
        constraints: Iterable[tuple],
    ) -> None:
        """Batch form of :meth:`add`: dispatch every constraint, then drain once.

        Each item is ``(lhs, rhs)``, ``(lhs, rhs, annotation)`` or
        ``(lhs, rhs, annotation, info)``, with the same defaults as
        :meth:`add`.  Solving is still online afterwards — the batch
        merely amortizes the worklist drain over the whole group, which
        is how encoders (a few thousand given constraints, queries only
        at the end) avoid paying a drain per constraint.
        """
        record = self.record_reasons
        for item in constraints:
            n = len(item)
            lhs, rhs = item[0], item[1]
            annotation = item[2] if n > 2 else None
            info = item[3] if n > 3 else None
            ann = self._identity if annotation is None else annotation
            reason = Reason("given", (), info) if record else None
            self._dispatch(
                self._normalize_lower(lhs, reason),
                self._normalize_upper(rhs, reason),
                ann,
                reason,
            )
        self._drain()

    @property
    def is_consistent(self) -> bool:
        return not self.inconsistencies

    def check(self) -> None:
        """Raise :class:`NoSolutionError` if a contradiction was found."""
        if self.inconsistencies:
            raise NoSolutionError(str(self.inconsistencies[0]))

    def variables(self) -> set[Variable]:
        """Every variable of the system, *including* those merged away by
        cycle elimination (their solved form is readable through the
        accessors, which resolve representatives)."""
        keys: set[Variable] = set()
        for table in (self._lower, self._upper, self._succ, self._pred, self._proj):
            for var, bucket in table.items():
                if bucket:
                    keys.add(var)
        # Both sides of every merge: a winner whose facts all
        # canonicalized away (e.g. a stale self-loop dropped by a
        # snapshot round-trip) would otherwise vanish from the set.
        keys.update(self._uf.parent)
        keys.update(self._uf.parent.values())
        return keys

    def find(self, var: Variable) -> Variable:
        """The representative a variable was collapsed into (itself if
        never merged).  Queries resolve through this, so merged-away
        variables remain fully queryable."""
        uf = self._uf
        if not uf.parent:
            return var
        # Path compression rewires parent pointers, which the undo log
        # cannot unwind — suppress it while a retraction epoch is open.
        return uf.find(var, not self._journal)

    def lower_bounds(
        self, var: Variable
    ) -> Iterator[tuple[Constructed, Annotation]]:
        """All derived lower bounds ``src ⊆^f var`` (the solved form)."""
        yield from self._lower.get(self.find(var), ())

    def upper_bounds(
        self, var: Variable
    ) -> Iterator[tuple[Constructed, Annotation]]:
        yield from self._upper.get(self.find(var), ())

    def edges_from(self, var: Variable) -> Iterator[tuple[Variable, Annotation]]:
        yield from self._succ.get(self.find(var), ())

    def projection_sinks(
        self, var: Variable
    ) -> Iterator[tuple[Any, int, Variable, Annotation]]:
        yield from self._proj.get(self.find(var), ())

    def has_lower(
        self, var: Variable, source: Constructed, annotation: Annotation
    ) -> bool:
        """Is ``source ⊆^annotation var`` present in the solved form?"""
        bucket = self._lower.get(self.find(var), {})
        if (source, annotation) in bucket:
            return True
        if self._uf.parent and source.args:
            return (self._canonical_term(source), annotation) in bucket
        return False

    def reason(self, fact: FactKey) -> Reason | None:
        """Provenance of a recorded fact, for witness reconstruction.

        Facts are recorded under the variable names that were canonical
        at derivation time; a query phrased with since-merged variables
        falls back to the representative-resolved key.
        """
        found = self._reasons.get(fact)
        if found is not None or not self._uf.parent:
            return found
        return self._reasons.get(self._canonical_fact(fact))

    # -- backtracking ----------------------------------------------------------

    def mark(self) -> int:
        """Open a retraction epoch; returns its depth (for sanity checks).

        Constraints added after a mark can be undone wholesale with
        :meth:`rollback` — the online analog of re-running without them.
        """
        self._journal.append([])
        self.stats.marks += 1
        return len(self._journal)

    def rollback(self) -> None:
        """Retract everything added since the most recent :meth:`mark`."""
        if not self._journal:
            raise RuntimeError("rollback() without a matching mark()")
        self.stats.rollbacks += 1
        epoch = self._journal.pop()
        touched: set[tuple[str, Variable]] = set()
        for record in reversed(epoch):
            tag = record[0]
            if tag == "lower":
                _t, var, key = record
                self._lower.get(var, {}).pop(key, None)
                self._reasons.pop(("lower", var, *key), None)
                touched.add((tag, var))
            elif tag == "upper":
                _t, var, key = record
                self._upper.get(var, {}).pop(key, None)
                self._reasons.pop(("upper", var, *key), None)
                touched.add((tag, var))
            elif tag == "edge":
                _t, src_var, key = record
                self._succ.get(src_var, {}).pop(key, None)
                dst_var, ann = key
                self._pred.get(dst_var, {}).pop((src_var, ann), None)
                self._reasons.pop(("edge", src_var, dst_var, ann), None)
                touched.add((tag, src_var))
            elif tag == "proj":
                _t, var, key = record
                self._proj.get(var, {}).pop(key, None)
                self._reasons.pop(("proj", var, *key), None)
                touched.add((tag, var))
            elif tag == "met":
                self._met.discard(record[1])
            elif tag == "inconsistency":
                if self.inconsistencies:
                    self.inconsistencies.pop()
            elif tag == "demerge":
                # Undo a cycle merge: reattach the loser's tables exactly
                # as they were detached.  The winner-side copies made by
                # rehoming were journaled normally and have already been
                # popped by the records above (they were appended later).
                (
                    _t,
                    var,
                    lower,
                    upper,
                    succ,
                    proj,
                    pred,
                    lower_seq,
                    upper_seq,
                    succ_seq,
                    proj_seq,
                    drained,
                ) = record
                for table, bucket in (
                    (self._lower, lower),
                    (self._upper, upper),
                    (self._succ, succ),
                    (self._proj, proj),
                    (self._pred, pred),
                    (self._lower_seq, lower_seq),
                    (self._upper_seq, upper_seq),
                    (self._succ_seq, succ_seq),
                    (self._proj_seq, proj_seq),
                ):
                    if bucket is not None:
                        table[var] = bucket
                if drained is not None:
                    self._lower_drained[var] = drained
            elif tag == "predfold":
                _t, var, added = record
                bucket = self._pred.get(var, {})
                for key in added:
                    bucket.pop(key, None)
            elif tag == "uf":
                self._uf.undo_union(record[1])
        # Re-sync the iteration sequences with the pruned buckets (the
        # only point where they can diverge; drains never remove facts).
        tables = {
            "lower": (self._lower, self._lower_seq),
            "upper": (self._upper, self._upper_seq),
            "edge": (self._succ, self._succ_seq),
            "proj": (self._proj, self._proj_seq),
        }
        for tag, var in touched:
            table, seq = tables[tag]
            seq[var] = list(table.get(var, {}))
            if tag == "lower":
                # Rollback removes a *suffix* of the lower sequence
                # (appends only ever extend it), so the drained entries
                # that survive are still a prefix: clamping the counter
                # to the new length is exact.
                count = self._lower_drained.get(var)
                if count is not None and count > len(seq[var]):
                    self._lower_drained[var] = len(seq[var])

    def _record(self, entry: tuple) -> None:
        if self._journal:
            self._journal[-1].append(entry)

    # -- fact retraction support (repro.incremental) ---------------------------
    #
    # These hooks remove *individual* facts without maintaining closure;
    # restoring closure (DRed over-delete + re-derive) is the job of
    # :class:`repro.incremental.DeltaSolver`, the only intended caller.
    # They must not be mixed with an open journal epoch — retraction of
    # arbitrary facts cannot be replayed by the LIFO undo log.

    def remove_fact(self, fact: FactKey) -> bool:
        """Remove one stored fact (and its provenance entry) if present.

        ``fact`` must use currently-canonical variable names in its
        primary slots.  Iteration sequences for touched variables are
        *not* resynced here; callers batch removals and then call
        :meth:`rebuild_seqs` once per touched ``(kind, var)``.
        """
        kind = fact[0]
        if kind == "lower":
            _tag, var, src, ann = fact
            bucket = self._lower.get(var, {})
            present = (src, ann) in bucket
            bucket.pop((src, ann), None)
            self._reasons.pop(fact, None)
            return present
        if kind == "edge":
            _tag, src_var, dst_var, ann = fact
            bucket = self._succ.get(src_var, {})
            present = (dst_var, ann) in bucket
            bucket.pop((dst_var, ann), None)
            self._pred.get(dst_var, {}).pop((src_var, ann), None)
            self._reasons.pop(fact, None)
            return present
        if kind == "upper":
            _tag, var, snk, ann = fact
            bucket = self._upper.get(var, {})
            present = (snk, ann) in bucket
            bucket.pop((snk, ann), None)
            self._reasons.pop(fact, None)
            return present
        if kind == "proj":
            _tag, var, ctor, index, target, ann = fact
            bucket = self._proj.get(var, {})
            key = (ctor, index, target, ann)
            present = key in bucket
            bucket.pop(key, None)
            self._reasons.pop(fact, None)
            return present
        raise AssertionError(f"unknown fact kind {kind!r}")

    def remove_met(self, key: tuple) -> None:
        """Forget a constructor meet (and any inconsistency it recorded).

        Used by retraction when a meet's justifying pair is deleted; a
        surviving alternate pair will redo the meet (and re-record the
        inconsistency) when the re-derive pass re-fires it.
        """
        self._met.discard(key)
        src, snk, ann = key
        if src.constructor != snk.constructor and self.inconsistencies:
            for i, inc in enumerate(self.inconsistencies):
                if (
                    inc.source == src
                    and inc.sink == snk
                    and inc.annotation == ann
                ):
                    del self.inconsistencies[i]
                    break

    def rebuild_seqs(self, touched: Iterable[tuple[str, Variable]]) -> None:
        """Resync iteration sequences after a batch of :meth:`remove_fact`."""
        tables = {
            "lower": (self._lower, self._lower_seq),
            "edge": (self._succ, self._succ_seq),
            "upper": (self._upper, self._upper_seq),
            "proj": (self._proj, self._proj_seq),
        }
        for tag, var in touched:
            table, seq = tables[tag]
            seq[var] = list(table.get(var, {}))
            if tag == "lower":
                # Retraction runs at a fixpoint, where every surviving
                # lower has been drained; the re-derive pass re-enqueues
                # frontier facts explicitly, so "all drained" is the
                # safe (and exact) counter value.
                self._lower_drained[var] = len(seq[var])

    def pending_count(self) -> int:
        """Worklist backlog: facts recorded but not yet resolved against
        their neighbors.  Zero at the fixpoint; nonzero only after an
        interrupted drain (or on a loaded checkpoint)."""
        return len(self._work)

    def resume(self, budget: Budget | None = None) -> None:
        """Continue an interrupted solve to the fixpoint (or next limit).

        After a :class:`~repro.core.errors.SolverInterrupted` the
        worklist still holds everything unprocessed; ``resume`` drains
        it, optionally under a fresh budget (the old one has, by
        definition, just run out).  A no-op when nothing is pending.
        """
        if budget is not None:
            self.budget = budget
        self._drain()

    def fact_count(self) -> int:
        """Number of distinct facts in the solved form (for benchmarks).

        With cycle elimination enabled the count is taken modulo the
        *full* identity-cycle quotient (:meth:`canonical_facts`), so it
        is a function of the solved form alone — independent of which
        cycles the bounded online sampler happened to merge, and stable
        across a run and its checkpoint/resume replay.
        """
        if self.cycle_elim:
            return sum(1 for _ in self.canonical_facts())
        return (
            sum(len(v) for v in self._lower.values())
            + sum(len(v) for v in self._upper.values())
            + sum(len(v) for v in self._succ.values())
            + sum(len(v) for v in self._proj.values())
        )

    # -- cycle elimination -----------------------------------------------------

    def collapse_map(self) -> dict[Variable, Variable]:
        """Map every variable of the system to its canonical representative.

        This composes the online merges with a *complete* SCC pass over
        the identity-annotated subgraph, so cycles the bounded sampler
        missed are still quotiented here.  Representatives are the
        lexicographically smallest member of each component — a pure
        function of the solved form, which is what keeps dumps and fact
        counts comparable across runs with different merge histories.
        """
        find = self.find
        is_identity = self._is_identity
        succ: dict[Variable, list[Variable]] = {}
        pred: dict[Variable, list[Variable]] = {}
        nodes: set[Variable] = set()
        for src, bucket in self._succ.items():
            s = find(src)
            for dst, ann in bucket:
                if not is_identity(ann):
                    continue
                d = find(dst)
                if d == s:
                    continue
                succ.setdefault(s, []).append(d)
                pred.setdefault(d, []).append(s)
                nodes.add(s)
                nodes.add(d)
        rep: dict[Variable, Variable] = {}
        if nodes:
            # Kosaraju, iteratively (the modelcheck ε-SCC pre-pass uses
            # the same scheme on CFG nodes).
            order: list[Variable] = []
            visited: set[Variable] = set()
            for start in nodes:
                if start in visited:
                    continue
                stack: list[tuple[Variable, int]] = [(start, 0)]
                visited.add(start)
                while stack:
                    node, index = stack.pop()
                    successors = succ.get(node, [])
                    if index < len(successors):
                        stack.append((node, index + 1))
                        nxt = successors[index]
                        if nxt not in visited:
                            visited.add(nxt)
                            stack.append((nxt, 0))
                    else:
                        order.append(node)
            assigned: set[Variable] = set()
            for start in reversed(order):
                if start in assigned:
                    continue
                component = [start]
                assigned.add(start)
                cursor = 0
                while cursor < len(component):
                    node = component[cursor]
                    cursor += 1
                    for prev in pred.get(node, []):
                        if prev not in assigned:
                            assigned.add(prev)
                            component.append(prev)
                if len(component) > 1:
                    root = min(component, key=lambda v: v.name)
                    for node in component:
                        if node != root:
                            rep[node] = root
        out: dict[Variable, Variable] = {}
        for var in self.variables():
            root = find(var)
            out[var] = rep.get(root, root)
        return out

    def canonical_facts(self) -> Iterator[FactKey]:
        """The solved form modulo the full identity-cycle quotient.

        Yields each distinct fact once, with every variable slot
        (including constructor arguments) resolved through
        :meth:`collapse_map` and identity self-edges dropped.  This is
        what persistence dumps and what :meth:`fact_count` counts when
        cycle elimination is enabled.
        """
        cmap = self.collapse_map()

        def cv(v: Variable) -> Variable:
            return cmap.get(v, v)

        def ct(term: Constructed) -> Constructed:
            if term.args and any(cmap.get(a, a) != a for a in term.args):
                return Constructed(
                    term.constructor, tuple(cmap.get(a, a) for a in term.args)
                )
            return term

        is_identity = self._is_identity
        members: dict[Variable, list[Variable]] = {}
        seen: set[Variable] = set()
        for table in (self._lower, self._upper, self._succ, self._proj):
            for var in table:
                if var in seen:
                    continue
                seen.add(var)
                members.setdefault(cv(var), []).append(var)
        for rep in sorted(members, key=lambda v: v.name):
            group = sorted(members[rep], key=lambda v: v.name)
            emitted: set[FactKey] = set()
            for var in group:
                for src, ann in self._lower.get(var, ()):
                    key = ("lower", rep, ct(src), ann)
                    if key not in emitted:
                        emitted.add(key)
                        yield key
            for var in group:
                for snk, ann in self._upper.get(var, ()):
                    key = ("upper", rep, ct(snk), ann)
                    if key not in emitted:
                        emitted.add(key)
                        yield key
            for var in group:
                for dst, ann in self._succ.get(var, ()):
                    d = cv(dst)
                    if d == rep and is_identity(ann):
                        continue
                    key = ("edge", rep, d, ann)
                    if key not in emitted:
                        emitted.add(key)
                        yield key
            for var in group:
                for ctor, index, target, ann in self._proj.get(var, ()):
                    key = ("proj", rep, ctor, index, cv(target), ann)
                    if key not in emitted:
                        emitted.add(key)
                        yield key

    def _canonical_term(self, term: Constructed) -> Constructed:
        if not term.args or not self._uf.parent:
            return term
        find = self.find
        args = tuple(find(a) if isinstance(a, Variable) else a for a in term.args)
        if args == term.args:
            return term
        return Constructed(term.constructor, args)

    def _canonical_fact(self, fact: FactKey) -> FactKey:
        """Resolve a fact key's primary variable slots through find()."""
        kind = fact[0]
        find = self.find
        if kind == "lower":
            return (kind, find(fact[1]), fact[2], fact[3])
        if kind == "edge":
            return (kind, find(fact[1]), find(fact[2]), fact[3])
        if kind == "upper":
            return (kind, find(fact[1]), fact[2], fact[3])
        if kind == "proj":
            return (kind, find(fact[1]), fact[2], fact[3], find(fact[4]), fact[5])
        return fact

    # -- normalization ---------------------------------------------------------

    def _normalize_lower(
        self, expr: SetExpression, reason: Reason | None
    ) -> SetExpression:
        """Reduce a left-hand side to the paper's grammar.

        Constructor arguments that are not variables are replaced by
        fresh variables bounded from below (covariance makes this
        solution-preserving)."""
        if isinstance(expr, (Variable, Projection)):
            return expr
        if isinstance(expr, Constructed):
            args = []
            for arg in expr.args:
                if isinstance(arg, Variable):
                    args.append(arg)
                else:
                    var = self.fresh("arg")
                    inner = self._normalize_lower(arg, reason)
                    self._dispatch(inner, var, self._identity, reason)
                    args.append(var)
            return Constructed(expr.constructor, tuple(args))
        raise ConstraintError(f"unsupported left-hand side: {expr!r}")

    def _normalize_upper(
        self, expr: SetExpression, reason: Reason | None
    ) -> SetExpression:
        """Reduce a right-hand side; projections are rejected (Section 2.1)."""
        if isinstance(expr, Variable):
            return expr
        if isinstance(expr, Projection):
            raise ConstraintError("projections may not appear on the right-hand side")
        if isinstance(expr, Constructed):
            args = []
            for arg in expr.args:
                if isinstance(arg, Variable):
                    args.append(arg)
                else:
                    var = self.fresh("arg")
                    inner = self._normalize_upper(arg, reason)
                    self._dispatch(var, inner, self._identity, reason)
                    args.append(var)
            return Constructed(expr.constructor, tuple(args))
        raise ConstraintError(f"unsupported right-hand side: {expr!r}")

    def _dispatch(
        self,
        lhs: SetExpression,
        rhs: SetExpression,
        ann: Annotation,
        reason: Reason | None,
    ) -> None:
        if isinstance(lhs, Variable) and isinstance(rhs, Variable):
            self._enqueue(("edge", lhs, rhs, ann), reason)
        elif isinstance(lhs, Constructed) and isinstance(rhs, Variable):
            self._enqueue(("lower", rhs, lhs, ann), reason)
        elif isinstance(lhs, Variable) and isinstance(rhs, Constructed):
            self._enqueue(("upper", lhs, rhs, ann), reason)
        elif isinstance(lhs, Constructed) and isinstance(rhs, Constructed):
            self._meet(lhs, rhs, ann, reason.info)
        elif isinstance(lhs, Projection):
            if isinstance(rhs, Constructed):
                bridge = self.fresh("proj")
                self._enqueue(
                    ("proj", lhs.operand, lhs.constructor, lhs.index, bridge, ann),
                    reason,
                )
                self._enqueue(("upper", bridge, rhs, self._identity), reason)
            else:
                self._enqueue(
                    ("proj", lhs.operand, lhs.constructor, lhs.index, rhs, ann),
                    reason,
                )
        else:
            raise ConstraintError(f"unsupported constraint {lhs!r} ⊆ {rhs!r}")

    # -- worklist machinery -----------------------------------------------------

    def _enqueue(self, fact: FactKey, reason: Reason | None) -> None:
        kind = fact[0]
        if self.prune_dead and not self._is_live(fact[-1]):
            return  # necessarily non-accepting annotation: prune
        if self._uf.parent:
            # Lazy canonicalization: facts mentioning merged-away
            # variables are rehomed onto their representatives here, at
            # the single choke point every fact passes through.
            fact = self._canonical_fact(fact)
        if kind == "lower":
            _tag, var, src, ann = fact
            table = self._lower.setdefault(var, {})
            key = (src, ann)
            if key in table:
                self.stats.facts_deduped += 1
                return
            table[key] = None
            self._lower_seq.setdefault(var, []).append(key)
            self._record(("lower", var, key))
            self.stats.lowers_added += 1
        elif kind == "edge":
            _tag, src_var, dst_var, ann = fact
            if src_var == dst_var:
                # A reflexive edge adds nothing for idempotent-free
                # annotations only when the annotation is the identity.
                if ann == self._identity:
                    return
            table = self._succ.setdefault(src_var, {})
            key = (dst_var, ann)
            if key in table:
                self.stats.facts_deduped += 1
                return
            table[key] = None
            self._succ_seq.setdefault(src_var, []).append(key)
            self._pred.setdefault(dst_var, {})[(src_var, ann)] = None
            self._record(("edge", src_var, key))
            self.stats.edges_added += 1
        elif kind == "upper":
            _tag, var, snk, ann = fact
            table = self._upper.setdefault(var, {})
            key = (snk, ann)
            if key in table:
                self.stats.facts_deduped += 1
                return
            table[key] = None
            self._upper_seq.setdefault(var, []).append(key)
            self._record(("upper", var, key))
            self.stats.uppers_added += 1
        elif kind == "proj":
            _tag, var, ctor, index, target, ann = fact
            table = self._proj.setdefault(var, {})
            key = (ctor, index, target, ann)
            if key in table:
                self.stats.facts_deduped += 1
                return
            table[key] = None
            self._proj_seq.setdefault(var, []).append(key)
            self._record(("proj", var, key))
            self.stats.projections_added += 1
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown fact kind {kind!r}")
        if reason is not None:
            self._reasons.setdefault(fact, reason)
        # Difference-propagation snapshot: a non-lower fact records how
        # many lowers at its variable were drained *before* it existed;
        # only those need pairing from its side (newer lowers pair with
        # it when they drain).  ``fact[1]`` is the canonical primary
        # variable for every kind.
        self._work.append(
            (fact, 0 if kind == "lower" else self._lower_drained.get(fact[1], 0))
        )
        if (
            kind == "edge"
            and self.cycle_elim
            and not self._collapsing
            and self._is_identity(fact[3])
        ):
            # Partial online detection (Fähndrich et al.): the new
            # identity edge src → dst closes a cycle iff dst already
            # reaches src over identity edges.  Sample a bounded
            # reverse path; on a hit, merge the cycle's members.
            cycle = find_identity_cycle(
                self._pred,
                self.find,
                self._is_identity,
                fact[1],
                fact[2],
                self.cycle_search_bound,
            )
            if cycle is not None:
                self._collapse(cycle)

    def _is_identity(self, ann: Annotation) -> bool:
        # _identity_key is the compiled algebra's precomputed identity
        # index when available (an int compare), else the identity
        # annotation itself.
        return ann == self._identity_key

    def _collapse(self, cycle: list[Variable]) -> None:
        """Merge the members of an identity cycle into one representative.

        Sound because every edge on the cycle carries the identity
        annotation: ``id ∘ id = id``, so each member's lower bounds flow
        unchanged to every other member and their solutions are equal.
        The representative is the lexicographically smallest member (a
        deterministic choice independent of merge history); the losers'
        tables are detached and their facts re-enqueued onto the winner,
        which both deduplicates and restores worklist coverage.
        """
        winner = min(cycle, key=lambda v: v.name)
        losers = [v for v in cycle if v != winner]
        stats = self.stats
        stats.cycles_collapsed += 1
        stats.vars_merged += len(losers)
        uf = self._uf
        self._collapsing = True
        try:
            for loser in losers:
                uf.union(winner, loser)
                self._record(("uf", loser))
            for loser in losers:
                self._rehome(loser, winner)
        finally:
            self._collapsing = False

    def _rehome(self, loser: Variable, winner: Variable) -> None:
        lower = self._lower.pop(loser, None)
        upper = self._upper.pop(loser, None)
        succ = self._succ.pop(loser, None)
        proj = self._proj.pop(loser, None)
        pred = self._pred.pop(loser, None)
        lower_seq = self._lower_seq.pop(loser, None)
        upper_seq = self._upper_seq.pop(loser, None)
        succ_seq = self._succ_seq.pop(loser, None)
        proj_seq = self._proj_seq.pop(loser, None)
        # The loser's drained counter dies with its bucket; the demerge
        # record restores it on rollback.  Re-enqueued copies snapshot
        # against the *winner's* counter in _enqueue, and re-enqueued
        # lowers walk the winner's full neighbor tables when drained, so
        # every pair at the merged variable is still composed.
        drained = self._lower_drained.pop(loser, None)
        # Fold the loser's predecessor index into the winner's so future
        # reverse-path samples still see the incoming identity edges.
        added: list[tuple[Variable, Annotation]] = []
        if pred:
            wbucket = self._pred.setdefault(winner, {})
            find = self.find
            for p, ann in pred:
                key = (find(p), ann)
                if key[0] == winner and self._is_identity(ann):
                    continue  # now an internal edge of the merged node
                if key not in wbucket:
                    wbucket[key] = None
                    added.append(key)
        self._record(("predfold", winner, tuple(added)))
        self._record(
            (
                "demerge",
                loser,
                lower,
                upper,
                succ,
                proj,
                pred,
                lower_seq,
                upper_seq,
                succ_seq,
                proj_seq,
                drained,
            )
        )
        # Re-enqueue the loser's facts onto the winner.  _enqueue
        # canonicalizes (loser resolves to winner), dedups against facts
        # the winner already has, and re-appends survivors to the
        # worklist — which restores the pairing invariant for neighbor
        # lists that were mid-iteration when the merge happened.
        # Identity edges internal to the cycle canonicalize to identity
        # self-edges and are dropped.  Original Reason objects ride
        # along so provenance survives the move.
        #
        # Merging can leave the kept reason *self-citing*: several
        # copies of one fact (the same term/annotation at different
        # cycle members) collapse into a single winner-side key, and
        # the copy whose Reason survives may cite another copy — now
        # the same canonical fact, i.e. itself.  A self-supporting
        # entry disconnects retraction's cone walk from the fact's
        # real upstream support, so after each re-enqueue, if the kept
        # reason self-cites and the incoming copy's does not, the
        # incoming reason replaces it.  The temporally first copy
        # always cites strictly-earlier (hence other-keyed) facts, so
        # a non-self-citing reason is available whenever the fact ever
        # had outside support.  Skipped while a journal epoch is open:
        # rollback restores the loser tables verbatim and the winner's
        # original reason must survive with them.
        reasons = self._reasons if self.record_reasons else None
        fix_self = reasons is not None and not self._journal
        if lower:
            for src, ann in lower:
                reason = reasons.get(("lower", loser, src, ann)) if reasons else None
                self._enqueue(("lower", loser, src, ann), reason)
                if fix_self and reason is not None:
                    self._prefer_outside_reason(
                        ("lower", loser, src, ann), reason
                    )
        if upper:
            for snk, ann in upper:
                reason = reasons.get(("upper", loser, snk, ann)) if reasons else None
                self._enqueue(("upper", loser, snk, ann), reason)
                if fix_self and reason is not None:
                    self._prefer_outside_reason(
                        ("upper", loser, snk, ann), reason
                    )
        if succ:
            for dst, ann in succ:
                reason = (
                    reasons.get(("edge", loser, dst, ann)) if reasons else None
                )
                self._enqueue(("edge", loser, dst, ann), reason)
                if fix_self and reason is not None:
                    self._prefer_outside_reason(
                        ("edge", loser, dst, ann), reason
                    )
        if proj:
            for ctor, index, target, ann in proj:
                reason = (
                    reasons.get(("proj", loser, ctor, index, target, ann))
                    if reasons
                    else None
                )
                self._enqueue(("proj", loser, ctor, index, target, ann), reason)
                if fix_self and reason is not None:
                    self._prefer_outside_reason(
                        ("proj", loser, ctor, index, target, ann), reason
                    )
        if reasons is not None and not self._journal:
            # The re-enqueues above re-recorded each surviving fact's
            # Reason under its canonical winner-side key (or deduped
            # against the winner's own entry), so the loser-keyed
            # entries now describe facts that no longer exist under
            # those keys — drop them.  With a journal epoch open the
            # loser tables can come back verbatim on rollback and their
            # reasons must survive with them.
            if lower:
                for src, ann in lower:
                    reasons.pop(("lower", loser, src, ann), None)
            if upper:
                for snk, ann in upper:
                    reasons.pop(("upper", loser, snk, ann), None)
            if succ:
                for dst, ann in succ:
                    reasons.pop(("edge", loser, dst, ann), None)
            if proj:
                for ctor, index, target, ann in proj:
                    reasons.pop(("proj", loser, ctor, index, target, ann), None)

    def _self_cites(self, key: FactKey, reason: "Reason") -> bool:
        """Does ``reason`` cite ``key`` itself (under canonical names)?"""
        canon = self._canonical_fact
        return any(canon(ant) == key for ant in reason.antecedents)

    def _prefer_outside_reason(self, moved: FactKey, reason: "Reason") -> None:
        """Swap a merged fact's kept reason for a non-self-citing copy.

        ``moved`` is the loser-keyed fact just re-enqueued onto the
        winner; ``reason`` is the Reason that rode along with it.  When
        the winner-side entry kept a reason that now cites its own
        canonical key while the incoming copy's does not, the incoming
        one wins — see the rehoming comment for why one such copy
        exists whenever the fact ever had support outside the class.
        """
        key = self._canonical_fact(moved)
        reasons = self._reasons
        kept = reasons.get(key)
        if kept is None or kept is reason:
            return
        if self._self_cites(key, kept) and (
            not reason.antecedents or not self._self_cites(key, reason)
        ):
            reasons[key] = reason

    def _drain(self) -> None:
        # Everything this loop touches per derived fact is hoisted into
        # locals: the composition operation, the counters, the iteration
        # sequences.  Lower facts walk their neighbor sequences by index
        # under a length snapshot — appends made while a fact is being
        # processed are deliberately *not* seen here: a newly derived
        # fact pairs with its neighbors when its own turn on the
        # worklist comes.  Edge/upper/proj facts walk only the lowers
        # that were already drained when they were inserted (difference
        # propagation) — the newer lowers pair with them from the other
        # side, so each pair is composed exactly once at the fixpoint.
        then = self.algebra.then
        stats = self.stats
        enqueue = self._enqueue
        meet = self._meet
        lower_seq = self._lower_seq
        upper_seq = self._upper_seq
        succ_seq = self._succ_seq
        proj_seq = self._proj_seq
        lower_drained = self._lower_drained
        idk = self._identity_key
        work = self._work
        record = self.record_reasons
        track = self.track_redundant
        pair_seen = self._pair_seen
        pn = self.pn_projections
        # Budget governance: with no budget the loop pays one
        # predictable ``is not None`` branch per fact; with one, the
        # full limit evaluation runs at drain start and then every
        # ``check_interval`` facts.  Charges happen *before* a fact is
        # popped, so an interrupt always leaves the worklist holding
        # exactly the unresolved facts — the invariant checkpoint/resume
        # relies on.
        budget = self.budget
        check_every = countdown = 0
        if budget is not None and work:
            check_every = budget.check_interval
            countdown = check_every
            budget.charge(0, self)
        while work:
            if budget is not None:
                countdown -= 1
                if countdown <= 0:
                    countdown = check_every
                    budget.charge(check_every, self)
            fact, snap = work.popleft()
            self.facts_processed += 1
            kind = fact[0]
            if kind == "lower":
                _tag, var, src, f = fact
                # Count this lower as drained *before* processing it:
                # any fact enqueued while it is being processed must
                # snapshot past it (it will not re-walk the neighbor
                # tables), and overstating a snapshot only costs a
                # deduped recomposition, never a missed pair.
                lower_drained[var] = lower_drained.get(var, 0) + 1
                seq = succ_seq.get(var)
                if seq:
                    i, n = 0, len(seq)
                    while i < n:
                        dst_var, g = seq[i]
                        i += 1
                        stats.compositions += 1
                        if track:
                            pk = ("t", var, src, f, dst_var, g)
                            if pk in pair_seen:
                                stats.redundant_compositions += 1
                            else:
                                pair_seen.add(pk)
                        h = f if g == idk else g if f == idk else then(f, g)
                        enqueue(
                            ("lower", dst_var, src, h),
                            Reason("trans", (fact, ("edge", var, dst_var, g)))
                            if record
                            else None,
                        )
                seq = upper_seq.get(var)
                if seq:
                    i, n = 0, len(seq)
                    while i < n:
                        snk, g = seq[i]
                        i += 1
                        stats.compositions += 1
                        if track:
                            pk = ("m", var, src, f, snk, g)
                            if pk in pair_seen:
                                stats.redundant_compositions += 1
                            else:
                                pair_seen.add(pk)
                        h = f if g == idk else g if f == idk else then(f, g)
                        meet(
                            src,
                            snk,
                            h,
                            None,
                            antecedents=(fact, ("upper", var, snk, g)),
                        )
                seq = proj_seq.get(var)
                if seq:
                    if isinstance(src, Constructed) and src.args:
                        src_ctor = src.constructor
                        i, n = 0, len(seq)
                        while i < n:
                            ctor, index, target, g = seq[i]
                            i += 1
                            if ctor == src_ctor:
                                stats.compositions += 1
                                if track:
                                    pk = ("p", var, src, f, ctor, index, target, g)
                                    if pk in pair_seen:
                                        stats.redundant_compositions += 1
                                    else:
                                        pair_seen.add(pk)
                                h = (
                                    f
                                    if g == idk
                                    else g if f == idk else then(f, g)
                                )
                                enqueue(
                                    (
                                        "edge",
                                        src.args[index - 1],
                                        target,
                                        h,
                                    ),
                                    Reason(
                                        "project",
                                        (
                                            fact,
                                            ("proj", var, ctor, index, target, g),
                                        ),
                                    )
                                    if record
                                    else None,
                                )
                    elif pn and isinstance(src, Constructed):
                        i, n = 0, len(seq)
                        while i < n:
                            ctor, index, target, g = seq[i]
                            i += 1
                            stats.compositions += 1
                            if track:
                                pk = ("pn", var, src, f, ctor, index, target, g)
                                if pk in pair_seen:
                                    stats.redundant_compositions += 1
                                else:
                                    pair_seen.add(pk)
                            h = f if g == idk else g if f == idk else then(f, g)
                            enqueue(
                                ("lower", target, src, h),
                                Reason(
                                    "pn-project",
                                    (fact, ("proj", var, ctor, index, target, g)),
                                )
                                if record
                                else None,
                            )
            elif kind == "edge":
                _tag, src_var, dst_var, g = fact
                seq = lower_seq.get(src_var)
                if seq:
                    n = len(seq)
                    hi = snap if snap < n else n
                    if hi < n:
                        stats.compositions_saved += n - hi
                    i = 0
                    while i < hi:
                        lower_src, f = seq[i]
                        i += 1
                        stats.compositions += 1
                        if track:
                            pk = ("t", src_var, lower_src, f, dst_var, g)
                            if pk in pair_seen:
                                stats.redundant_compositions += 1
                            else:
                                pair_seen.add(pk)
                        h = f if g == idk else g if f == idk else then(f, g)
                        enqueue(
                            ("lower", dst_var, lower_src, h),
                            Reason(
                                "trans",
                                (("lower", src_var, lower_src, f), fact),
                            )
                            if record
                            else None,
                        )
            elif kind == "upper":
                _tag, var, snk, g = fact
                seq = lower_seq.get(var)
                if seq:
                    n = len(seq)
                    hi = snap if snap < n else n
                    if hi < n:
                        stats.compositions_saved += n - hi
                    i = 0
                    while i < hi:
                        src, f = seq[i]
                        i += 1
                        stats.compositions += 1
                        if track:
                            pk = ("m", var, src, f, snk, g)
                            if pk in pair_seen:
                                stats.redundant_compositions += 1
                            else:
                                pair_seen.add(pk)
                        h = f if g == idk else g if f == idk else then(f, g)
                        meet(
                            src,
                            snk,
                            h,
                            None,
                            antecedents=(("lower", var, src, f), fact),
                        )
            elif kind == "proj":
                _tag, var, ctor, index, target, g = fact
                seq = lower_seq.get(var)
                if seq:
                    n = len(seq)
                    hi = snap if snap < n else n
                    if hi < n:
                        stats.compositions_saved += n - hi
                    i = 0
                    while i < hi:
                        src, f = seq[i]
                        i += 1
                        if (
                            isinstance(src, Constructed)
                            and src.constructor == ctor
                            and src.args
                        ):
                            stats.compositions += 1
                            if track:
                                pk = ("p", var, src, f, ctor, index, target, g)
                                if pk in pair_seen:
                                    stats.redundant_compositions += 1
                                else:
                                    pair_seen.add(pk)
                            h = f if g == idk else g if f == idk else then(f, g)
                            enqueue(
                                ("edge", src.args[index - 1], target, h),
                                Reason(
                                    "project", (("lower", var, src, f), fact)
                                )
                                if record
                                else None,
                            )
                        elif pn and src.is_constant:
                            stats.compositions += 1
                            if track:
                                pk = ("pn", var, src, f, ctor, index, target, g)
                                if pk in pair_seen:
                                    stats.redundant_compositions += 1
                                else:
                                    pair_seen.add(pk)
                            h = f if g == idk else g if f == idk else then(f, g)
                            enqueue(
                                ("lower", target, src, h),
                                Reason(
                                    "pn-project", (("lower", var, src, f), fact)
                                )
                                if record
                                else None,
                            )
        if budget is not None:
            # Account for the partial interval so step totals stay exact
            # across the online solver's many small drains; the *next*
            # drain's opening charge enforces limits against the total.
            budget.settle(check_every - countdown)
        stats.find_calls = self._uf.find_calls

    def _meet(
        self,
        src: Constructed,
        snk: Constructed,
        ann: Annotation,
        info: Any,
        antecedents: tuple[FactKey, ...] = (),
    ) -> None:
        """Resolve ``c^α(X⃗) ⊆^ann d^β(Y⃗)`` (the first two rules of §3.1)."""
        key = (src, snk, ann)
        if key in self._met:
            return
        self._met.add(key)
        self._record(("met", key))
        if src.constructor != snk.constructor:
            self.inconsistencies.append(Inconsistency(src, snk, ann))
            self._record(("inconsistency",))
            return
        reason = (
            Reason("decompose", antecedents, info)
            if self.record_reasons
            else None
        )
        ctor = src.constructor
        for index, (arg_src, arg_snk) in enumerate(
            zip(src.args, snk.args), start=1
        ):
            if ctor.covariant(index):
                self._dispatch(arg_src, arg_snk, ann, reason)
            else:
                # Contravariant position: the component flow reverses.
                # Only defined for the identity annotation (a reversed
                # annotated flow would need the reversed word).
                if not self._is_identity(ann):
                    raise ConstraintError(
                        f"contravariant argument {index} of {ctor.name!r} "
                        "met under a non-identity annotation"
                    )
                self._dispatch(arg_snk, arg_src, ann, reason)
