"""The bidirectional annotated-constraint solver (Section 3).

The solver maintains the constraint graph in *standard form*:

* ``lower``  — constructed lower bounds ``c(...) ⊆^f X`` per variable,
* ``upper``  — constructed upper bounds ``X ⊆^g c(...)`` per variable,
* ``succ``   — annotated variable-variable edges ``X ⊆^g Y``,
* ``proj``   — projection sinks ``c^{-i}(X) ⊆^g Z`` attached to ``X``,

and closes it under the resolution rules of Section 3.1 with a worklist:

* **transitive closure** — a lower bound reaching ``X`` with annotation
  ``f`` crosses an edge ``X ⊆^g Y`` as ``then(f, g)`` (the paper's
  ``g ∘ f``, a constant-time monoid operation);
* **constructor meet** — when a lower bound ``c^α(X⃗)`` and an upper
  bound ``c^β(Y⃗)`` meet at a variable with combined annotation ``f``,
  component constraints ``X_i ⊆^f Y_i`` are added; mismatched
  constructors are recorded as :class:`~repro.core.errors.Inconsistency`
  (the paper's "no solution");
* **projection** — a lower bound ``c^α(..., X_i, ...)`` meeting a
  projection sink ``c^{-i}(·) ⊆^g Z`` adds the edge ``X_i ⊆ Z`` with the
  composed annotation.

Annotations that are *dead* — provably never part of a word of ``L(M)``
again (``algebra.is_live`` is false) — are dropped at creation, the
pruning Section 3.1 justifies by minimality of ``M``.

Following the paper's implementation (Section 8), constructor-annotation
variables are never materialized during solving; the query engine
(:mod:`repro.core.queries`) reconstructs them on demand.

Solving is *online*: every :meth:`Solver.add` drains the worklist, so
constraints may be intermixed freely with queries — the property the
paper highlights as the advantage of bidirectional solving.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator

from repro.core.annotations import Annotation, UnannotatedAlgebra
from repro.core.budget import Budget
from repro.core.errors import ConstraintError, Inconsistency, NoSolutionError
from repro.core.terms import (
    Constructed,
    Projection,
    SetExpression,
    Variable,
    VariableFactory,
)

FactKey = tuple


@dataclass
class SolverStats:
    """Lightweight monotone counters maintained by the solver.

    Plain integer increments on the hot path (no locks, no callbacks);
    :mod:`repro.service.metrics` snapshots them for the analysis
    service.  ``rollbacks`` counts :meth:`Solver.rollback` calls — it is
    monotone even though rollback removes facts.
    """

    edges_added: int = 0
    lowers_added: int = 0
    uppers_added: int = 0
    projections_added: int = 0
    compositions: int = 0
    facts_deduped: int = 0
    marks: int = 0
    rollbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "edges_added": self.edges_added,
            "lowers_added": self.lowers_added,
            "uppers_added": self.uppers_added,
            "projections_added": self.projections_added,
            "compositions": self.compositions,
            "facts_deduped": self.facts_deduped,
            "marks": self.marks,
            "rollbacks": self.rollbacks,
        }


@dataclass(frozen=True)
class Reason:
    """Provenance of a derived fact: the rule and its antecedent facts.

    ``info`` carries application payload for given constraints (the
    model checker stores the program statement an edge came from, which
    witness extraction turns into an error trace).
    """

    rule: str
    antecedents: tuple[FactKey, ...] = ()
    info: Any = None


class Solver:
    """Online bidirectional solver for regularly annotated set constraints."""

    def __init__(
        self,
        algebra: Any | None = None,
        pn_projections: bool = False,
        prune_dead: bool = True,
        record_reasons: bool = True,
        budget: Budget | None = None,
    ):
        self.algebra = algebra if algebra is not None else UnannotatedAlgebra()
        #: Optional resource governor (see :mod:`repro.core.budget`).
        #: Checked between facts at amortized intervals by every drain;
        #: may be attached or replaced at any point between drains —
        #: warm-started solvers get theirs after loading.
        self.budget = budget
        #: Drop facts whose annotation is necessarily non-accepting (the
        #: Section 3.1 pruning justified by minimality of M).  Disabled
        #: only by the ablation benchmark.
        self.prune_dead = prune_dead
        #: When true, *bare constants* also flow through projections
        #: (``c ⊆ Y`` and ``d^{-i}(Y) ⊆ Z`` give ``c ⊆ Z``).  This is the
        #: "unmatched return" half of PN reachability (Section 6.2): a
        #: value created inside a callee escapes to any caller.  Matched
        #: solving (the default) only extracts properly wrapped terms.
        self.pn_projections = pn_projections
        #: Provenance is only needed by clients that extract witnesses
        #: (the model checker's traces).  Dataflow, flow analysis and the
        #: service's reachability queries never do; with
        #: ``record_reasons=False`` the solver skips the per-fact
        #: :class:`Reason` allocation and the ``_reasons`` dict entirely,
        #: and :meth:`reason` returns ``None`` for every fact.
        self.record_reasons = record_reasons
        self._identity = self.algebra.identity
        self._is_live = self.algebra.is_live
        self._fresh = VariableFactory("tmp")
        # var -> {(source Constructed, annotation)} and so on; values are
        # insertion-ordered dicts so membership tests are O(1) and
        # iteration is deterministic.  The *_seq lists mirror each bucket
        # in insertion order: the drain loop iterates them by index under
        # a length snapshot, which tolerates appends without the per-fact
        # ``list(...)`` copy the dicts would force.  They only diverge
        # from the dicts during rollback, which rebuilds them.
        self._lower: dict[Variable, dict[tuple[Constructed, Annotation], None]] = {}
        self._upper: dict[Variable, dict[tuple[Constructed, Annotation], None]] = {}
        self._succ: dict[Variable, dict[tuple[Variable, Annotation], None]] = {}
        self._pred: dict[Variable, dict[tuple[Variable, Annotation], None]] = {}
        self._proj: dict[
            Variable, dict[tuple[Any, int, Variable, Annotation], None]
        ] = {}
        self._lower_seq: dict[Variable, list[tuple[Constructed, Annotation]]] = {}
        self._upper_seq: dict[Variable, list[tuple[Constructed, Annotation]]] = {}
        self._succ_seq: dict[Variable, list[tuple[Variable, Annotation]]] = {}
        self._proj_seq: dict[
            Variable, list[tuple[Any, int, Variable, Annotation]]
        ] = {}
        self._met: set[tuple[Constructed, Constructed, Annotation]] = set()
        self._reasons: dict[FactKey, Reason] = {}
        self._work: deque[FactKey] = deque()
        self.inconsistencies: list[Inconsistency] = []
        self.facts_processed = 0
        self.stats = SolverStats()
        # Backtracking journal (BANSHEE's toolkit supported constraint
        # retraction): each mark() opens an epoch; every fact recorded
        # while an epoch is open is undone by rollback().  Sound because
        # closure is monotone: facts derivable without the retracted
        # constraints were already present before the mark.
        self._journal: list[list[tuple]] = []

    # -- public API -----------------------------------------------------------

    def fresh(self, hint: str | None = None) -> Variable:
        """A fresh set variable (used by normalization and callers alike)."""
        return self._fresh.fresh(hint)

    def add(
        self,
        lhs: SetExpression,
        rhs: SetExpression,
        annotation: Annotation | None = None,
        info: Any = None,
    ) -> None:
        """Add the constraint ``lhs ⊆^annotation rhs`` and solve online.

        ``annotation`` defaults to the algebra's identity (an
        unannotated constraint).  ``info`` is attached to the
        constraint's provenance for witness extraction.
        """
        ann = self._identity if annotation is None else annotation
        reason = Reason("given", (), info) if self.record_reasons else None
        lhs = self._normalize_lower(lhs, reason)
        rhs = self._normalize_upper(rhs, reason)
        self._dispatch(lhs, rhs, ann, reason)
        self._drain()

    def add_many(
        self,
        constraints: Iterable[tuple],
    ) -> None:
        """Batch form of :meth:`add`: dispatch every constraint, then drain once.

        Each item is ``(lhs, rhs)``, ``(lhs, rhs, annotation)`` or
        ``(lhs, rhs, annotation, info)``, with the same defaults as
        :meth:`add`.  Solving is still online afterwards — the batch
        merely amortizes the worklist drain over the whole group, which
        is how encoders (a few thousand given constraints, queries only
        at the end) avoid paying a drain per constraint.
        """
        record = self.record_reasons
        for item in constraints:
            n = len(item)
            lhs, rhs = item[0], item[1]
            annotation = item[2] if n > 2 else None
            info = item[3] if n > 3 else None
            ann = self._identity if annotation is None else annotation
            reason = Reason("given", (), info) if record else None
            self._dispatch(
                self._normalize_lower(lhs, reason),
                self._normalize_upper(rhs, reason),
                ann,
                reason,
            )
        self._drain()

    @property
    def is_consistent(self) -> bool:
        return not self.inconsistencies

    def check(self) -> None:
        """Raise :class:`NoSolutionError` if a contradiction was found."""
        if self.inconsistencies:
            raise NoSolutionError(str(self.inconsistencies[0]))

    def variables(self) -> set[Variable]:
        keys: set[Variable] = set()
        for table in (self._lower, self._upper, self._succ, self._pred, self._proj):
            for var, bucket in table.items():
                if bucket:
                    keys.add(var)
        return keys

    def lower_bounds(
        self, var: Variable
    ) -> Iterator[tuple[Constructed, Annotation]]:
        """All derived lower bounds ``src ⊆^f var`` (the solved form)."""
        yield from self._lower.get(var, ())

    def upper_bounds(
        self, var: Variable
    ) -> Iterator[tuple[Constructed, Annotation]]:
        yield from self._upper.get(var, ())

    def edges_from(self, var: Variable) -> Iterator[tuple[Variable, Annotation]]:
        yield from self._succ.get(var, ())

    def projection_sinks(
        self, var: Variable
    ) -> Iterator[tuple[Any, int, Variable, Annotation]]:
        yield from self._proj.get(var, ())

    def has_lower(
        self, var: Variable, source: Constructed, annotation: Annotation
    ) -> bool:
        """Is ``source ⊆^annotation var`` present in the solved form?"""
        return (source, annotation) in self._lower.get(var, {})

    def reason(self, fact: FactKey) -> Reason | None:
        """Provenance of a recorded fact, for witness reconstruction."""
        return self._reasons.get(fact)

    # -- backtracking ----------------------------------------------------------

    def mark(self) -> int:
        """Open a retraction epoch; returns its depth (for sanity checks).

        Constraints added after a mark can be undone wholesale with
        :meth:`rollback` — the online analog of re-running without them.
        """
        self._journal.append([])
        self.stats.marks += 1
        return len(self._journal)

    def rollback(self) -> None:
        """Retract everything added since the most recent :meth:`mark`."""
        if not self._journal:
            raise RuntimeError("rollback() without a matching mark()")
        self.stats.rollbacks += 1
        epoch = self._journal.pop()
        touched: set[tuple[str, Variable]] = set()
        for record in reversed(epoch):
            tag = record[0]
            if tag == "lower":
                _t, var, key = record
                self._lower.get(var, {}).pop(key, None)
                self._reasons.pop(("lower", var, *key), None)
                touched.add((tag, var))
            elif tag == "upper":
                _t, var, key = record
                self._upper.get(var, {}).pop(key, None)
                self._reasons.pop(("upper", var, *key), None)
                touched.add((tag, var))
            elif tag == "edge":
                _t, src_var, key = record
                self._succ.get(src_var, {}).pop(key, None)
                dst_var, ann = key
                self._pred.get(dst_var, {}).pop((src_var, ann), None)
                self._reasons.pop(("edge", src_var, dst_var, ann), None)
                touched.add((tag, src_var))
            elif tag == "proj":
                _t, var, key = record
                self._proj.get(var, {}).pop(key, None)
                self._reasons.pop(("proj", var, *key), None)
                touched.add((tag, var))
            elif tag == "met":
                self._met.discard(record[1])
            elif tag == "inconsistency":
                if self.inconsistencies:
                    self.inconsistencies.pop()
        # Re-sync the iteration sequences with the pruned buckets (the
        # only point where they can diverge; drains never remove facts).
        tables = {
            "lower": (self._lower, self._lower_seq),
            "upper": (self._upper, self._upper_seq),
            "edge": (self._succ, self._succ_seq),
            "proj": (self._proj, self._proj_seq),
        }
        for tag, var in touched:
            table, seq = tables[tag]
            seq[var] = list(table.get(var, {}))

    def _record(self, entry: tuple) -> None:
        if self._journal:
            self._journal[-1].append(entry)

    def pending_count(self) -> int:
        """Worklist backlog: facts recorded but not yet resolved against
        their neighbors.  Zero at the fixpoint; nonzero only after an
        interrupted drain (or on a loaded checkpoint)."""
        return len(self._work)

    def resume(self, budget: Budget | None = None) -> None:
        """Continue an interrupted solve to the fixpoint (or next limit).

        After a :class:`~repro.core.errors.SolverInterrupted` the
        worklist still holds everything unprocessed; ``resume`` drains
        it, optionally under a fresh budget (the old one has, by
        definition, just run out).  A no-op when nothing is pending.
        """
        if budget is not None:
            self.budget = budget
        self._drain()

    def fact_count(self) -> int:
        """Number of distinct facts in the solved form (for benchmarks)."""
        return (
            sum(len(v) for v in self._lower.values())
            + sum(len(v) for v in self._upper.values())
            + sum(len(v) for v in self._succ.values())
            + sum(len(v) for v in self._proj.values())
        )

    # -- normalization ---------------------------------------------------------

    def _normalize_lower(
        self, expr: SetExpression, reason: Reason | None
    ) -> SetExpression:
        """Reduce a left-hand side to the paper's grammar.

        Constructor arguments that are not variables are replaced by
        fresh variables bounded from below (covariance makes this
        solution-preserving)."""
        if isinstance(expr, (Variable, Projection)):
            return expr
        if isinstance(expr, Constructed):
            args = []
            for arg in expr.args:
                if isinstance(arg, Variable):
                    args.append(arg)
                else:
                    var = self.fresh("arg")
                    inner = self._normalize_lower(arg, reason)
                    self._dispatch(inner, var, self._identity, reason)
                    args.append(var)
            return Constructed(expr.constructor, tuple(args))
        raise ConstraintError(f"unsupported left-hand side: {expr!r}")

    def _normalize_upper(
        self, expr: SetExpression, reason: Reason | None
    ) -> SetExpression:
        """Reduce a right-hand side; projections are rejected (Section 2.1)."""
        if isinstance(expr, Variable):
            return expr
        if isinstance(expr, Projection):
            raise ConstraintError("projections may not appear on the right-hand side")
        if isinstance(expr, Constructed):
            args = []
            for arg in expr.args:
                if isinstance(arg, Variable):
                    args.append(arg)
                else:
                    var = self.fresh("arg")
                    inner = self._normalize_upper(arg, reason)
                    self._dispatch(var, inner, self._identity, reason)
                    args.append(var)
            return Constructed(expr.constructor, tuple(args))
        raise ConstraintError(f"unsupported right-hand side: {expr!r}")

    def _dispatch(
        self,
        lhs: SetExpression,
        rhs: SetExpression,
        ann: Annotation,
        reason: Reason | None,
    ) -> None:
        if isinstance(lhs, Variable) and isinstance(rhs, Variable):
            self._enqueue(("edge", lhs, rhs, ann), reason)
        elif isinstance(lhs, Constructed) and isinstance(rhs, Variable):
            self._enqueue(("lower", rhs, lhs, ann), reason)
        elif isinstance(lhs, Variable) and isinstance(rhs, Constructed):
            self._enqueue(("upper", lhs, rhs, ann), reason)
        elif isinstance(lhs, Constructed) and isinstance(rhs, Constructed):
            self._meet(lhs, rhs, ann, reason.info)
        elif isinstance(lhs, Projection):
            if isinstance(rhs, Constructed):
                bridge = self.fresh("proj")
                self._enqueue(
                    ("proj", lhs.operand, lhs.constructor, lhs.index, bridge, ann),
                    reason,
                )
                self._enqueue(("upper", bridge, rhs, self._identity), reason)
            else:
                self._enqueue(
                    ("proj", lhs.operand, lhs.constructor, lhs.index, rhs, ann),
                    reason,
                )
        else:
            raise ConstraintError(f"unsupported constraint {lhs!r} ⊆ {rhs!r}")

    # -- worklist machinery -----------------------------------------------------

    def _enqueue(self, fact: FactKey, reason: Reason | None) -> None:
        kind = fact[0]
        if self.prune_dead and not self._is_live(fact[-1]):
            return  # necessarily non-accepting annotation: prune
        if kind == "lower":
            _tag, var, src, ann = fact
            table = self._lower.setdefault(var, {})
            key = (src, ann)
            if key in table:
                self.stats.facts_deduped += 1
                return
            table[key] = None
            self._lower_seq.setdefault(var, []).append(key)
            self._record(("lower", var, key))
            self.stats.lowers_added += 1
        elif kind == "edge":
            _tag, src_var, dst_var, ann = fact
            if src_var == dst_var:
                # A reflexive edge adds nothing for idempotent-free
                # annotations only when the annotation is the identity.
                if ann == self._identity:
                    return
            table = self._succ.setdefault(src_var, {})
            key = (dst_var, ann)
            if key in table:
                self.stats.facts_deduped += 1
                return
            table[key] = None
            self._succ_seq.setdefault(src_var, []).append(key)
            self._pred.setdefault(dst_var, {})[(src_var, ann)] = None
            self._record(("edge", src_var, key))
            self.stats.edges_added += 1
        elif kind == "upper":
            _tag, var, snk, ann = fact
            table = self._upper.setdefault(var, {})
            key = (snk, ann)
            if key in table:
                self.stats.facts_deduped += 1
                return
            table[key] = None
            self._upper_seq.setdefault(var, []).append(key)
            self._record(("upper", var, key))
            self.stats.uppers_added += 1
        elif kind == "proj":
            _tag, var, ctor, index, target, ann = fact
            table = self._proj.setdefault(var, {})
            key = (ctor, index, target, ann)
            if key in table:
                self.stats.facts_deduped += 1
                return
            table[key] = None
            self._proj_seq.setdefault(var, []).append(key)
            self._record(("proj", var, key))
            self.stats.projections_added += 1
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown fact kind {kind!r}")
        if reason is not None:
            self._reasons.setdefault(fact, reason)
        self._work.append(fact)

    def _is_identity(self, ann: Annotation) -> bool:
        return ann == self._identity

    def _drain(self) -> None:
        # Everything this loop touches per derived fact is hoisted into
        # locals: the composition operation, the counters, the iteration
        # sequences.  The sequences are walked by index under a length
        # snapshot — appends made while a fact is being processed are
        # deliberately *not* seen here, exactly like the list(...) copies
        # this replaces: a newly derived fact pairs with its neighbors
        # when its own turn on the worklist comes.
        then = self.algebra.then
        stats = self.stats
        enqueue = self._enqueue
        meet = self._meet
        lower_seq = self._lower_seq
        upper_seq = self._upper_seq
        succ_seq = self._succ_seq
        proj_seq = self._proj_seq
        work = self._work
        record = self.record_reasons
        pn = self.pn_projections
        # Budget governance: with no budget the loop pays one
        # predictable ``is not None`` branch per fact; with one, the
        # full limit evaluation runs at drain start and then every
        # ``check_interval`` facts.  Charges happen *before* a fact is
        # popped, so an interrupt always leaves the worklist holding
        # exactly the unresolved facts — the invariant checkpoint/resume
        # relies on.
        budget = self.budget
        check_every = countdown = 0
        if budget is not None and work:
            check_every = budget.check_interval
            countdown = check_every
            budget.charge(0, self)
        while work:
            if budget is not None:
                countdown -= 1
                if countdown <= 0:
                    countdown = check_every
                    budget.charge(check_every, self)
            fact = work.popleft()
            self.facts_processed += 1
            kind = fact[0]
            if kind == "lower":
                _tag, var, src, f = fact
                seq = succ_seq.get(var)
                if seq:
                    i, n = 0, len(seq)
                    while i < n:
                        dst_var, g = seq[i]
                        i += 1
                        stats.compositions += 1
                        enqueue(
                            ("lower", dst_var, src, then(f, g)),
                            Reason("trans", (fact, ("edge", var, dst_var, g)))
                            if record
                            else None,
                        )
                seq = upper_seq.get(var)
                if seq:
                    i, n = 0, len(seq)
                    while i < n:
                        snk, g = seq[i]
                        i += 1
                        stats.compositions += 1
                        meet(
                            src,
                            snk,
                            then(f, g),
                            None,
                            antecedents=(fact, ("upper", var, snk, g)),
                        )
                seq = proj_seq.get(var)
                if seq:
                    if isinstance(src, Constructed) and src.args:
                        src_ctor = src.constructor
                        i, n = 0, len(seq)
                        while i < n:
                            ctor, index, target, g = seq[i]
                            i += 1
                            if ctor == src_ctor:
                                stats.compositions += 1
                                enqueue(
                                    (
                                        "edge",
                                        src.args[index - 1],
                                        target,
                                        then(f, g),
                                    ),
                                    Reason(
                                        "project",
                                        (
                                            fact,
                                            ("proj", var, ctor, index, target, g),
                                        ),
                                    )
                                    if record
                                    else None,
                                )
                    elif pn and isinstance(src, Constructed):
                        i, n = 0, len(seq)
                        while i < n:
                            ctor, index, target, g = seq[i]
                            i += 1
                            stats.compositions += 1
                            enqueue(
                                ("lower", target, src, then(f, g)),
                                Reason(
                                    "pn-project",
                                    (fact, ("proj", var, ctor, index, target, g)),
                                )
                                if record
                                else None,
                            )
            elif kind == "edge":
                _tag, src_var, dst_var, g = fact
                seq = lower_seq.get(src_var)
                if seq:
                    i, n = 0, len(seq)
                    while i < n:
                        lower_src, f = seq[i]
                        i += 1
                        stats.compositions += 1
                        enqueue(
                            ("lower", dst_var, lower_src, then(f, g)),
                            Reason(
                                "trans",
                                (("lower", src_var, lower_src, f), fact),
                            )
                            if record
                            else None,
                        )
            elif kind == "upper":
                _tag, var, snk, g = fact
                seq = lower_seq.get(var)
                if seq:
                    i, n = 0, len(seq)
                    while i < n:
                        src, f = seq[i]
                        i += 1
                        stats.compositions += 1
                        meet(
                            src,
                            snk,
                            then(f, g),
                            None,
                            antecedents=(("lower", var, src, f), fact),
                        )
            elif kind == "proj":
                _tag, var, ctor, index, target, g = fact
                seq = lower_seq.get(var)
                if seq:
                    i, n = 0, len(seq)
                    while i < n:
                        src, f = seq[i]
                        i += 1
                        if (
                            isinstance(src, Constructed)
                            and src.constructor == ctor
                            and src.args
                        ):
                            stats.compositions += 1
                            enqueue(
                                ("edge", src.args[index - 1], target, then(f, g)),
                                Reason(
                                    "project", (("lower", var, src, f), fact)
                                )
                                if record
                                else None,
                            )
                        elif pn and src.is_constant:
                            stats.compositions += 1
                            enqueue(
                                ("lower", target, src, then(f, g)),
                                Reason(
                                    "pn-project", (("lower", var, src, f), fact)
                                )
                                if record
                                else None,
                            )
        if budget is not None:
            # Account for the partial interval so step totals stay exact
            # across the online solver's many small drains; the *next*
            # drain's opening charge enforces limits against the total.
            budget.settle(check_every - countdown)

    def _meet(
        self,
        src: Constructed,
        snk: Constructed,
        ann: Annotation,
        info: Any,
        antecedents: tuple[FactKey, ...] = (),
    ) -> None:
        """Resolve ``c^α(X⃗) ⊆^ann d^β(Y⃗)`` (the first two rules of §3.1)."""
        key = (src, snk, ann)
        if key in self._met:
            return
        self._met.add(key)
        self._record(("met", key))
        if src.constructor != snk.constructor:
            self.inconsistencies.append(Inconsistency(src, snk, ann))
            self._record(("inconsistency",))
            return
        reason = (
            Reason("decompose", antecedents, info)
            if self.record_reasons
            else None
        )
        ctor = src.constructor
        for index, (arg_src, arg_snk) in enumerate(
            zip(src.args, snk.args), start=1
        ):
            if ctor.covariant(index):
                self._dispatch(arg_src, arg_snk, ann, reason)
            else:
                # Contravariant position: the component flow reverses.
                # Only defined for the identity annotation (a reversed
                # annotated flow would need the reversed word).
                if not self._is_identity(ann):
                    raise ConstraintError(
                        f"contravariant argument {index} of {ctor.name!r} "
                        "met under a non-identity annotation"
                    )
                self._dispatch(arg_snk, arg_src, ann, reason)
