"""Queries over solved constraint systems (Section 3.2).

The solver follows the paper's implementation strategy: representative
function variables on constructors are *not* materialized during
resolution; the entailment computation reconstructs them.  Concretely, a
query asks which constants (base abstract values, such as the program
counter ``pc``) reach a set variable, and with which annotation classes.

:class:`Reachability` computes, for every variable ``X``, the set of
pairs ``(b, f)`` such that the constraints entail that the constant
``b``'s term — possibly nested inside constructors — appears in ``X``
annotated with class ``f``:

* a constructed lower bound ``b ⊆^f X`` contributes ``(b, f)`` directly;
* a lower bound ``c(..., A_i, ...) ⊆^f X`` contributes ``(b, then(g, f))``
  for every ``(b, g)`` reaching the argument variable ``A_i`` — the word
  seen by ``b`` is its own journey followed by the wrapper's journey,
  because ``·`` appends at every level of a term (Section 2.3).

Descending through a constructor that was never projected away is
exactly following a *partially matched* call: with
``through_constructors=True`` the computed relation is PN reachability
(Section 6.2); with ``False`` it is matched-only reachability.

:func:`trace_lower` and :meth:`Reachability.witness` reconstruct witness
paths from the solver's provenance — for the model checker these are the
statement sequences that drive the property automaton to its error
state (the ground terms' constructor spines are the runtime stacks).

:func:`least_solution_terms` enumerates annotated ground terms in a
variable's least solution up to a depth bound, which is what stack-aware
alias queries intersect (Section 7.5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.core.annotations import Annotation
from repro.core.solver import FactKey, Reason, Solver
from repro.core.terms import Constructed, GroundTerm, Variable


@dataclass(frozen=True)
class Origin:
    """How a ``(constant, annotation)`` pair arrived at a variable.

    ``kind`` is ``"direct"`` (a constant lower bound) or ``"nested"``
    (found inside a constructed lower bound); ``lower_fact`` is the
    solver fact it came from, and for nested origins ``inner`` is the
    ``(variable, constant, annotation)`` triple it was lifted from.
    """

    kind: str
    lower_fact: FactKey
    inner: tuple[Variable, Constructed, Annotation] | None = None


class Reachability:
    """Constants (with annotation classes) reaching each variable."""

    def __init__(self, solver: Solver, through_constructors: bool = True):
        self.solver = solver
        self.through_constructors = through_constructors
        self._table: dict[
            Variable, dict[tuple[Constructed, Annotation], Origin]
        ] = {}
        self._compute()

    def _compute(self) -> None:
        solver = self.solver
        # The flat core computes the same table entirely over interned
        # ints and decodes it once at the end — delegate to it.
        reach_table = getattr(solver, "reach_table", None)
        if reach_table is not None:
            self._table = reach_table(self.through_constructors)
            return
        then = solver.algebra.then
        is_live = solver.algebra.is_live
        table = self._table
        # wrappers[A] lists (X, src, outer) for constructed lower bounds
        # src ⊆^outer X that mention A as an argument: a fact arriving at
        # A lifts through each of them (delta propagation — each
        # (fact, wrapper) pair is processed exactly once).  Lifting does
        # NOT require the sibling arguments to be non-empty: constructors
        # are non-strict (§2.1), so ``c(t, ⊥)`` is a term of the domain —
        # this is exactly why the paper's domain carries ⊥.
        wrappers: dict[Variable, list[tuple[Variable, Constructed, Annotation]]] = {}
        work: deque[tuple[Variable, Constructed, Annotation]] = deque()
        find = solver.find
        # Iterate representatives only: merged-away variables share their
        # representative's solved form, and every lookup resolves through
        # find(), so propagating their (identical) buckets again would
        # only duplicate work.
        for var in solver.variables():
            if find(var) != var:
                continue
            bucket = table.setdefault(var, {})
            for src, ann in solver.lower_bounds(var):
                if src.is_constant:
                    key = (src, ann)
                    if key not in bucket:
                        bucket[key] = Origin("direct", ("lower", var, src, ann))
                        work.append((var, src, ann))
                elif self.through_constructors:
                    for arg in src.args:
                        wrappers.setdefault(find(arg), []).append((var, src, ann))
        if not self.through_constructors:
            return
        while work:
            arg, const, inner = work.popleft()
            for target, src, outer in wrappers.get(arg, ()):
                combined = then(inner, outer)
                if not is_live(combined):
                    continue
                bucket = table[target]
                key = (const, combined)
                if key not in bucket:
                    bucket[key] = Origin(
                        "nested",
                        ("lower", target, src, outer),
                        (arg, const, inner),
                    )
                    work.append((target, const, combined))

    # -- lookups ---------------------------------------------------------------

    def _bucket(self, var: Variable) -> dict[tuple[Constructed, Annotation], Origin]:
        # Queries may be phrased with variables that cycle elimination
        # merged away; their solved form lives at the representative.
        return self._table.get(self.solver.find(var), {})

    def facts(
        self, var: Variable
    ) -> Iterator[tuple[Constructed, Annotation, Origin]]:
        for (const, ann), origin in self._bucket(var).items():
            yield const, ann, origin

    def annotations_of(
        self, var: Variable, const: Constructed
    ) -> set[Annotation]:
        return {
            ann for (c, ann), _origin in self._bucket(var).items() if c == const
        }

    def constants(self, var: Variable) -> set[Constructed]:
        return {c for (c, _ann) in self._bucket(var)}

    def reaches(
        self,
        var: Variable,
        const: Constructed,
        accepting: Any = None,
    ) -> bool:
        """Does ``const`` reach ``var`` with an accepting annotation?

        ``accepting`` is a predicate on annotations; it defaults to the
        algebra's ``is_accepting`` (membership of the annotation's words
        in ``L(M)``, i.e. the Section 3.2 entailment query).
        """
        if accepting is None:
            accepting = self.solver.algebra.is_accepting
        return any(accepting(ann) for ann in self.annotations_of(var, const))

    # -- witnesses ---------------------------------------------------------------

    def stack_of(
        self, var: Variable, const: Constructed, annotation: Annotation
    ) -> list[str]:
        """The constructor spine enclosing ``const`` at ``var``.

        Section 6.2: in the model-checking encoding the sequence of
        constructors in a witness term is a possible runtime stack —
        the pending (unreturned) call sites, innermost first.
        """
        origin = self._bucket(var).get((const, annotation))
        stack: list[str] = []
        while origin is not None and origin.kind == "nested":
            _tag, _var, src, _ann = origin.lower_fact
            stack.append(src.constructor.name)
            assert origin.inner is not None
            inner_var, inner_const, inner_ann = origin.inner
            origin = self._table.get(inner_var, {}).get((inner_const, inner_ann))
        return stack

    def witness(
        self, var: Variable, const: Constructed, annotation: Annotation
    ) -> list[Any]:
        """A witness trace (the ``info`` payloads of given constraints).

        Reconstructs one derivation of ``(const, annotation)`` at
        ``var``: the inner journey of the constant, then the wrapper's
        journey, recursively.  Returns the ordered list of non-``None``
        ``info`` values along the derivation.
        """
        origin = self._bucket(var).get((const, annotation))
        if origin is None:
            return []
        if origin.kind == "direct":
            return trace_lower(self.solver, origin.lower_fact)
        assert origin.inner is not None
        inner_var, inner_const, inner_ann = origin.inner
        inner_trace = self.witness(inner_var, inner_const, inner_ann)
        outer_trace = trace_lower(self.solver, origin.lower_fact)
        return inner_trace + outer_trace


def trace_lower(solver: Solver, fact: FactKey) -> list[Any]:
    """Witness trace for a lower-bound fact via provenance unwinding.

    Walks ``trans`` reasons back to the originally given constraint,
    collecting the ``info`` payloads of the constraints whose edges the
    source crossed, in path order.
    """
    trace: list[Any] = []
    seen: set[FactKey] = set()
    cursor: FactKey | None = fact
    suffix: list[Any] = []
    while cursor is not None and cursor not in seen:
        seen.add(cursor)
        reason = solver.reason(cursor)
        if reason is None:
            break
        if reason.rule == "given":
            if reason.info is not None:
                trace.append(reason.info)
            break
        if reason.rule == "trans":
            prev_lower, edge = reason.antecedents
            edge_reason = solver.reason(edge)
            if edge_reason is not None and edge_reason.info is not None:
                suffix.append(edge_reason.info)
            cursor = prev_lower
            continue
        if reason.info is not None:
            trace.append(reason.info)
        break
    trace.extend(reversed(suffix))
    return trace


def least_solution_terms(
    solver: Solver,
    var: Variable,
    max_depth: int = 3,
    max_terms: int = 10_000,
) -> set[GroundTerm]:
    """Annotated ground terms in ``var``'s least solution, to a depth.

    Terms are built from the solved form's lower bounds: a bound
    ``c(A_1, ..., A_k) ⊆^f var`` contributes ``c``-terms whose children
    come from the ``A_i`` and whose every level is appended with ``f``
    (annotations here are algebra elements, not words).  The enumeration
    is cut off at ``max_depth`` constructor levels — recursive
    constraints denote infinite term sets.
    """
    then = solver.algebra.then

    def append(term: GroundTerm, ann: Annotation) -> GroundTerm:
        return GroundTerm(
            term.constructor,
            then(term.annotation, ann),
            tuple(append(child, ann) for child in term.children),
        )

    budget = [max_terms]

    def terms_of(target: Variable, depth: int) -> set[GroundTerm]:
        if depth <= 0 or budget[0] <= 0:
            return set()
        results: set[GroundTerm] = set()
        for src, ann in solver.lower_bounds(target):
            if budget[0] <= 0:
                break
            if src.is_constant:
                results.add(
                    append(GroundTerm(src.constructor, solver.algebra.identity), ann)
                )
                budget[0] -= 1
            else:
                child_sets = [terms_of(arg, depth - 1) for arg in src.args]
                if any(not choices for choices in child_sets):
                    continue
                combos: list[tuple[GroundTerm, ...]] = [()]
                for choices in child_sets:
                    combos = [
                        prefix + (child,)
                        for prefix in combos
                        for child in choices
                    ]
                for children in combos:
                    if budget[0] <= 0:
                        break
                    base = GroundTerm(
                        src.constructor, solver.algebra.identity, children
                    )
                    results.add(append(base, ann))
                    budget[0] -= 1
        return results

    return terms_of(var, max_depth)
