"""Parametric annotations via substitution environments (Section 6.4).

Some properties correlate events on the *same datum* — ``open(x)`` must
be matched by ``close(x)`` for the same descriptor ``x``.  The property
automaton is written once with parameters, and each concrete label
(``fd1``, ``fd2``, ...) conceptually instantiates a fresh copy; the
product of all copies is the real property machine.  Because the solver
is specialized before the program (and hence the set of labels) is
known, instantiation happens *lazily* through substitution environments:

    [(x: fd1) -> f;  (x: fd2) -> g  |  r]

maps instantiated parameter bindings to representative functions of the
single-copy machine, with a *residual* function ``r`` recording the
non-parametric transitions seen so far.  In any environment the residual
has already been incorporated into every existing entry; entries only
consult the residual when a *new* instantiation appears during
composition.  Composition is pointwise: ``(φ1 ∘ φ2)(i) = φ1(i) ∘ φ2(i)``
where ``φ(i)`` is the largest entry compatible with ``i``, falling back
to the residual.

Multiple parameters (Section 6.4.2) are supported: entry keys are sets
of ``(parameter, label)`` pairs; compatible entries merge to the union
of their bindings during composition.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.dfa.automaton import DFA, Symbol
from repro.dfa.monoid import RepresentativeFunction
from repro.core.annotations import MonoidAlgebra

Binding = tuple[str, str]
EntryKey = frozenset[Binding]


def _consistent(left: EntryKey, right: EntryKey) -> bool:
    """No parameter bound to two different labels across the two keys."""
    bindings = dict(left)
    return all(bindings.get(param, label) == label for param, label in right)


def _canonical(key: EntryKey) -> tuple[Binding, ...]:
    return tuple(sorted(key))


class SubstitutionEnvironment:
    """An immutable, hashable substitution environment.

    ``entries`` maps instantiation keys (frozensets of parameter/label
    bindings) to representative functions; ``residual`` is the function
    of the non-parametric transitions.
    """

    __slots__ = ("entries", "residual", "_hash")

    def __init__(
        self,
        entries: Mapping[EntryKey, RepresentativeFunction] | Iterable[
            tuple[EntryKey, RepresentativeFunction]
        ],
        residual: RepresentativeFunction,
    ):
        items = dict(entries)
        normalized = _normalize(items, residual)
        object.__setattr__(
            self,
            "entries",
            tuple(
                sorted(
                    normalized.items(),
                    key=lambda kv: (len(kv[0]), _canonical(kv[0])),
                )
            ),
        )
        object.__setattr__(self, "residual", residual)
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    tuple((_canonical(k), fn) for k, fn in self.entries),
                    residual,
                )
            ),
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SubstitutionEnvironment is immutable")

    # -- lookup --------------------------------------------------------------

    def lookup(self, key: EntryKey) -> RepresentativeFunction:
        """``φ(i)``: the largest entry ``i`` is compatible with, else the
        residual.  Ties are broken canonically (they are behaviourally
        irrelevant after normalization)."""
        best: tuple[int, tuple[Binding, ...]] | None = None
        best_fn = self.residual
        for entry_key, fn in self.entries:
            if len(entry_key) > len(key):
                continue
            if not _consistent(entry_key, key):
                continue
            rank = (len(entry_key), _canonical(entry_key))
            if best is None or rank > best:
                best = rank
                best_fn = fn
        return best_fn

    def domain(self) -> tuple[EntryKey, ...]:
        return tuple(k for k, _fn in self.entries)

    # -- algebra -------------------------------------------------------------

    def then(self, other: "SubstitutionEnvironment") -> "SubstitutionEnvironment":
        """Composition in word order (the paper's ``other ∘ self``).

        The result's domain is every consistent merge of an entry key
        from each side (including the empty key for either side), and
        each merged instantiation composes the two sides' lookups.
        """
        keys: set[EntryKey] = set()
        left_keys = [k for k, _ in self.entries] + [frozenset()]
        right_keys = [k for k, _ in other.entries] + [frozenset()]
        for k1 in left_keys:
            for k2 in right_keys:
                if _consistent(k1, k2):
                    merged = k1 | k2
                    if merged:
                        keys.add(merged)
        entries = {
            key: self.lookup(key).then(other.lookup(key)) for key in keys
        }
        return SubstitutionEnvironment(entries, self.residual.then(other.residual))

    def is_identity(self) -> bool:
        return not self.entries and self.residual.is_identity()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SubstitutionEnvironment)
            and self.entries == other.entries
            and self.residual == other.residual
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = [
            f"({', '.join(f'{p}: {label}' for p, label in _canonical(key))}) -> {fn!r}"
            for key, fn in self.entries
        ]
        return f"[{'; '.join(parts)} | {self.residual!r}]"


def _normalize(
    entries: dict[EntryKey, RepresentativeFunction],
    residual: RepresentativeFunction,
) -> dict[EntryKey, RepresentativeFunction]:
    """Drop entries that lookup would reconstruct anyway.

    An entry is redundant when its function equals the lookup result
    computed from the *remaining* entries and the residual.  Pruning
    keeps environments canonical, so behaviourally equal environments
    compare (and hash) equal — which is what bounds the annotation
    domain and preserves the termination argument of Lemma 3.1.
    """
    kept = dict(entries)
    changed = True
    while changed:
        changed = False
        for key in sorted(kept, key=lambda k: (-len(k), _canonical(k))):
            fn = kept[key]
            trial = dict(kept)
            del trial[key]
            probe = SubstitutionEnvironment.__new__(SubstitutionEnvironment)
            object.__setattr__(
                probe,
                "entries",
                tuple(
                    sorted(
                        trial.items(), key=lambda kv: (len(kv[0]), _canonical(kv[0]))
                    )
                ),
            )
            object.__setattr__(probe, "residual", residual)
            if probe.lookup(key) == fn:
                del kept[key]
                changed = True
    return kept


class ParametricAlgebra:
    """Annotation algebra of substitution environments over one machine.

    ``machine`` is the single-copy property DFA (e.g. Fig 5's file-state
    machine); ``parametric_symbols`` names the alphabet symbols that
    carry parameters, with their parameter name lists.
    """

    def __init__(
        self,
        machine: DFA,
        parametric_symbols: Mapping[str, tuple[str, ...]] | None = None,
        eager: bool = True,
    ):
        self.base = MonoidAlgebra(machine, eager=eager)
        self.machine = machine
        self.parametric_symbols = dict(parametric_symbols or {})
        self.identity = SubstitutionEnvironment({}, self.base.identity)
        self._memo: dict[
            tuple[SubstitutionEnvironment, SubstitutionEnvironment],
            SubstitutionEnvironment,
        ] = {}

    def symbol(
        self, symbol: Symbol, labels: Iterable[str] | None = None
    ) -> SubstitutionEnvironment:
        """The annotation of one program event.

        For a parametric symbol, ``labels`` supplies the concrete labels
        for its parameters (e.g. the descriptor name for ``open(x)``)
        and the result is a single-entry environment with an identity
        residual.  For a plain symbol the result is an empty environment
        whose residual is the symbol's representative function.
        """
        fn = self.base.symbol(symbol)
        params = self.parametric_symbols.get(symbol)
        if params is None:
            if labels is not None:
                raise ValueError(f"symbol {symbol!r} is not parametric")
            return SubstitutionEnvironment({}, fn)
        labels = tuple(labels or ())
        if len(labels) != len(params):
            raise ValueError(
                f"symbol {symbol!r} expects {len(params)} label(s), got {len(labels)}"
            )
        key: EntryKey = frozenset(zip(params, labels))
        return SubstitutionEnvironment({key: fn}, self.base.identity)

    def then(
        self, first: SubstitutionEnvironment, second: SubstitutionEnvironment
    ) -> SubstitutionEnvironment:
        memo_key = (first, second)
        cached = self._memo.get(memo_key)
        if cached is None:
            cached = first.then(second)
            self._memo[memo_key] = cached
        return cached

    def is_live(self, annotation: SubstitutionEnvironment) -> bool:
        if self.base.is_live(annotation.residual):
            return True
        return any(self.base.is_live(fn) for _key, fn in annotation.entries)

    def accepting_instantiations(
        self, annotation: SubstitutionEnvironment
    ) -> list[EntryKey]:
        """Instantiations whose function reaches the accept set."""
        return [
            key for key, fn in annotation.entries if self.base.is_accepting(fn)
        ]

    def is_accepting(self, annotation: SubstitutionEnvironment) -> bool:
        """Accepting for some instantiation, or via the residual alone."""
        if self.base.is_accepting(annotation.residual):
            return True
        return bool(self.accepting_instantiations(annotation))

    def states_of(
        self, annotation: SubstitutionEnvironment
    ) -> dict[EntryKey, int]:
        """Machine state reached from the start, per instantiation."""
        return {
            key: fn(self.machine.start) for key, fn in annotation.entries
        }
