"""Regularly annotated set constraints: terms, algebras, solver, queries.

This subpackage is the paper's primary contribution.  The usual entry
point is :class:`~repro.core.system.AnnotatedConstraintSystem`, which
bundles a property machine, its annotation algebra, the bidirectional
solver and the query engine; the pieces are also usable à la carte.
"""

from repro.core.annotations import (
    CompiledGenKillAlgebra,
    CompiledMonoidAlgebra,
    MonoidAlgebra,
    ProductAlgebra,
    UnannotatedAlgebra,
    compile_algebra,
)
from repro.core.budget import Budget, CancellationToken
from repro.core.errors import (
    ConstraintError,
    Inconsistency,
    JournalCorrupt,
    NoSolutionError,
    SnapshotCorrupt,
    SolverBudgetExceeded,
    SolverCancelled,
    SolverInterrupted,
)
from repro.core.parametric import ParametricAlgebra, SubstitutionEnvironment
from repro.core.persist import (
    dfa_from_dict,
    dfa_to_dict,
    dump_solver,
    load_solver,
    load_solver_snapshot,
    read_snapshot,
    write_snapshot,
    write_solver_snapshot,
)
from repro.core.demand import (
    DemandBackwardSolver,
    DemandForwardSolver,
    DemandSolution,
)
from repro.core.flatcore import FlatSolver
from repro.core.partition import ShardedSolution, ShardPlan, plan_shards, solve_sharded
from repro.core.queries import Reachability, least_solution_terms, trace_lower
from repro.core.semantics import ReferenceSemantics, WordConstraint
from repro.core.solver import Reason, Solver
from repro.core.system import AnnotatedConstraintSystem
from repro.core.terms import (
    Constructed,
    Constructor,
    GroundTerm,
    Projection,
    Variable,
    VariableFactory,
    constant,
    ground,
)
from repro.core.unidirectional import AnnotatedGraph, BackwardSolver, ForwardSolver

__all__ = [
    "AnnotatedConstraintSystem",
    "AnnotatedGraph",
    "BackwardSolver",
    "Budget",
    "CancellationToken",
    "JournalCorrupt",
    "SnapshotCorrupt",
    "SolverBudgetExceeded",
    "SolverCancelled",
    "SolverInterrupted",
    "CompiledGenKillAlgebra",
    "CompiledMonoidAlgebra",
    "ConstraintError",
    "DemandBackwardSolver",
    "DemandForwardSolver",
    "DemandSolution",
    "Constructed",
    "Constructor",
    "FlatSolver",
    "ForwardSolver",
    "GroundTerm",
    "Inconsistency",
    "MonoidAlgebra",
    "NoSolutionError",
    "ParametricAlgebra",
    "ProductAlgebra",
    "Projection",
    "Reachability",
    "Reason",
    "ReferenceSemantics",
    "ShardPlan",
    "ShardedSolution",
    "Solver",
    "SubstitutionEnvironment",
    "UnannotatedAlgebra",
    "Variable",
    "VariableFactory",
    "WordConstraint",
    "compile_algebra",
    "constant",
    "dfa_from_dict",
    "dfa_to_dict",
    "dump_solver",
    "ground",
    "least_solution_terms",
    "load_solver",
    "plan_shards",
    "load_solver_snapshot",
    "read_snapshot",
    "solve_sharded",
    "trace_lower",
    "write_snapshot",
    "write_solver_snapshot",
]
