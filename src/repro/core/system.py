"""Surface-syntax convenience layer over the solver.

The paper's surface syntax annotates constraints with alphabet symbols
(or ε); internally these are translated to representative functions.
:class:`AnnotatedConstraintSystem` performs that translation and couples
a solver with its query engine, so applications and examples read like
the paper::

    system = AnnotatedConstraintSystem(one_bit_machine())
    X, Y = system.var("X"), system.var("Y")
    system.add(c, X, "g")          # c ⊆^g X
    system.add(X, Y)               # X ⊆ Y
    system.reaches(Y, c)           # is c in Y along a word of L(M)?
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.annotations import MonoidAlgebra
from repro.core.queries import Reachability, least_solution_terms
from repro.core.solver import Solver
from repro.core.terms import (
    Constructed,
    Constructor,
    Projection,
    SetExpression,
    Variable,
)
from repro.dfa.automaton import DFA, Symbol
from repro.dfa.monoid import RepresentativeFunction


class AnnotatedConstraintSystem:
    """An annotated constraint system over a property machine ``M``."""

    def __init__(self, machine: DFA, eager: bool = True):
        self.machine = machine
        self.algebra = MonoidAlgebra(machine, eager=eager)
        self.solver = Solver(self.algebra)
        self._vars: dict[str, Variable] = {}
        self._reachability: Reachability | None = None

    # -- construction ---------------------------------------------------------

    def var(self, name: str) -> Variable:
        """An interned set variable with the given name."""
        existing = self._vars.get(name)
        if existing is None:
            existing = Variable(name)
            self._vars[name] = existing
        return existing

    def constant(self, name: str) -> Constructed:
        return Constructor(name, 0)()

    def constructor(self, name: str, arity: int) -> Constructor:
        return Constructor(name, arity)

    def annotation(self, word: Symbol | Iterable[Symbol] | None) -> RepresentativeFunction:
        """Translate a surface annotation (symbol, word, or None for ε)."""
        if word is None:
            return self.algebra.identity
        if isinstance(word, (str, bytes)):
            # Strings are single alphabet symbols, not character words.
            return self.algebra.symbol(word)
        try:
            if word in self.machine.alphabet:
                return self.algebra.symbol(word)
        except TypeError:
            pass  # unhashable: must be a word (e.g. a list of symbols)
        return self.algebra.word(word)

    def add(
        self,
        lhs: SetExpression,
        rhs: SetExpression,
        word: Symbol | Iterable[Symbol] | None = None,
        info: Any = None,
    ) -> None:
        """Add ``lhs ⊆^word rhs``; ``word`` is a symbol, a word, or None."""
        self.solver.add(lhs, rhs, self.annotation(word), info=info)
        self._reachability = None

    # -- queries ----------------------------------------------------------------

    def reachability(self, through_constructors: bool = True) -> Reachability:
        if self._reachability is None:
            self._reachability = Reachability(
                self.solver, through_constructors=through_constructors
            )
        return self._reachability

    def reaches(
        self,
        var: Variable,
        const: Constructed,
        target_states: Iterable[int] | None = None,
    ) -> bool:
        """Entailment query: is ``const`` in ``var`` along a full word?

        ``target_states`` overrides the machine's accept set (the
        general query of Section 3.2, used e.g. to ask whether a file is
        left in the *Opened* state rather than the error state).
        """
        if target_states is None:
            accepting = None
        else:
            targets = set(target_states)
            start = self.machine.start

            def accepting(ann: RepresentativeFunction) -> bool:
                return ann(start) in targets

        return self.reachability().reaches(var, const, accepting)

    def annotations_of(
        self, var: Variable, const: Constructed
    ) -> set[RepresentativeFunction]:
        return self.reachability().annotations_of(var, const)

    def witness(
        self, var: Variable, const: Constructed, annotation: RepresentativeFunction
    ) -> list[Any]:
        return self.reachability().witness(var, const, annotation)

    def terms_of(self, var: Variable, max_depth: int = 3):
        return least_solution_terms(self.solver, var, max_depth=max_depth)

    @property
    def is_consistent(self) -> bool:
        return self.solver.is_consistent
