"""A demand-driven forward solver with summarization (Section 5 realized).

The paper's Section 5 argues forward solving needs only the right
congruence — machine *states* instead of representative functions — so
at most ``|S|`` derived annotations arise per variable, versus up to
``|S|^|S|`` bidirectionally.  It also notes (Section 9) that no forward
or backward solver for set constraints was publicly available; BANSHEE
only shipped the bidirectional one.  This module supplies the missing
artifact for the fragment every application in the paper uses:

* annotated variable-variable constraints ``X ⊆^w Y``,
* constructed lower bounds ``c(X₁..Xₖ) ⊆ Y`` (the call/"wrap" edges),
* projections ``c^{-i}(Y) ⊆ Z`` (the return/"unwrap" edges),
* constant sources ``b ⊆^w X``.

Solving is *demand driven*: pick one source constant and tabulate the
facts ``(variable, machine state)`` it induces, RHS-style (the IFDS
algorithm shape): a fact crossing a wrap edge opens a new *level*
anchored at the callee-side fact; facts reaching an unwrap edge
register *summaries* on their level, which resume every matching
caller.  Constructor/projection matching is exact (same constructor,
same argument position); the regular property rides along in the state
component.  Facts at pending levels are PN reachability; facts whose
level is the root are matched-only.

Complexity: path edges are (anchor, fact) pairs with at most
``n·|S|`` facts per level and ``n·|S|`` anchors — the forward bound of
Section 5, with the usual summarization factors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.core.cycles import DEFAULT_SEARCH_BOUND, UnionFind, find_identity_cycle
from repro.core.errors import ConstraintError
from repro.core.terms import (
    Constructed,
    Projection,
    SetExpression,
    Variable,
)
from repro.dfa.automaton import DFA, Symbol

#: A wrap/unwrap site: (constructor name, arity, argument position).
Site = tuple[str, int, int]

Fact = tuple[Variable, int]  # (variable, machine state)
Anchor = tuple[Variable, int]  # the entry fact anchoring a level


@dataclass
class _Graph:
    plain: dict[Variable, list[tuple[Variable, tuple[Symbol, ...]]]] = field(
        default_factory=dict
    )
    wraps: dict[Variable, list[tuple[Site, Variable]]] = field(default_factory=dict)
    unwraps: dict[Variable, list[tuple[Site, Variable]]] = field(
        default_factory=dict
    )
    sources: dict[str, list[tuple[Variable, tuple[Symbol, ...]]]] = field(
        default_factory=dict
    )


def _empty_word(word: tuple) -> bool:
    return not word


class DemandForwardSolver:
    """Forward, demand-driven solving over states of the property DFA.

    Cycles of empty-word plain edges collapse online (see
    :mod:`repro.core.cycles`): their members receive identical state
    sets, so tabulation runs over the merged node once.  Queries resolve
    merged variables through :meth:`find`.
    """

    def __init__(
        self,
        machine: DFA,
        cycle_elim: bool = True,
        cycle_search_bound: int = DEFAULT_SEARCH_BOUND,
    ):
        self.machine = machine
        self.cycle_elim = cycle_elim
        self.cycle_search_bound = cycle_search_bound
        self._live = machine.coreachable_states()
        self._graph = _Graph()
        self._uf = UnionFind()
        # Reverse index of empty-word plain edges, for cycle detection.
        self._eps_pred: dict[Variable, list[tuple[Variable, tuple]]] = {}
        #: Composition accounting across :meth:`solve` calls: the same
        #: fact tabulated at two anchors used to re-run every successor
        #: word through the machine; the ``(state, word)`` memo
        #: short-circuits those — ``compose_evals`` counts only the
        #: pairs actually evaluated.
        self.compose_calls = 0
        self.compose_evals = 0
        self._run_memo: dict[tuple[int, tuple[Symbol, ...]], int] = {}

    def find(self, var: Variable) -> Variable:
        uf = self._uf
        if not uf.parent:
            return var
        return uf.find(var)

    def _collapse(self, cycle: list[Variable]) -> None:
        winner = min(cycle, key=lambda v: v.name)
        find = self.find
        graph = self._graph
        for loser in cycle:
            if loser == winner:
                continue
            self._uf.union(winner, loser)
            plain = graph.plain.pop(loser, None)
            if plain:
                bucket = graph.plain.setdefault(winner, [])
                for dst, word in plain:
                    dst = find(dst)
                    if dst == winner and not word:
                        continue
                    bucket.append((dst, word))
            for table in (graph.wraps, graph.unwraps):
                moved = table.pop(loser, None)
                if moved:
                    table.setdefault(winner, []).extend(moved)
            eps = self._eps_pred.pop(loser, None)
            if eps:
                bucket = self._eps_pred.setdefault(winner, [])
                for pred, word in eps:
                    pred = find(pred)
                    if pred != winner:
                        bucket.append((pred, word))

    # -- constraint loading -----------------------------------------------------

    def add(
        self,
        lhs: SetExpression,
        rhs: SetExpression,
        word: Iterable[Symbol] = (),
    ) -> None:
        """Load one constraint of the supported forward fragment."""
        word = tuple(word)
        if isinstance(lhs, Variable) and isinstance(rhs, Variable):
            src, dst = self.find(lhs), self.find(rhs)
            if src == dst and not word:
                return  # an empty-word self-loop adds nothing
            self._graph.plain.setdefault(src, []).append((dst, word))
            if not word:
                self._eps_pred.setdefault(dst, []).append((src, ()))
                if self.cycle_elim:
                    cycle = find_identity_cycle(
                        self._eps_pred,
                        self.find,
                        _empty_word,
                        src,
                        dst,
                        self.cycle_search_bound,
                    )
                    if cycle is not None:
                        self._collapse(cycle)
            return
        if isinstance(lhs, Constructed) and isinstance(rhs, Variable):
            if word:
                raise ConstraintError(
                    "annotated constructed bounds are not in the forward fragment"
                )
            if lhs.is_constant:
                self._graph.sources.setdefault(lhs.constructor.name, []).append(
                    (rhs, ())
                )
                return
            for position, arg in enumerate(lhs.args, start=1):
                if not isinstance(arg, Variable):
                    raise ConstraintError("constructor arguments must be variables")
                site: Site = (lhs.constructor.name, lhs.constructor.arity, position)
                self._graph.wraps.setdefault(self.find(arg), []).append((site, rhs))
            return
        if isinstance(lhs, Projection) and isinstance(rhs, Variable):
            if word:
                raise ConstraintError(
                    "annotated projections are not in the forward fragment"
                )
            site = (lhs.constructor.name, lhs.constructor.arity, lhs.index)
            self._graph.unwraps.setdefault(self.find(lhs.operand), []).append(
                (site, rhs)
            )
            return
        raise ConstraintError(f"unsupported constraint {lhs!r} ⊆ {rhs!r}")

    def add_source(
        self, name: str, var: Variable, word: Iterable[Symbol] = ()
    ) -> None:
        """Declare a constant source ``name ⊆^word var``."""
        self._graph.sources.setdefault(name, []).append((var, tuple(word)))

    # -- tabulation ----------------------------------------------------------------

    def solve(self, source: str) -> "DemandSolution":
        """Tabulate all facts induced by one source constant."""
        machine = self.machine
        graph = self._graph
        live = self._live
        plain = graph.plain
        wraps = graph.wraps
        unwraps = graph.unwraps
        find = self.find

        path_edges: set[tuple[Anchor, Fact]] = set()
        work: deque[tuple[Anchor, Fact]] = deque()
        callers: dict[Anchor, set[tuple[Site, Anchor]]] = {}
        summaries: dict[Anchor, set[tuple[Site, Variable, int]]] = {}
        roots: set[Anchor] = set()
        parents: dict[tuple[Anchor, Fact], tuple[Anchor, Fact] | None] = {}

        def propagate(
            anchor: Anchor,
            fact: Fact,
            parent: tuple[Anchor, Fact] | None = None,
        ) -> None:
            edge = (anchor, fact)
            if edge not in path_edges:
                path_edges.add(edge)
                parents[edge] = parent
                work.append(edge)

        for var, word in graph.sources.get(source, ()):
            state = machine.run(word)
            if state in live:
                root: Anchor = (find(var), state)
                roots.add(root)
                propagate(root, root)

        run_memo = self._run_memo
        while work:
            edge = work.popleft()
            anchor, (var, state) = edge
            for succ, word in plain.get(var, ()):
                self.compose_calls += 1
                key = (state, word)
                next_state = run_memo.get(key)
                if next_state is None:
                    self.compose_evals += 1
                    next_state = run_memo[key] = machine.run(word, state)
                if next_state in live:
                    # Edges recorded before a later merge may still name
                    # a merged-away variable; resolve at use.
                    propagate(anchor, (find(succ), next_state), edge)
            for site, entry in wraps.get(var, ()):
                callee_anchor: Anchor = (find(entry), state)
                callers.setdefault(callee_anchor, set()).add((site, anchor))
                propagate(callee_anchor, callee_anchor, edge)
                for summary_site, target, exit_state in summaries.get(
                    callee_anchor, ()
                ):
                    if summary_site == site:
                        propagate(anchor, (find(target), exit_state), edge)
            for site, target in unwraps.get(var, ()):
                target = find(target)
                summary = (site, target, state)
                bucket = summaries.setdefault(anchor, set())
                if summary not in bucket:
                    bucket.add(summary)
                    for caller_site, caller_anchor in callers.get(anchor, ()):
                        if caller_site == site:
                            propagate(caller_anchor, (target, state), edge)

        return DemandSolution(self, source, path_edges, roots, parents)


class DemandSolution:
    """Query view over one source's tabulated facts."""

    def __init__(
        self,
        solver: DemandForwardSolver,
        source: str,
        path_edges: set[tuple[Anchor, Fact]],
        roots: set[Anchor],
        parents: dict[tuple[Anchor, Fact], tuple[Anchor, Fact] | None]
        | None = None,
    ):
        self.solver = solver
        self.source = source
        self._roots = roots
        self._parents = parents or {}
        self._pn: dict[Variable, set[int]] = {}
        self._matched: dict[Variable, set[int]] = {}
        self._edges_at: dict[Fact, tuple[Anchor, Fact]] = {}
        for anchor, (var, state) in path_edges:
            self._pn.setdefault(var, set()).add(state)
            self._edges_at.setdefault((var, state), (anchor, (var, state)))
            if anchor in roots:
                self._matched.setdefault(var, set()).add(state)
        self.fact_count = len(path_edges)

    def states_of(self, var: Variable, matched_only: bool = False) -> set[int]:
        """Machine states the source reaches ``var`` with.

        ``matched_only=False`` (default) is PN reachability — states
        inside pending wraps are included; ``matched_only=True``
        restricts to root-level (fully matched) facts.
        """
        table = self._matched if matched_only else self._pn
        return set(table.get(self.solver.find(var), set()))

    def reaches(
        self,
        var: Variable,
        target_states: Iterable[int] | None = None,
        matched_only: bool = False,
    ) -> bool:
        states = self.states_of(var, matched_only)
        if target_states is None:
            return bool(states & self.solver.machine.accepting)
        return bool(states & set(target_states))

    def variables(self) -> set[Variable]:
        return set(self._pn)

    def max_states_per_variable(self) -> int:
        """The Section 5 bound in action: at most ``|S|``."""
        return max((len(s) for s in self._pn.values()), default=0)

    def trace(self, var: Variable, state: int) -> list[Fact]:
        """One derivation path for the fact ``(var, state)``.

        Returns the sequence of ``(variable, state)`` facts from the
        source to the queried fact (the tabulation's parent chain).
        Empty if the fact was never derived.
        """
        edge = self._edges_at.get((self.solver.find(var), state))
        if edge is None:
            return []
        steps: list[Fact] = []
        cursor: tuple[Anchor, Fact] | None = edge
        seen: set[tuple[Anchor, Fact]] = set()
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            steps.append(cursor[1])
            cursor = self._parents.get(cursor)
        steps.reverse()
        return steps


class DemandBackwardSolver:
    """The backward strategy of Section 5, by reduction to forward.

    Backward solving uses the *left* congruence — classes of words
    interchangeable as suffixes — whose representatives are the states
    of the reversed machine's minimal DFA.  Operationally, backward
    demand solving over a constraint graph is exactly forward demand
    solving over the **reversed** graph with the **reversed** machine:

    * an edge ``X ⊆^w Y`` reverses to ``Y → X`` reading ``reverse(w)``;
    * a wrap edge (constructor argument into a bound) reverses into an
      unwrap edge and vice versa — leaving a constructor backward is
      entering it forward;
    * the demanded *target* variable becomes the (single) source.

    ``solve_to(X)`` tabulates, for every variable ``V``, the reversed-
    machine states of path words ``V → X``; ``V`` can reach ``X`` along
    a word of ``L(M)`` iff one of those states accepts in the reversed
    machine.  Derived annotations per variable are bounded by the
    reversed machine's state count — the Section 5.1 backward bound.
    """

    _TARGET = "__target__"

    def __init__(
        self,
        machine: DFA,
        cycle_elim: bool = True,
        cycle_search_bound: int = DEFAULT_SEARCH_BOUND,
    ):
        self.machine = machine
        self.reversed_machine = machine.reverse()
        self._forward = DemandForwardSolver(
            self.reversed_machine,
            cycle_elim=cycle_elim,
            cycle_search_bound=cycle_search_bound,
        )

    def add(
        self,
        lhs: SetExpression,
        rhs: SetExpression,
        word: Iterable[Symbol] = (),
    ) -> None:
        """Load one constraint; it is stored reversed."""
        word = tuple(word)
        if isinstance(lhs, Variable) and isinstance(rhs, Variable):
            self._forward.add(rhs, lhs, tuple(reversed(word)))
            return
        if isinstance(lhs, Constructed) and isinstance(rhs, Variable):
            if word:
                raise ConstraintError(
                    "annotated constructed bounds are not in the backward fragment"
                )
            if lhs.is_constant:
                # Constant sources are forward-only; record for queries.
                self._forward.add_source(lhs.constructor.name, rhs)
                return
            ctor = lhs.constructor
            for position, arg in enumerate(lhs.args, start=1):
                if not isinstance(arg, Variable):
                    raise ConstraintError("constructor arguments must be variables")
                self._forward.add(ctor.proj(position, rhs), arg)
            return
        if isinstance(lhs, Projection) and isinstance(rhs, Variable):
            if word:
                raise ConstraintError(
                    "annotated projections are not in the backward fragment"
                )
            args = tuple(
                rhs if index == lhs.index else Variable(f"_any{index}")
                for index in range(1, lhs.constructor.arity + 1)
            )
            self._forward.add(Constructed(lhs.constructor, args), lhs.operand)
            return
        raise ConstraintError(f"unsupported constraint {lhs!r} ⊆ {rhs!r}")

    def solve_to(self, target: Variable) -> DemandSolution:
        """Tabulate which variables reach ``target``, with suffix classes."""
        name = f"{self._TARGET}{target.name}"
        self._forward.add_source(name, target)
        return self._forward.solve(name)

    def can_reach(
        self, solution: DemandSolution, var: Variable, matched_only: bool = False
    ) -> bool:
        """Can ``var`` reach the demanded target along a word of L(M)?"""
        states = solution.states_of(var, matched_only=matched_only)
        return bool(states & self.reversed_machine.accepting)
