"""Resource budgets and cooperative cancellation for solving.

The paper's own complexity bound — ``O(n³ |F_M^≡|²)`` for bidirectional
solving (Section 4) — means adversarial or just unlucky workloads can
blow up combinatorially.  A production deployment must be able to say
"spend at most this much" and to *stop* a solve that a client has given
up on, without corrupting the constraint graph.  This module provides
both:

* :class:`CancellationToken` — a thread-safe flag a *different* thread
  (a server's timeout handler, a shutdown path) sets to ask the solving
  thread to stop at its next check point;
* :class:`Budget` — step / wall-clock / fact-count limits plus an
  optional token, charged by the solver drain loops.

The contract with the drain loops (:meth:`repro.core.solver.Solver._drain`
and the unidirectional solvers) is:

* limits are checked **between facts only** — at the start of a drain
  and then every :attr:`Budget.check_interval` processed facts — so an
  interrupt never leaves a fact half-resolved and the solver state is
  always consistent and resumable;
* the check is amortized: with no budget attached the hot loop pays a
  single predictable-branch ``is not None`` test per fact, and with one
  attached the full limit evaluation runs once per ``check_interval``
  facts (see docs/PERFORMANCE.md for measurements);
* on violation the drain raises
  :class:`~repro.core.errors.SolverBudgetExceeded` (which limit, plus
  partial-progress stats) or
  :class:`~repro.core.errors.SolverCancelled`; the pending worklist is
  preserved, so :meth:`~repro.core.solver.Solver.resume` — or a
  checkpoint dump followed by a later load — picks up exactly where the
  interrupted solve stopped.

A :class:`Budget` is single-use in spirit but deliberately reusable
across drains of one logical solve: ``steps`` accumulates over every
drain it governs, which is what makes ``max_steps`` meaningful for the
online solver's many small :meth:`~repro.core.solver.Solver.add`
drains, not just one big batch.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.core.errors import SolverBudgetExceeded, SolverCancelled

#: Default number of facts processed between full limit evaluations.
DEFAULT_CHECK_INTERVAL = 1024


class CancellationToken:
    """A one-way, thread-safe "please stop" flag.

    ``cancel()`` may be called from any thread, any number of times.
    The solving thread observes it at its next budget check point and
    raises :class:`~repro.core.errors.SolverCancelled`.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"<CancellationToken {state}>"


class Budget:
    """Resource limits for a solve, charged by the drain loops.

    Any subset of the limits may be set:

    * ``max_steps`` — facts processed (across every drain this budget
      governs);
    * ``max_seconds`` — wall-clock seconds, measured from the first
      charge (so time spent queued before solving starts is not billed);
    * ``max_facts`` — solved-form size (``fact_count()`` of the charged
      solver; evaluated only at check points since it is O(variables));
    * ``token`` — a :class:`CancellationToken` checked first at every
      check point.

    ``check_interval`` tunes the amortization: smaller values interrupt
    more promptly but evaluate limits more often.  Tests pin it to 1 for
    determinism; production callers should keep the default.
    """

    __slots__ = (
        "max_steps",
        "max_seconds",
        "max_facts",
        "token",
        "check_interval",
        "steps",
        "started_at",
    )

    def __init__(
        self,
        max_steps: int | None = None,
        max_seconds: float | None = None,
        max_facts: int | None = None,
        token: CancellationToken | None = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
    ):
        for name, value in (
            ("max_steps", max_steps),
            ("max_seconds", max_seconds),
            ("max_facts", max_facts),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if check_interval < 1:
            raise ValueError(f"check_interval must be >= 1, got {check_interval!r}")
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self.max_facts = max_facts
        self.token = token
        # A step limit smaller than the check interval would never be
        # enforced mid-drain; clamp so the enforcement grain matches the
        # limit's scale.
        if max_steps is not None:
            check_interval = min(check_interval, max_steps)
        self.check_interval = int(check_interval)
        #: Facts processed under this budget so far (across drains).
        self.steps = 0
        #: ``time.monotonic()`` of the first charge; None until then.
        self.started_at: float | None = None

    def tighten(
        self,
        max_steps: int | None = None,
        max_seconds: float | None = None,
        max_facts: int | None = None,
    ) -> "Budget":
        """Lower limits in place — never loosen — and return ``self``.

        Lets an outer governor (a server's per-request deadline) fold in
        a client-requested budget without allocating a second object.
        """
        if max_steps is not None:
            self.max_steps = (
                max_steps if self.max_steps is None else min(self.max_steps, max_steps)
            )
            self.check_interval = min(self.check_interval, self.max_steps)
        if max_seconds is not None:
            self.max_seconds = (
                max_seconds
                if self.max_seconds is None
                else min(self.max_seconds, max_seconds)
            )
        if max_facts is not None:
            self.max_facts = (
                max_facts if self.max_facts is None else min(self.max_facts, max_facts)
            )
        return self

    # -- accounting ------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Wall seconds since the first charge (0.0 before it)."""
        if self.started_at is None:
            return 0.0
        return time.monotonic() - self.started_at

    def progress(self, source: Any = None) -> dict:
        """Partial-progress stats, attached to interrupt exceptions.

        ``source`` is the interrupted solver (anything exposing
        ``fact_count()`` / ``pending_count()``); both entries are
        omitted when unavailable.
        """
        stats: dict[str, Any] = {
            "steps": self.steps,
            "elapsed_s": round(self.elapsed, 6),
        }
        if source is not None:
            fact_count = getattr(source, "fact_count", None)
            if fact_count is not None:
                stats["facts"] = fact_count()
            pending_count = getattr(source, "pending_count", None)
            if pending_count is not None:
                stats["pending"] = pending_count()
        return stats

    def settle(self, steps: int) -> None:
        """Record steps without enforcing limits (end-of-drain remainder).

        Keeps ``steps`` equal to the true number of processed facts even
        when a drain finishes between check points; the *next* drain's
        opening charge enforces the limits against the settled total.
        """
        self.steps += steps

    def charge(self, steps: int, source: Any = None) -> None:
        """Consume ``steps`` and raise if any limit is now breached.

        Called by the drain loops at their check points; raising here is
        safe because the caller guarantees no fact is mid-resolution.
        """
        self.steps += steps
        if self.started_at is None:
            self.started_at = time.monotonic()
        token = self.token
        if token is not None and token.cancelled:
            raise SolverCancelled(
                "solve cancelled", progress=self.progress(source)
            )
        if self.max_steps is not None and self.steps >= self.max_steps:
            raise SolverBudgetExceeded(
                "steps",
                f"step budget exhausted ({self.steps} >= {self.max_steps})",
                progress=self.progress(source),
            )
        if self.max_seconds is not None and self.elapsed >= self.max_seconds:
            raise SolverBudgetExceeded(
                "seconds",
                f"time budget exhausted "
                f"({self.elapsed:.3f}s >= {self.max_seconds}s)",
                progress=self.progress(source),
            )
        if self.max_facts is not None and source is not None:
            fact_count = getattr(source, "fact_count", None)
            if fact_count is not None and fact_count() >= self.max_facts:
                raise SolverBudgetExceeded(
                    "facts",
                    f"fact budget exhausted "
                    f"({fact_count()} >= {self.max_facts})",
                    progress=self.progress(source),
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limits = ", ".join(
            f"{name}={value}"
            for name, value in (
                ("max_steps", self.max_steps),
                ("max_seconds", self.max_seconds),
                ("max_facts", self.max_facts),
            )
            if value is not None
        )
        return f"<Budget {limits or 'unlimited'} steps={self.steps}>"
