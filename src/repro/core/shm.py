"""Shared-memory arenas: zero-copy transfer of compiled tables and columns.

The multi-process tier (``repro.service.dispatch``,
``repro.core.partition``) used to move everything through pickle: each
pool worker recompiled its own copy of the Section-8 composition tables
at startup, and every shard result crossed the process boundary as a
JSON dump the parent re-interned fact by fact.  This module replaces
both copies with ``multiprocessing.shared_memory`` segments that all
processes on the machine *map*, never duplicate:

* :func:`publish_algebra` / :func:`attach_algebra` — a compiled
  annotation algebra's dense composition table, liveness/acceptance
  predicates and element (representative-function) table as read-only
  flat int64/byte buffers, keyed by machine fingerprint.  The attached
  :class:`~repro.core.annotations.CompiledMonoidAlgebra` indexes
  memoryview rows of the arena instead of owning tuples; the numpy
  backend views the same bytes via ``frombuffer``.
* :func:`publish_columns` / :func:`attach_columns` — a
  :class:`~repro.core.flatcore.FlatSolver` solved form as its raw
  int-interned parallel columns (the flat core's native layout) plus
  the variable/term intern tables.  The attach path hands the column
  views straight to :meth:`FlatSolver.attach_columns`, which keeps them
  *frozen* (copy-on-write: a column is materialized only if a later
  fact actually mutates it).

Segment layout reuses the persist v3 conventions — a versioned ASCII
header carrying a full-payload sha256 and an explicit size::

    #repro-shm v1 sha256=<64 hex> size=<20 digits>\\n   (112 bytes)
    <8-byte LE meta length> <meta JSON, space-padded to 8-byte multiple>
    <binary sections, each padded to an 8-byte multiple>

``meta["sections"]`` maps section names to ``[offset, length]`` within
the binary area, so every consumer slices (never parses) its data.  The
header is fixed-width so the binary area is always 8-byte aligned for
``memoryview.cast("q")`` and ``numpy.frombuffer``.

Lifecycle.  Segments are named ``repro_shm.<owner pid>.<seq>.<nonce>``;
the registry refcounts per-process attachments (:meth:`Arena.incref` /
:meth:`Arena.decref` — the owner's final decref unlinks).  Column
segments are created by a worker, adopted by the parent, and unlinked
immediately after attach (the mapping outlives the name).  A process
that dies holding segments — ``kill -9`` mid-solve — leaves orphans
whose owner pid is embedded in the name; :func:`cleanup_stale` unlinks
any segment whose owner is no longer alive, and runs at pool startup
and on every pool self-heal (see RECOVERY.md).

Availability.  Everything degrades to the existing pickle path:
:func:`shm_available` is false when the platform lacks POSIX shared
memory or when ``REPRO_SHM_DISABLE`` is set to a non-empty value other
than ``0`` (the CI saturation matrix forces both sides).  Callers are
expected to try the arena and fall back, counting the outcome in the
``transfer.shm_attaches`` / ``transfer.pickle_fallbacks`` metrics.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import threading
import weakref
from array import array
from typing import Any, Iterable

from repro.core.errors import SnapshotCorrupt

__all__ = [
    "Arena",
    "DISABLE_ENV",
    "algebra_fingerprint",
    "attach",
    "attach_algebra",
    "attach_columns",
    "cleanup_stale",
    "publish_algebra",
    "publish_columns",
    "shm_available",
]

SHM_MAGIC = "#repro-shm"
SHM_VERSION = 1
#: Set to any non-empty value other than ``"0"`` to force the pickle
#: fallback everywhere (the CI saturation matrix exercises both sides).
DISABLE_ENV = "REPRO_SHM_DISABLE"

#: Segment name prefix; the dot-separated second field is the owner pid
#: (:func:`cleanup_stale` parses it to find orphans).
_PREFIX = "repro_shm."

#: Fixed header width: ``#repro-shm v1 sha256=`` (21) + 64 hex + ``
#: size=`` (6) + 20 digits + newline — 112 bytes, a multiple of 8 so
#: the payload area is int64-aligned.
_HEADER_LEN = 112

_LOCK = threading.Lock()
_SEQ = 0
#: name -> Arena, every segment this process currently has mapped *and*
#: still named (unlinked arenas drop out so they die with their owner).
_REGISTRY: dict[str, "Arena"] = {}
#: publish key (fingerprint) -> segment name, for publish deduping.
_PUBLISHED: dict[str, str] = {}
#: Weak view of every arena ever mapped, for exit-time disarming (a
#: weak set so an unlinked arena is collected with the solver using it).
_ALL: "weakref.WeakSet[Arena]" = weakref.WeakSet()
_PROBED: bool | None = None


def _disabled() -> bool:
    value = os.environ.get(DISABLE_ENV, "")
    return bool(value) and value != "0"


def _shared_memory_cls() -> Any:
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory


def _untrack(shm: Any) -> None:
    """Detach a segment from the resource tracker.

    The tracker unlinks every registered segment when its process
    exits, which is wrong for both sides of our protocol: a recycled
    pool worker must not destroy the arena the parent and its siblings
    still map, and a worker's result segment must survive until the
    parent adopts it.  Lifecycle is owned by the registry refcounts
    plus :func:`cleanup_stale` instead.
    """
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _unlink_segment(shm: Any) -> None:
    """Unlink a segment's name without touching the resource tracker.

    ``SharedMemory.unlink`` also unregisters from the tracker — but we
    already unregistered at open (:func:`_untrack`), and a second
    unregister makes the tracker process log a KeyError at shutdown.
    Go straight to ``shm_unlink`` where the helper module exists.
    """
    try:
        import _posixshmem

        _posixshmem.shm_unlink(shm._name)
    except FileNotFoundError:
        pass
    except (ImportError, AttributeError, OSError):  # pragma: no cover
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def _open_segment(name: str, create: bool = False, size: int = 0) -> Any:
    cls = _shared_memory_cls()
    try:  # Python >= 3.13 supports opting out of the tracker directly.
        shm = cls(name=name, create=create, size=size, track=False)
    except TypeError:
        shm = cls(name=name, create=create, size=size)
        _untrack(shm)
    return shm


def shm_available() -> bool:
    """Can this process publish/attach shared-memory arenas right now?

    The environment gate is consulted on every call (tests flip it);
    the platform probe — create, write, reopen, unlink one tiny
    segment — runs once per process.
    """
    if _disabled():
        return False
    global _PROBED
    if _PROBED is None:
        try:
            probe = _open_segment(_new_name("probe"), create=True, size=16)
            try:
                probe.buf[0] = 42
                ok = probe.buf[0] == 42
            finally:
                probe.close()
                _unlink_segment(probe)
            _PROBED = bool(ok)
        except Exception:
            _PROBED = False
    return _PROBED


def _new_name(tag: str) -> str:
    global _SEQ
    with _LOCK:
        _SEQ += 1
        seq = _SEQ
    return f"{_PREFIX}{os.getpid()}.{seq}.{os.urandom(3).hex()}.{tag}"


def _pad8(n: int) -> int:
    return (n + 7) & ~7


class Arena:
    """One mapped shared-memory segment: header, meta, binary sections.

    Refcounted per process: :func:`attach` on an already-mapped name
    returns the same object with its count bumped; :meth:`decref`
    closes the mapping at zero and — when this process owns the
    segment — unlinks the name.  ``meta`` is the decoded JSON header;
    :meth:`section`/:meth:`ints` return zero-copy views of the binary
    sections.
    """

    __slots__ = (
        "name",
        "meta",
        "owner",
        "refs",
        "size",
        "_shm",
        "_body",
        "_closed",
        "__weakref__",
    )

    def __init__(self, shm: Any, meta: dict, body: memoryview, size: int, owner: bool):
        self.name: str = shm.name
        self.meta = meta
        self.owner = owner
        self.refs = 1
        #: Total segment payload bytes (header + meta + sections) — the
        #: figure transfer accounting reports as resident, not moved.
        self.size = size
        self._shm = shm
        self._body = body
        self._closed = False
        _ALL.add(self)

    @property
    def kind(self) -> str:
        return self.meta.get("kind", "")

    def section(self, name: str) -> memoryview:
        """Zero-copy byte view of one named section."""
        offset, length = self.meta["sections"][name]
        return self._body[offset : offset + length]

    def ints(self, name: str) -> memoryview:
        """Zero-copy int64 view of one named section."""
        return self.section(name).cast("q")

    def incref(self) -> "Arena":
        with _LOCK:
            self.refs += 1
        return self

    def decref(self) -> None:
        """Drop one reference; the last one closes (and owner-unlinks)."""
        with _LOCK:
            self.refs -= 1
            if self.refs > 0 or self._closed:
                return
            self._closed = True
            _REGISTRY.pop(self.name, None)
            for key, name in list(_PUBLISHED.items()):
                if name == self.name:
                    del _PUBLISHED[key]
        self._release(unlink=self.owner)

    def unlink(self) -> None:
        """Remove the segment's *name* now; existing mappings survive.

        The parent calls this right after adopting a worker's column
        segment: the data stays readable through the attached views,
        but a crash after this point can no longer orphan the name.
        The arena also drops out of the process registry — nameless, it
        is private to whoever holds it and garbage-collects with them.
        """
        _unlink_segment(self._shm)
        self.owner = False  # nothing left to unlink at decref time
        with _LOCK:
            _REGISTRY.pop(self.name, None)
            for key, name in list(_PUBLISHED.items()):
                if name == self.name:
                    del _PUBLISHED[key]

    def _release(self, unlink: bool) -> None:
        if unlink:
            _unlink_segment(self._shm)
        try:
            self._body.release()
        except BufferError:
            pass  # views handed to a solver/algebra still pin it
        try:
            self._shm.close()
        except BufferError:
            # Exported views keep the mapping alive; disarm the stdlib
            # object so its __del__ doesn't retry (and log) at exit.
            # The fd can close now — the mapping survives it — and the
            # OS reclaims the memory when the last view is collected.
            shm = self._shm
            fd = getattr(shm, "_fd", -1)
            if fd is not None and fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
                shm._fd = -1
            shm._mmap = None
            shm._buf = None


def _pack_payload(meta: dict, sections: dict[str, Any]) -> tuple[dict, list[Any], int]:
    """Compute section offsets; return (meta, ordered chunks, body length)."""
    offsets: dict[str, list[int]] = {}
    chunks: list[Any] = []
    cursor = 0
    for name, data in sections.items():
        blob = data.tobytes() if isinstance(data, array) else bytes(data)
        offsets[name] = [cursor, len(blob)]
        padded = _pad8(len(blob))
        if padded != len(blob):
            blob = blob + b"\0" * (padded - len(blob))
        chunks.append(blob)
        cursor += padded
    meta = dict(meta)
    meta["version"] = SHM_VERSION
    meta["sections"] = offsets
    return meta, chunks, cursor


def _create(meta: dict, sections: dict[str, Any], tag: str) -> Arena:
    """Create, fill, checksum and register a new owned segment."""
    meta, chunks, body_len = _pack_payload(meta, sections)
    meta_blob = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    meta_padded = _pad8(len(meta_blob))
    meta_blob = meta_blob + b" " * (meta_padded - len(meta_blob))
    payload_len = 8 + meta_padded + body_len
    shm = _open_segment(_new_name(tag), create=True, size=_HEADER_LEN + payload_len)
    try:
        buf = shm.buf
        digest = hashlib.sha256()
        cursor = _HEADER_LEN
        for blob in ((len(meta_blob)).to_bytes(8, "little"), meta_blob, *chunks):
            buf[cursor : cursor + len(blob)] = blob
            digest.update(blob)
            cursor += len(blob)
        header = (
            f"{SHM_MAGIC} v{SHM_VERSION} sha256={digest.hexdigest()} "
            f"size={payload_len:020d}\n"
        ).encode("ascii")
        if len(header) != _HEADER_LEN:  # pragma: no cover - format invariant
            raise AssertionError(f"header width {len(header)} != {_HEADER_LEN}")
        buf[:_HEADER_LEN] = header
        body = buf[_HEADER_LEN + 8 + meta_padded : cursor]
    except Exception:  # pragma: no cover - don't orphan a half-built segment
        shm.close()
        _unlink_segment(shm)
        raise
    arena = Arena(shm, meta, body, _HEADER_LEN + payload_len, owner=True)
    with _LOCK:
        _REGISTRY[arena.name] = arena
    return arena


def attach(name: str, expected_kind: str | None = None) -> Arena:
    """Map an existing segment, verify its checksum, return the arena.

    Re-attaching a name this process already maps bumps the refcount
    and returns the shared object.  Header or checksum mismatches raise
    :class:`~repro.core.errors.SnapshotCorrupt` (same contract as the
    persist snapshot loader).
    """
    with _LOCK:
        cached = _REGISTRY.get(name)
    if cached is not None:
        if expected_kind is not None and cached.kind != expected_kind:
            raise SnapshotCorrupt(
                name,
                f"arena holds {cached.kind!r}, expected {expected_kind!r}",
            )
        return cached.incref()
    shm = _open_segment(name)
    payload: memoryview | None = None
    body: memoryview | None = None
    try:
        buf = shm.buf
        header = bytes(buf[:_HEADER_LEN]).decode("ascii", "replace")
        fields = header.split()
        if (
            len(fields) != 4
            or fields[0] != SHM_MAGIC
            or fields[1] != f"v{SHM_VERSION}"
            or not fields[2].startswith("sha256=")
            or not fields[3].startswith("size=")
        ):
            raise SnapshotCorrupt(name, "segment has no valid repro-shm header")
        stored = fields[2][len("sha256=") :]
        payload_len = int(fields[3][len("size=") :])
        if _HEADER_LEN + payload_len > len(buf):
            raise SnapshotCorrupt(
                name,
                f"truncated: header claims {payload_len} payload bytes, "
                f"{len(buf) - _HEADER_LEN} present",
            )
        payload = buf[_HEADER_LEN : _HEADER_LEN + payload_len]
        actual = hashlib.sha256(payload).hexdigest()
        if actual != stored:
            raise SnapshotCorrupt(
                name,
                f"checksum mismatch: header says {stored[:12]}…, "
                f"payload hashes to {actual[:12]}…",
            )
        meta_len = int.from_bytes(bytes(buf[_HEADER_LEN : _HEADER_LEN + 8]), "little")
        meta = json.loads(
            bytes(buf[_HEADER_LEN + 8 : _HEADER_LEN + 8 + meta_len]).decode("utf-8")
        )
        if expected_kind is not None and meta.get("kind") != expected_kind:
            raise SnapshotCorrupt(
                name,
                f"arena holds {meta.get('kind')!r}, "
                f"expected {expected_kind!r}",
            )
        # Meta is space-padded to the next 8-byte boundary; sections
        # start right after the padding.
        body = buf[_HEADER_LEN + 8 + _pad8(meta_len) : _HEADER_LEN + payload_len]
        arena = Arena(shm, meta, body, _HEADER_LEN + payload_len, owner=False)
    except Exception:
        # The slices taken above pin the mapping (and the raised
        # traceback keeps them alive as frame locals) — release them
        # before closing, else close() itself raises BufferError.
        for view in (body, payload):
            if view is not None:
                view.release()
        try:
            shm.close()
        except BufferError:  # pragma: no cover - belt and braces
            try:
                os.close(shm._fd)
            except OSError:
                pass
            shm._fd = -1
            shm._mmap = None
            shm._buf = None
        raise
    with _LOCK:
        existing = _REGISTRY.get(name)
        if existing is not None:  # lost a race; share the winner
            arena._release(unlink=False)
            return existing.incref()
        _REGISTRY[name] = arena
    return arena


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def cleanup_stale() -> int:
    """Unlink segments whose owner process is dead; return the count.

    Owner pids are embedded in segment names, so a ``kill -9`` victim's
    orphans are identifiable without attaching.  Runs at dispatch-pool
    startup and on every pool self-heal; a no-op on platforms without a
    listable ``/dev/shm``.
    """
    base = "/dev/shm"
    if not os.path.isdir(base):
        return 0
    removed = 0
    me = os.getpid()
    try:
        entries = os.listdir(base)
    except OSError:
        return 0
    for entry in entries:
        if not entry.startswith(_PREFIX):
            continue
        parts = entry.split(".")
        try:
            pid = int(parts[1])
        except (IndexError, ValueError):
            continue
        if pid == me or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(base, entry))
            removed += 1
        except OSError:
            pass
    return removed


def _cleanup_at_exit() -> None:  # pragma: no cover - exercised at interpreter exit
    """Unlink owned segments and disarm every mapping before shutdown.

    Covers attached (non-owned) and already-unlinked arenas too — that
    is what keeps the stdlib ``SharedMemory.__del__`` from logging
    ``BufferError`` at interpreter teardown when solver views still pin
    a mapping.
    """
    with _LOCK:
        arenas = [a for a in _ALL if not a._closed]
        _REGISTRY.clear()
        _PUBLISHED.clear()
    for arena in arenas:
        arena._closed = True
        arena._release(unlink=arena.owner)


atexit.register(_cleanup_at_exit)


# -- compiled algebra arenas ---------------------------------------------------


def algebra_fingerprint(algebra: Any) -> str:
    """The publish/dedupe key of a compiled algebra.

    Monoid algebras key by their property-machine fingerprint (the same
    key the service caches use); gen/kill algebras by width plus the
    one-bit machine's fingerprint.
    """
    from repro.core.persist import machine_fingerprint

    machine = getattr(algebra, "machine", None)
    if machine is not None:
        return machine_fingerprint(machine)
    bit = getattr(algebra, "bit", None)
    n_bits = getattr(algebra, "n_bits", None)
    if bit is not None and n_bits is not None:
        return f"genkill-{n_bits}-{machine_fingerprint(bit.machine)}"
    raise TypeError(f"cannot fingerprint algebra {type(algebra).__name__}")


def publish_algebra(algebra: Any, fingerprint: str | None = None) -> Arena:
    """Publish a compiled algebra's tables once; idempotent per process.

    Returns the owned arena (already-published fingerprints return the
    existing one with a fresh reference).  The caller holds the
    reference for the consumers' lifetime — typically until pool
    shutdown — and :meth:`Arena.decref` unlinks.
    """
    from repro.core.annotations import (
        CompiledGenKillAlgebra,
        CompiledMonoidAlgebra,
    )
    from repro.core.persist import _encode_symbol, dfa_to_dict

    if fingerprint is None:
        fingerprint = algebra_fingerprint(algebra)
    with _LOCK:
        name = _PUBLISHED.get(fingerprint)
        cached = _REGISTRY.get(name) if name is not None else None
    if cached is not None:
        return cached.incref()
    if isinstance(algebra, CompiledGenKillAlgebra):
        # Invert the one-bit symbol table so non-default gen/kill symbol
        # names survive the round trip.
        by_index = {index: sym for sym, index in algebra.bit._symbols.items()}
        meta = {
            "kind": "algebra",
            "algebra": "genkill",
            "fingerprint": fingerprint,
            "n_bits": algebra.n_bits,
            "machine": dfa_to_dict(algebra.bit.machine),
            "gen": _encode_symbol(by_index[algebra._gen]),
            "kill": _encode_symbol(by_index[algebra._kill]),
        }
        arena = _create(meta, {}, tag="alg")
    elif isinstance(algebra, CompiledMonoidAlgebra):
        n = algebra.size()
        n_states = algebra.machine.n_states
        table = array("q")
        for row in algebra._table:
            table.extend(row)
        elements = array("q")
        for fn in algebra.elements:
            mapping = fn.mapping
            if len(mapping) != n_states:  # pragma: no cover - shape invariant
                raise ValueError("element mapping width != machine states")
            elements.extend(mapping)
        meta = {
            "kind": "algebra",
            "algebra": "monoid",
            "fingerprint": fingerprint,
            "n": n,
            "n_states": n_states,
            "identity_index": algebra.identity_index,
            "machine": dfa_to_dict(algebra.machine),
            "symbols": [
                [_encode_symbol(sym), index]
                for sym, index in sorted(
                    algebra._symbols.items(), key=lambda kv: kv[1]
                )
            ],
        }
        sections = {
            "table": table,
            "elements": elements,
            "state_after": array("q", algebra._state_after),
            "live": bytes(bytearray(1 if x else 0 for x in algebra._live)),
            "accepting": bytes(
                bytearray(1 if x else 0 for x in algebra._accepting)
            ),
        }
        arena = _create(meta, sections, tag="alg")
    else:
        raise TypeError(
            f"cannot publish algebra {type(algebra).__name__}; only the "
            "compiled (int-annotation) algebras have flat tables"
        )
    with _LOCK:
        _PUBLISHED[fingerprint] = arena.name
    return arena


def attach_algebra(
    name: str, expected_fingerprint: str | None = None
) -> tuple[Any, Arena]:
    """Rebuild a compiled algebra over an arena's tables, zero-copy.

    The returned :class:`CompiledMonoidAlgebra` owns *no* composition
    table: ``_table`` rows are int64 memoryviews of the arena, the
    liveness/acceptance predicates are byte views, and the numpy batch
    backend (when numpy is present) is a ``frombuffer`` view of the
    same bytes.  Only the element objects (representative functions,
    needed for ``encode``/``decode`` and persistence) and the symbol
    map are materialized — both tiny relative to the n² table.  The
    algebra keeps the arena referenced via ``_arena``.
    """
    from repro.core.annotations import (
        HAVE_NUMPY,
        CompiledGenKillAlgebra,
        CompiledMonoidAlgebra,
    )
    from repro.core.persist import _decode_symbol, dfa_from_dict
    from repro.dfa.monoid import RepresentativeFunction

    arena = attach(name, expected_kind="algebra")
    try:
        meta = arena.meta
        if (
            expected_fingerprint is not None
            and meta.get("fingerprint") != expected_fingerprint
        ):
            raise SnapshotCorrupt(
                name,
                f"publishes algebra {meta.get('fingerprint')!r}, "
                f"expected {expected_fingerprint!r}",
            )
        if meta.get("algebra") == "genkill":
            algebra: Any = CompiledGenKillAlgebra(
                meta["n_bits"],
                bit_machine=dfa_from_dict(meta["machine"]),
                gen=_decode_symbol(meta["gen"]),
                kill=_decode_symbol(meta["kill"]),
            )
            algebra._arena = arena
            return algebra, arena
        n = meta["n"]
        n_states = meta["n_states"]
        machine = dfa_from_dict(meta["machine"])
        algebra = CompiledMonoidAlgebra.__new__(CompiledMonoidAlgebra)
        algebra.machine = machine
        #: No enumerated monoid behind an attached algebra — the tables
        #: *are* the specialization.  ``dump_solver`` and friends read
        #: ``algebra.machine``, never the monoid.
        algebra.monoid = None
        elements_view = arena.ints("elements")
        algebra.elements = tuple(
            RepresentativeFunction(
                tuple(elements_view[i * n_states : (i + 1) * n_states])
            )
            for i in range(n)
        )
        table_view = arena.ints("table")
        algebra._table = [table_view[i * n : (i + 1) * n] for i in range(n)]
        algebra._index = {fn: i for i, fn in enumerate(algebra.elements)}
        algebra.identity = meta["identity_index"]
        algebra.identity_index = meta["identity_index"]
        algebra._live = arena.section("live")
        algebra._accepting = arena.section("accepting")
        algebra._state_after = arena.ints("state_after")
        algebra._symbols = {
            _decode_symbol(sym): index for sym, index in meta["symbols"]
        }
        algebra._np_table = None
        if HAVE_NUMPY:
            import numpy as np

            algebra._np_table = np.frombuffer(
                arena.section("table"), dtype=np.int64
            ).reshape(n, n)
        else:
            algebra.then_many = None  # type: ignore[assignment]
        algebra._arena = arena
        return algebra, arena
    except Exception:
        arena.decref()
        raise


# -- flat-column arenas ---------------------------------------------------------


def _flatten_columns(
    cols: Iterable[Any], anns: Iterable[Any]
) -> tuple[array, array, array]:
    """Prefix offsets + concatenated value/annotation columns."""
    offsets = array("q", [0])
    values = array("q")
    annotations = array("q")
    for col, ann in zip(cols, anns):
        if col:
            values.extend(col)
            annotations.extend(ann)
        offsets.append(len(values))
    return offsets, values, annotations


def publish_columns(solver: Any, fingerprint: str) -> tuple[str, int]:
    """Publish a FlatSolver's solved form as one column segment.

    Returns ``(segment name, resident bytes)``.  The segment is closed
    locally after writing — the creating worker keeps no mapping — and
    deliberately left registered under the worker's pid for the parent
    to adopt (:func:`attach_columns` unlinks it on arrival); a worker
    killed before the hand-off leaves an orphan :func:`cleanup_stale`
    reaps.  Raises on interrupted solves (non-empty worklist): the wire
    format carries fixpoints only, checkpoints stay on the pickle path.
    """
    from repro.core.persist import _encode_constructor

    if solver.pending_count():
        raise ValueError("cannot publish an interrupted solve; dump it instead")
    span = getattr(solver, "_span", 1 << 62)
    if span > (1 << 62):
        raise ValueError("annotation span exceeds the int64 wire lanes")
    n_vars = len(solver._vars)
    names = "\n".join(v.name for v in solver._vars).encode("utf-8")
    term_ctor = array("q", solver._term_ctor)
    term_off = array("q", [0])
    term_args = array("q")
    for args in solver._term_args:
        term_args.extend(args)
        term_off.append(len(term_args))
    low_off, low_src, low_ann = _flatten_columns(solver._low_src, solver._low_ann)
    up_off, up_snk, up_ann = _flatten_columns(solver._up_snk, solver._up_ann)
    succ_off, succ_dst, succ_ann = _flatten_columns(
        solver._succ_dst, solver._succ_ann
    )
    proj_off = array("q", [0])
    proj_rows = array("q")
    for rows in solver._proj_rows:
        if rows:
            for ctor, index, target, ann in rows:
                proj_rows.extend((ctor, index, target, ann))
        proj_off.append(len(proj_rows) // 4)
    ufp = array("q")
    for loser, winner in sorted(solver._ufp.items()):
        ufp.extend((loser, winner))
    term_index = solver._term_ids
    meta = {
        "kind": "columns",
        "fingerprint": fingerprint,
        "n_vars": n_vars,
        "n_terms": len(solver._terms),
        "pn_projections": solver.pn_projections,
        "prune_dead": solver.prune_dead,
        "cycle_elim": solver.cycle_elim,
        "ctors": [_encode_constructor(c) for c in solver._ctors],
        "incons": [
            [term_index[inc.source], term_index[inc.sink], inc.annotation]
            for inc in solver.inconsistencies
            if inc.source in term_index and inc.sink in term_index
        ],
        "met": [list(triple) for triple in sorted(solver._met)],
    }
    sections = {
        "varnames": names,
        "term_ctor": term_ctor,
        "term_off": term_off,
        "term_args": term_args,
        "low_off": low_off,
        "low_src": low_src,
        "low_ann": low_ann,
        "up_off": up_off,
        "up_snk": up_snk,
        "up_ann": up_ann,
        "succ_off": succ_off,
        "succ_dst": succ_dst,
        "succ_ann": succ_ann,
        "proj_off": proj_off,
        "proj_rows": proj_rows,
        "ufp": ufp,
    }
    arena = _create(meta, sections, tag="col")
    size = arena.size
    name = arena.name
    # Hand-off: drop our mapping but keep the name alive for the
    # adopter.  Pull it out of the registry first so a same-process
    # attach (thread executors, tests) maps it fresh instead of sharing
    # a closed arena.
    with _LOCK:
        _REGISTRY.pop(name, None)
    arena.owner = False  # the adopter unlinks
    arena._closed = True
    arena._release(unlink=False)
    return name, size


def attach_columns(
    name_or_arena: str | Arena,
    algebra: Any,
    *,
    unlink: bool = True,
    budget: Any = None,
) -> Any:
    """Reconstruct a FlatSolver over a column segment, zero-copy.

    The solver's lower/upper/successor columns are int64 memoryviews of
    the arena (frozen copy-on-write — see
    :meth:`FlatSolver.attach_columns`); variables, terms and projection
    rows are materialized eagerly (they are object-shaped and small
    next to the fact columns).  With ``unlink`` (the default, for the
    worker→parent hand-off) the segment name is removed immediately:
    the mapping survives, a later crash cannot orphan it.
    """
    from repro.core.flatcore import FlatSolver
    from repro.core.persist import _decode_symbol  # noqa: F401 (doc link)

    arena = (
        attach(name_or_arena, expected_kind="columns")
        if isinstance(name_or_arena, str)
        else name_or_arena.incref()
    )
    try:
        meta = arena.meta
        expected = algebra_fingerprint(algebra)
        if meta.get("fingerprint") != expected:
            raise SnapshotCorrupt(
                arena.name,
                f"columns were solved against {meta.get('fingerprint')!r} "
                f"but algebra {expected!r} was supplied",
            )
        solver = FlatSolver(
            algebra,
            pn_projections=meta.get("pn_projections", False),
            prune_dead=meta.get("prune_dead", True),
            cycle_elim=meta.get("cycle_elim", True),
            budget=budget,
        )
        solver.attach_columns(arena)
        if unlink:
            arena.unlink()
        return solver
    except Exception:
        arena.decref()
        raise
