"""MOPS-style pushdown model checker — the Table 1 baseline.

MOPS (Chen & Wagner, CCS 2002) checks temporal safety properties by
composing the program's pushdown automaton with the property FSM and
deciding reachability of error configurations.  This package implements
that published algorithm directly: :mod:`repro.mops.pda` builds the
product PDA from a program CFG and a property, :mod:`repro.mops.poststar`
computes ``post*`` by P-automaton saturation, and
:mod:`repro.mops.checker` wraps both as a drop-in comparator for the
annotated-constraint checker.
"""

from repro.mops.checker import MopsChecker
from repro.mops.pda import PushdownSystem, build_product_pda
from repro.mops.poststar import PAutomaton, post_star

__all__ = [
    "MopsChecker",
    "PAutomaton",
    "PushdownSystem",
    "build_product_pda",
    "post_star",
]
