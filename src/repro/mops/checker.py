"""The MOPS-style checker: PDA product + ``post*`` + error scan.

A drop-in comparator for
:class:`repro.modelcheck.checker.AnnotatedChecker`: same inputs (a
program CFG and a :class:`~repro.modelcheck.properties.Property`), same
verdicts, different algorithm — this is the hand-built pushdown model
checker the paper benchmarks against in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import CFGNode, ProgramCFG
from repro.modelcheck.properties import Property
from repro.mops.pda import build_product_pda
from repro.mops.poststar import PAutomaton, post_star


@dataclass
class MopsResult:
    error_nodes: list[CFGNode] = field(default_factory=list)
    control_states: int = 0
    transitions: int = 0

    @property
    def has_violation(self) -> bool:
        return bool(self.error_nodes)

    def violation_lines(self) -> set[int]:
        return {node.line for node in self.error_nodes}


class MopsChecker:
    """Model-check by explicit pushdown reachability (the baseline)."""

    def __init__(self, cfg: ProgramCFG, prop: Property):
        self.cfg = cfg
        self.property = prop
        self.pds = build_product_pda(cfg, prop)
        self._automaton: PAutomaton | None = None

    def automaton(self) -> PAutomaton:
        if self._automaton is None:
            self._automaton = post_star(self.pds)
        return self._automaton

    def check(self) -> MopsResult:
        """Scan ``post*`` for configurations in an error control state.

        The top-of-stack symbols of those configurations are the CFG
        nodes where the property is violated.
        """
        automaton = self.automaton()
        result = MopsResult(
            control_states=len(self.pds.control_states()),
            transitions=len(automaton.transitions),
        )
        seen: set[int] = set()
        for control in self.pds.error_states:
            for top in automaton.tops_for(control):
                if top not in seen:
                    seen.add(top)
                    result.error_nodes.append(self.cfg.nodes[top])
        result.error_nodes.sort(key=lambda node: node.id)
        return result

    def has_violation(self) -> bool:
        automaton = self.automaton()
        return any(
            automaton.has_control_state(control)
            for control in self.pds.error_states
        )
