"""``post*`` reachability by P-automaton saturation (Schwoon's algorithm).

The set of configurations reachable from the initial configuration of a
pushdown system is regular; it is represented by a *P-automaton* whose
states include the PDS control states, and which accepts ``⟨p, w⟩``
iff reading the stack word ``w`` from state ``p`` reaches the final
state.  Saturation adds transitions until closure:

* ``⟨p, γ⟩ → ⟨p', ε⟩``       and ``p --γ--> q``   give ``p' --ε--> q``;
* ``⟨p, γ⟩ → ⟨p', γ'⟩``      and ``p --γ--> q``   give ``p' --γ'--> q``;
* ``⟨p, γ⟩ → ⟨p', γ'γ''⟩``   and ``p --γ--> q``   give
  ``p' --γ'--> q_{p'γ'}`` and ``q_{p'γ'} --γ''--> q``;
* an ε-transition ``p --ε--> q`` combines with every ``q --γ--> q'``
  into ``p --γ--> q'``.

This is the algorithm at the core of MOPS's model checker (and of
weighted PDS libraries); it runs in ``O(|rules| · |states|)`` time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from repro.mops.pda import ControlState, PushdownSystem, StackSymbol

EPS = object()  # epsilon label inside the P-automaton

AState = Hashable  # P-automaton state: a control state, "final", or a mid state


@dataclass
class PAutomaton:
    """The saturated P-automaton representing ``post*``."""

    transitions: set[tuple[AState, Hashable, AState]] = field(default_factory=set)
    final: AState = "final"

    def tops_for(self, control: ControlState) -> set[StackSymbol]:
        """Top-of-stack symbols of reachable configs with this control state."""
        return {
            gamma
            for (p, gamma, _q) in self.transitions
            if p == control and gamma is not EPS
        }

    def has_control_state(self, control: ControlState) -> bool:
        """Is any configuration with this control state reachable?"""
        return any(p == control for (p, _g, _q) in self.transitions)

    def accepts(self, control: ControlState, stack: list[StackSymbol]) -> bool:
        """Is the configuration ``⟨control, stack⟩`` in ``post*``?

        Standard NFA membership over the transition set, with ε-moves.
        """
        current = self._eps_closure({control})
        for symbol in stack:
            moved = {
                q
                for state in current
                for (p, gamma, q) in self.transitions
                if p == state and gamma == symbol
            }
            current = self._eps_closure(moved)
            if not current:
                return False
        return self.final in current

    def _eps_closure(self, states: set[AState]) -> set[AState]:
        seen = set(states)
        work = deque(seen)
        while work:
            state = work.popleft()
            for (p, gamma, q) in self.transitions:
                if p == state and gamma is EPS and q not in seen:
                    seen.add(q)
                    work.append(q)
        return seen


def post_star(pds: PushdownSystem) -> PAutomaton:
    """Saturate the P-automaton for ``post*`` of the initial config."""
    if pds.initial is None:
        raise ValueError("pushdown system has no initial configuration")
    automaton = PAutomaton()
    final = automaton.final
    rel: set[tuple[AState, Hashable, AState]] = set()
    rel_from: dict[AState, set[tuple[Hashable, AState]]] = {}
    eps_into: dict[AState, set[AState]] = {}
    work: deque[tuple[AState, Hashable, AState]] = deque()

    def add(transition: tuple[AState, Hashable, AState]) -> None:
        if transition not in rel and transition not in pending:
            pending.add(transition)
            work.append(transition)

    pending: set[tuple[AState, Hashable, AState]] = set()
    initial_control, initial_top = pds.initial
    add((initial_control, initial_top, final))

    while work:
        transition = work.popleft()
        pending.discard(transition)
        if transition in rel:
            continue
        rel.add(transition)
        p, gamma, q = transition
        rel_from.setdefault(p, set()).add((gamma, q))
        if gamma is not EPS:
            # Combine with ε-transitions already ending at p.
            for p_eps in eps_into.get(p, set()).copy():
                add((p_eps, gamma, q))
            for p_prime in pds.pop_rules.get((p, gamma), ()):
                add((p_prime, EPS, q))
            for p_prime, top in pds.step_rules.get((p, gamma), ()):
                add((p_prime, top, q))
            for p_prime, top, below in pds.push_rules.get((p, gamma), ()):
                mid = ("mid", p_prime, top)
                add((p_prime, top, mid))
                add((mid, below, q))
        else:
            eps_into.setdefault(q, set()).add(p)
            for gamma_prime, q_prime in rel_from.get(q, set()).copy():
                if gamma_prime is not EPS:
                    add((p, gamma_prime, q_prime))

    automaton.transitions = rel
    return automaton
