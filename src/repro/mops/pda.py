"""Product pushdown system: program CFG × property FSM.

The program is modeled as a pushdown automaton whose stack records the
return points of unreturned calls (Section 6); the property FSM runs in
the control state.  A configuration is ``⟨p, γ₁γ₂...⟩`` with ``p`` a
property state and ``γᵢ`` CFG nodes — ``γ₁`` the current node, the rest
pending return points.

Rules (``γ`` ranges over CFG node ids):

* ``⟨p, n⟩ → ⟨δ(p, event(n)), m⟩`` for an intraprocedural edge ``n → m``
  (``δ(p, ·) = p`` when ``n`` is irrelevant to the property);
* ``⟨p, n⟩ → ⟨p, entry_f · m⟩`` when ``n`` calls ``f`` and returns to ``m``;
* ``⟨p, exit_f⟩ → ⟨p, ε⟩``.

Parametric properties are handled the way MOPS did (Section 6.4 cites
this as the behaviour to reproduce): the property machine is explicitly
instantiated per concrete label and the control state is the product of
all instances — built lazily over the labels that actually occur.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable

from repro.cfg.graph import CFGNode, ProgramCFG
from repro.dfa.automaton import DFA
from repro.modelcheck.properties import Property

ControlState = Hashable
StackSymbol = int


@dataclass
class PushdownSystem:
    """A pushdown system with rules indexed by (control, top-of-stack)."""

    pop_rules: dict[tuple[ControlState, StackSymbol], set[ControlState]] = field(
        default_factory=dict
    )
    step_rules: dict[
        tuple[ControlState, StackSymbol], set[tuple[ControlState, StackSymbol]]
    ] = field(default_factory=dict)
    push_rules: dict[
        tuple[ControlState, StackSymbol],
        set[tuple[ControlState, StackSymbol, StackSymbol]],
    ] = field(default_factory=dict)
    initial: tuple[ControlState, StackSymbol] | None = None
    error_states: set[ControlState] = field(default_factory=set)

    def add_pop(self, p: ControlState, gamma: StackSymbol, q: ControlState) -> None:
        self.pop_rules.setdefault((p, gamma), set()).add(q)

    def add_step(
        self, p: ControlState, gamma: StackSymbol, q: ControlState, top: StackSymbol
    ) -> None:
        self.step_rules.setdefault((p, gamma), set()).add((q, top))

    def add_push(
        self,
        p: ControlState,
        gamma: StackSymbol,
        q: ControlState,
        top: StackSymbol,
        below: StackSymbol,
    ) -> None:
        self.push_rules.setdefault((p, gamma), set()).add((q, top, below))

    def control_states(self) -> set[ControlState]:
        states: set[ControlState] = set()
        for (p, _g), targets in self.pop_rules.items():
            states.add(p)
            states.update(targets)
        for (p, _g), targets in self.step_rules.items():
            states.add(p)
            states.update(q for q, _ in targets)
        for (p, _g), targets in self.push_rules.items():
            states.add(p)
            states.update(q for q, _t, _b in targets)
        if self.initial is not None:
            states.add(self.initial[0])
        return states


class _PropertyProduct:
    """Control-state semantics: plain FSM or explicit per-label product.

    For a parametric property, the control state is a tuple with one
    FSM state per concrete label (plus one slot for non-parametric
    events, which by Fig 5-style properties drive every instance).
    """

    def __init__(self, cfg: ProgramCFG, prop: Property):
        self.machine = prop.machine
        self.prop = prop
        self.parametric = bool(prop.parametric_symbols)
        self.labels: list[tuple[str, ...]] = []
        if self.parametric:
            seen: set[tuple[str, ...]] = set()
            for node in cfg.all_nodes():
                event = prop.event_of(node)
                if event is not None and event[1] is not None:
                    if event[1] not in seen:
                        seen.add(event[1])
                        self.labels.append(event[1])
        self.start: ControlState
        if self.parametric:
            self.start = tuple(self.machine.start for _ in self.labels)
        else:
            self.start = self.machine.start

    def step(self, state: ControlState, node: CFGNode) -> ControlState:
        event = self.prop.event_of(node)
        if event is None:
            return state
        symbol, labels = event
        if not self.parametric:
            return self.machine.step(state, symbol)
        assert isinstance(state, tuple)
        components = list(state)
        if labels is None:
            # Non-parametric event drives every instance.
            for i in range(len(components)):
                components[i] = self.machine.step(components[i], symbol)
        else:
            index = self.labels.index(labels)
            components[index] = self.machine.step(components[index], symbol)
        return tuple(components)

    def is_error(self, state: ControlState) -> bool:
        if not self.parametric:
            return state in self.machine.accepting
        assert isinstance(state, tuple)
        return any(component in self.machine.accepting for component in state)


def build_product_pda(cfg: ProgramCFG, prop: Property) -> PushdownSystem:
    """Compose a program CFG with a property into a pushdown system.

    Control states are enumerated lazily from the property start state
    — only property states actually reachable on some CFG path appear
    in rules, which is what keeps explicit parametric products feasible
    (and is how MOPS's backend behaved).
    """
    product = _PropertyProduct(cfg, prop)
    pds = PushdownSystem()
    pds.initial = (product.start, cfg.main.entry.id)

    # Enumerate reachable control states via a chaotic iteration over
    # (control state) alone: transitions depend only on node events, so
    # the set of reachable control states is closed under stepping with
    # every event-bearing node.
    reachable: set[ControlState] = {product.start}
    frontier = [product.start]
    event_nodes = [
        node for node in cfg.all_nodes() if prop.event_of(node) is not None
    ]
    while frontier:
        state = frontier.pop()
        for node in event_nodes:
            nxt = product.step(state, node)
            if nxt not in reachable:
                reachable.add(nxt)
                frontier.append(nxt)

    for node in cfg.all_nodes():
        if node.kind == "call":
            callee = cfg.functions[node.call.callee]
            for succ in cfg.successors(node):
                for p in reachable:
                    pds.add_push(p, node.id, p, callee.entry.id, succ.id)
            continue
        if node.kind == "exit":
            for p in reachable:
                pds.add_pop(p, node.id, p)
            continue
        for succ in cfg.successors(node):
            for p in reachable:
                pds.add_step(p, node.id, product.step(p, node), succ.id)

    pds.error_states = {p for p in reachable if product.is_error(p)}
    return pds
