"""Deterministic fault injection for the solver, persistence, and service.

Robustness claims are only as good as the failures they were tested
against.  This module manufactures those failures *reproducibly*: every
randomized choice flows from one :class:`FaultInjector` seed, so a
failing CI run names the seed and the exact same corruption replays
locally.

What can be injected:

* **mid-dump crashes** — :meth:`FaultInjector.crash_during_dump`
  patches the commit-point rename inside :mod:`repro.core.persist`, so
  a snapshot write dies after the temp file is written but before it
  becomes visible (the atomicity window the
  write-temp → fsync → rename dance must protect);
* **snapshot damage** — :meth:`FaultInjector.truncate_file` and
  :meth:`FaultInjector.flip_bits` model torn writes and bit rot, which
  :func:`repro.core.persist.read_snapshot` must detect by checksum;
* **mid-patch crashes** — :meth:`FaultInjector.crash_during_patch`
  patches the retraction commit point inside
  :mod:`repro.incremental.delta`, so a differential re-solve dies with
  the solved form partially repaired (facts deleted, re-derivation not
  yet run) — the state the service's cold-solve fallback must recover
  from;
* **journal damage** — :meth:`FaultInjector.tear_journal_tail` and
  :meth:`FaultInjector.corrupt_journal_record` model a crash mid-append
  and bit rot inside a committed record, the two damage classes
  :meth:`repro.service.journal.SessionJournal.load` must quarantine;
* **crash between append and fsync** —
  :meth:`FaultInjector.crash_before_fsync` patches the journal's fsync
  seam, so a record reaches the OS buffer but the durability barrier
  never runs (the group-commit window a torn tail comes from);
* **mid-compaction crashes** — compaction's rotation commits through
  the same :data:`repro.core.persist._rename` seam as snapshots, so
  :meth:`FaultInjector.crash_during_dump` covers a crash between the
  snapshot write and the journal rotation;
* **slow/hung workers** — :class:`SpinningEngine` stands in for an
  analysis engine whose work never finishes unless the server's budget
  or cancellation token stops it (the worker-leak scenario);
* **dropped connections** — :class:`FlakyProxy` sits between a
  :class:`~repro.service.client.ServiceClient` and a real server,
  refusing the first *k* connects and/or severing a connection after a
  fixed number of responses, exercising the client's retry/backoff.

Budget exhaustion and cancellation need no machinery beyond
:class:`repro.core.budget.Budget` itself — tests construct tiny budgets
directly.
"""

from __future__ import annotations

import contextlib
import random
import socket
import threading
from typing import Any, Iterator

from repro.core import persist
from repro.core.budget import Budget
from repro.core.errors import SolverBudgetExceeded, SolverCancelled
from repro.service import protocol
from repro.service.engine import EngineError
from repro.service.metrics import Metrics


class FaultError(RuntimeError):
    """The injected failure itself — never raised by real code paths."""


class FaultInjector:
    """A seeded source of file corruption and crash points."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)

    # -- file corruption -------------------------------------------------------

    def truncate_file(self, path: Any, keep_fraction: float | None = None) -> int:
        """Cut ``path`` to a prefix (a torn write); returns the new size.

        With no ``keep_fraction`` a random cut point is drawn — always
        strictly inside the file, so the damage is real.
        """
        raw = open(path, "rb").read()
        if len(raw) < 2:
            raise ValueError(f"{path} is too small to truncate meaningfully")
        if keep_fraction is None:
            cut = self.rng.randrange(1, len(raw))
        else:
            cut = max(1, min(len(raw) - 1, int(len(raw) * keep_fraction)))
        with open(path, "wb") as handle:
            handle.write(raw[:cut])
        return cut

    def flip_bits(self, path: Any, n_flips: int = 1, skip: int = 0) -> list[int]:
        """Flip ``n_flips`` random bits (bit rot); returns byte offsets.

        ``skip`` protects a prefix (e.g. the checksum header) so the
        corruption lands in the payload the checksum must defend.
        """
        raw = bytearray(open(path, "rb").read())
        if len(raw) <= skip:
            raise ValueError(f"{path} has no bytes past offset {skip}")
        offsets = []
        for _ in range(n_flips):
            offset = self.rng.randrange(skip, len(raw))
            raw[offset] ^= 1 << self.rng.randrange(8)
            offsets.append(offset)
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        return offsets

    # -- crash points ----------------------------------------------------------

    @contextlib.contextmanager
    def crash_during_dump(self) -> Iterator[None]:
        """Simulate a crash at the snapshot commit point.

        Inside the context, :func:`repro.core.persist.write_snapshot`
        raises :class:`FaultError` *after* writing its temp file but
        *before* the rename — exactly where a power loss would leave a
        completed temp file and an untouched (or absent) destination.
        """

        def exploding_rename(src: Any, dst: Any) -> None:
            raise FaultError(f"injected crash before rename {src!r} -> {dst!r}")

        original = persist._rename
        persist._rename = exploding_rename
        try:
            yield
        finally:
            persist._rename = original

    # -- journal faults --------------------------------------------------------

    def tear_journal_tail(self, path: Any, max_cut: int | None = None) -> int:
        """Tear the *last* record of a journal (a crash mid-append).

        Cuts a random number of bytes off the end — strictly inside the
        final record, so every earlier record stays intact and
        :func:`repro.core.persist.read_journal` reports tail damage
        rather than interior corruption.  Returns the bytes removed.
        """
        raw = open(path, "rb").read()
        lines = raw.split(b"\n")
        # raw ends with a newline on a clean journal, so the last
        # *record* is lines[-2]; never cut past it into earlier records.
        last = lines[-2] if lines[-1] == b"" else lines[-1]
        if not last:
            raise ValueError(f"{path} has no tail record to tear")
        limit = len(last) + 1  # may also eat the trailing newline
        if max_cut is not None:
            limit = min(limit, max_cut)
        cut = self.rng.randrange(1, limit + 1)
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) - cut])
        return cut

    def corrupt_journal_record(self, path: Any, record: int = 0) -> int:
        """Flip one bit inside a committed journal record's payload.

        ``record`` indexes the framed records (0 = the base record).
        The checksum in the frame must catch the damage; returns the
        absolute byte offset flipped.
        """
        raw = bytearray(open(path, "rb").read())
        lines = raw.split(b"\n")
        index = record + 1  # line 0 is the magic header
        if index >= len(lines) or not lines[index]:
            raise ValueError(f"{path} has no record {record}")
        # Flip inside the JSON payload (after "J <digest> <size> ").
        line = lines[index]
        payload_start = line.index(b"{")
        offset_in_line = self.rng.randrange(payload_start, len(line))
        prefix = sum(len(l) + 1 for l in lines[:index])
        offset = prefix + offset_in_line
        raw[offset] ^= 1 << self.rng.randrange(8)
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        return offset

    @contextlib.contextmanager
    def crash_before_fsync(self) -> Iterator[None]:
        """Simulate a crash between a journal append and its fsync.

        Inside the context, the journal's fsync seam raises
        :class:`FaultError` — the record bytes are in the OS buffer (and
        visible to a reader) but the durability barrier never ran.  On
        a real power loss any suffix of those bytes may survive; tests
        combine this with :meth:`tear_journal_tail` to model the torn
        outcome, or restart the engine directly to model the lucky case
        where the page made it out anyway.
        """
        from repro.service import journal

        def exploding_fsync(fd: int) -> None:
            raise FaultError(f"injected crash before fsync of fd {fd}")

        original = journal._fsync
        journal._fsync = exploding_fsync
        try:
            yield
        finally:
            journal._fsync = original

    @contextlib.contextmanager
    def crash_during_patch(self) -> Iterator[None]:
        """Simulate a crash in the middle of a differential re-solve.

        Inside the context, :class:`repro.incremental.delta.DeltaSolver`
        raises :class:`FaultError` at its retraction commit point —
        after the over-deletion cone has been removed from the solved
        form but before re-derivation and the patch's additions run.
        That is the worst moment: the solver is internally consistent
        but *wrong* (under-approximate), so anything that keeps using
        the session silently loses facts.  The engine's contract is to
        discard the session and answer from a cold solve.
        """
        from repro.incremental import delta

        def exploding_commit() -> None:
            raise FaultError("injected crash during patch retraction commit")

        original = delta._commit_retractions
        delta._commit_retractions = exploding_commit
        try:
            yield
        finally:
            delta._commit_retractions = original


class SpinningEngine:
    """An engine double whose analysis ops run forever unless governed.

    Mirrors :class:`repro.service.engine.AnalysisEngine`'s dispatch
    contract — including the translation of solver interrupts into
    typed :class:`EngineError`\\ s — but the "solve" is an infinite loop
    that charges the budget once per iteration.  If the server's
    timeout/cancellation plumbing leaks, tests using this engine hang a
    worker measurably (slot never released) instead of silently passing.
    """

    def __init__(self, metrics: Metrics | None = None):
        self.metrics = metrics if metrics is not None else Metrics()
        #: Set once an analysis op has started spinning (tests sync on it).
        self.started = threading.Event()
        #: Escape hatch so a misbehaving test cannot hang the suite.
        self.abort = threading.Event()

    def dispatch(
        self, op: str, params: dict, budget: Budget | None = None
    ) -> dict:
        if op == "ping":
            return {"pong": True, "protocol": protocol.PROTOCOL_VERSION}
        if op == "stats":
            return self.metrics.snapshot()
        self.started.set()
        try:
            while not self.abort.is_set():
                if budget is not None:
                    budget.charge(1)
        except SolverCancelled as exc:
            raise EngineError(
                protocol.E_CANCELLED, f"solve cancelled: {exc.progress}"
            ) from exc
        except SolverBudgetExceeded as exc:
            raise EngineError(protocol.E_BUDGET, str(exc)) from exc
        raise EngineError(protocol.E_INTERNAL, "spinning engine aborted")


class FlakyProxy:
    """A TCP proxy that injects connection failures deterministically.

    * the first ``fail_connects`` accepted connections are closed
      immediately (server "crashing" on connect);
    * with ``drop_after`` set, each surviving connection is severed as
      soon as that many response lines have been relayed back to the
      client (server "dying" mid-conversation);
    * with ``drop_response`` set, the connection carrying the Nth
      response (counted across the proxy's lifetime) is severed
      *instead of* relaying it — the server did the work and answered,
      but the client never hears back.  This is the window that makes
      blind retries of non-idempotent requests dangerous, and what the
      ``patch`` idempotency key defends against.

    Counters are shared across connections, so a client that retries
    eventually gets through — which is the behavior under test.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        fail_connects: int = 0,
        drop_after: int | None = None,
        drop_response: int | None = None,
    ):
        self.upstream = (upstream_host, upstream_port)
        self.fail_connects = fail_connects
        self.drop_after = drop_after
        self.drop_response = drop_response
        self.responses = 0
        self.connects = 0
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._closing = threading.Event()

    def start(self, host: str = "127.0.0.1") -> tuple[str, int]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, 0))
        listener.listen()
        self._listener = listener
        accept = threading.Thread(
            target=self._accept_loop, name="flaky-proxy", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        return listener.getsockname()[:2]

    def stop(self) -> None:
        self._closing.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    def __enter__(self) -> "FlakyProxy":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break
            with self._lock:
                self.connects += 1
                refuse = self.connects <= self.fail_connects
            if refuse:
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            worker = threading.Thread(
                target=self._relay, args=(conn,), daemon=True
            )
            worker.start()
            self._threads.append(worker)

    def _relay(self, client: socket.socket) -> None:
        try:
            upstream = socket.create_connection(self.upstream, timeout=10)
        except OSError:
            client.close()
            return

        def sever() -> None:
            for sock in (client, upstream):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

        def pump_requests() -> None:
            try:
                while True:
                    chunk = client.recv(65536)
                    if not chunk:
                        break
                    upstream.sendall(chunk)
            except OSError:
                pass

        forward = threading.Thread(target=pump_requests, daemon=True)
        forward.start()
        responses = 0
        try:
            while True:
                chunk = upstream.recv(65536)
                if not chunk:
                    break
                lines = chunk.count(b"\n")
                with self._lock:
                    total = self.responses + lines
                    swallow = (
                        self.drop_response is not None
                        and lines
                        and total >= self.drop_response
                        and self.responses < self.drop_response
                    )
                    self.responses = total
                if swallow:
                    break  # the server answered; the client never hears it
                client.sendall(chunk)
                responses += lines
                if self.drop_after is not None and responses >= self.drop_after:
                    break  # injected mid-conversation death
        except OSError:
            pass
        finally:
            sever()
