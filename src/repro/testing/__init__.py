"""Test support: deterministic fault injection for robustness tests.

Nothing in here is imported by the library proper — it exists for
``tests/test_faults.py`` and for downstream users who want to torture
their own deployments the same way.
"""

from repro.testing.faults import (
    FaultError,
    FaultInjector,
    FlakyProxy,
    SpinningEngine,
)

__all__ = [
    "FaultError",
    "FaultInjector",
    "FlakyProxy",
    "SpinningEngine",
]
