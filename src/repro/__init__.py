"""repro — Regularly Annotated Set Constraints (Kodumal & Aiken, PLDI 2007).

A from-scratch reproduction of the paper's constraint formalism and its
applications:

* :mod:`repro.dfa` — automata, transition monoids (representative
  functions), the annotation specification language, and the paper's
  gallery of property machines;
* :mod:`repro.core` — annotated set constraints: terms, annotation
  algebras (including parametric substitution environments), the online
  bidirectional solver, forward/backward solvers, and entailment/PN
  queries;
* :mod:`repro.cfg` — a mini-C front end and interprocedural control-flow
  graphs;
* :mod:`repro.modelcheck` — the Section 6 pushdown model checker built
  on annotated constraints;
* :mod:`repro.mops` — the MOPS-style PDA + ``post*`` baseline checker;
* :mod:`repro.dataflow` — interprocedural bit-vector dataflow, both as
  regular annotations and as a classic functional-approach baseline;
* :mod:`repro.flow` — the Section 7 type-based flow analysis with
  polymorphic recursion, non-structural subtyping, its dual analysis,
  and stack-aware alias queries;
* :mod:`repro.incremental` — differential re-solving: edit-stable
  constraint encoding plus a DRed-style patch engine that retracts and
  re-derives only the affected cone of a solved system;
* :mod:`repro.synth` — synthetic workload generators for the
  benchmarks.

Quickstart::

    from repro import AnnotatedConstraintSystem
    from repro.dfa.gallery import one_bit_machine

    system = AnnotatedConstraintSystem(one_bit_machine())
    c = system.constant("c")
    X, Y = system.var("X"), system.var("Y")
    system.add(c, X, "g")
    system.add(X, Y)
    assert system.reaches(Y, c)
"""

from repro.core import (
    AnnotatedConstraintSystem,
    Budget,
    CancellationToken,
    Constructor,
    Solver,
    SolverBudgetExceeded,
    SolverCancelled,
    SolverInterrupted,
    Variable,
    constant,
)
from repro.dfa import DFA, TransitionMonoid, parse_spec, regex_to_dfa

__version__ = "1.9.0"

__all__ = [
    "AnnotatedConstraintSystem",
    "Budget",
    "CancellationToken",
    "Constructor",
    "DFA",
    "Solver",
    "SolverBudgetExceeded",
    "SolverCancelled",
    "SolverInterrupted",
    "TransitionMonoid",
    "Variable",
    "constant",
    "parse_spec",
    "regex_to_dfa",
    "__version__",
]
