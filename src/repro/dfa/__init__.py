"""Finite automaton toolkit.

This subpackage implements everything the paper needs from automata
theory: NFAs and DFAs with determinization, Hopcroft minimization,
products, reversal and completion (:mod:`repro.dfa.automaton`); a small
regular-expression front end (:mod:`repro.dfa.regex`); transition monoids
and the representative-function machinery of Section 2.4
(:mod:`repro.dfa.monoid`); substring/prefix/suffix language constructions
used by the bidirectional/forward/backward solvers
(:mod:`repro.dfa.substrings`); the annotation specification language of
Section 8 (:mod:`repro.dfa.spec`); and the paper's gallery of concrete
machines (:mod:`repro.dfa.gallery`).
"""

from repro.dfa.automaton import DFA, NFA, EPSILON
from repro.dfa.monoid import TransitionMonoid, RepresentativeFunction
from repro.dfa.regex import regex_to_dfa
from repro.dfa.spec import parse_spec
from repro.dfa.substrings import prefix_dfa, substring_dfa, suffix_dfa

__all__ = [
    "DFA",
    "NFA",
    "EPSILON",
    "TransitionMonoid",
    "RepresentativeFunction",
    "regex_to_dfa",
    "parse_spec",
    "prefix_dfa",
    "substring_dfa",
    "suffix_dfa",
]
