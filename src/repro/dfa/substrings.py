"""Prefix, suffix and substring language constructions.

Section 2.3 of the paper solves bidirectional constraint systems over the
domain ``T^{M^sub}``, where ``M^sub`` is the minimal DFA accepting all
substrings of ``L(M)``; forward solving uses the prefix language
``M^pre`` and backward solving the suffix language ``M^suf`` (Section 5).
All three languages are regular and the constructions are standard:

* ``w`` is a **prefix** of ``L(M)`` iff ``delta(w, s0)`` can still reach
  an accepting state;
* ``w`` is a **suffix** iff some state reachable from ``s0`` is carried
  by ``w`` into an accepting state;
* ``w`` is a **substring** iff some reachable state is carried by ``w``
  into a coreachable state.
"""

from __future__ import annotations

from repro.dfa.automaton import DFA, NFA


def prefix_dfa(machine: DFA) -> DFA:
    """Minimal DFA accepting all prefixes of words in ``L(machine)``."""
    coreachable = machine.coreachable_states()
    widened = DFA(
        n_states=machine.n_states,
        alphabet=machine.alphabet,
        start=machine.start,
        accepting=coreachable,
        delta=dict(machine.delta),
    )
    return widened.minimize()


def suffix_dfa(machine: DFA) -> DFA:
    """Minimal DFA accepting all suffixes of words in ``L(machine)``."""
    reachable = machine.reachable_states()
    nfa = NFA(
        n_states=machine.n_states,
        alphabet=machine.alphabet,
        start=frozenset(reachable),
        accepting=machine.accepting,
        transitions={
            key: frozenset({dst}) for key, dst in machine.delta.items()
        },
    )
    return nfa.determinize().minimize()


def substring_dfa(machine: DFA) -> DFA:
    """Minimal DFA accepting all substrings of words in ``L(machine)``."""
    reachable = machine.reachable_states()
    coreachable = machine.coreachable_states()
    nfa = NFA(
        n_states=machine.n_states,
        alphabet=machine.alphabet,
        start=frozenset(reachable),
        accepting=frozenset(coreachable),
        transitions={
            key: frozenset({dst}) for key, dst in machine.delta.items()
        },
    )
    return nfa.determinize().minimize()
