"""Transition monoids and representative functions (Section 2.4).

The congruence ``w ≡_M w'`` (two words behave identically in every
left/right context of ``L(M)``) has one equivalence class per distinct
*transition function* ``δ(w, ·) : S → S`` of the machine — this is
Theorem 2.1, a consequence of Myhill–Nerode.  The set of all such
functions, closed under composition, is the classical **transition
monoid** of the DFA, written ``F_M^≡`` in the paper.

The constraint solver annotates constraints with elements of this monoid
(:class:`RepresentativeFunction`) and composes them during transitive
closure.  The paper's BANSHEE implementation *specializes* the solver for
a given machine by enumerating ``F_M^≡`` and precomputing a composition
lookup table; :class:`TransitionMonoid` supports both that eager mode and
a lazy memoized mode for machines with very large monoids (the Fig 2
adversarial machine's monoid has ``|S|^|S|`` elements).

The coarser right and left congruences used by the forward and backward
solvers of Section 5 are exposed as :meth:`TransitionMonoid.forward_class`
and :meth:`TransitionMonoid.backward_class`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.dfa.automaton import DFA, Symbol


class MonoidSizeExceeded(RuntimeError):
    """Raised when eager enumeration of ``F_M^≡`` exceeds the size bound."""


class RepresentativeFunction:
    """A representative function ``f : S -> S`` for a ``≡_M`` class.

    Immutable and hashable; ``mapping[s]`` is ``f(s)``.  Composition does
    not need the machine, so it is provided directly: ``f.then(g)`` is
    the function of the concatenated word ``w_f · w_g`` (i.e. the paper's
    ``g ∘ f``).
    """

    __slots__ = ("mapping", "_hash")

    def __init__(self, mapping: Sequence[int]) -> None:
        object.__setattr__(self, "mapping", tuple(mapping))
        object.__setattr__(self, "_hash", hash(self.mapping))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RepresentativeFunction is immutable")

    def __call__(self, state: int) -> int:
        return self.mapping[state]

    def then(self, other: "RepresentativeFunction") -> "RepresentativeFunction":
        """Function of ``w_self`` followed by ``w_other`` (``other ∘ self``)."""
        own = self.mapping
        return RepresentativeFunction(tuple(other.mapping[s] for s in own))

    def is_identity(self) -> bool:
        return all(i == s for i, s in enumerate(self.mapping))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RepresentativeFunction)
            and self.mapping == other.mapping
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        arrows = ", ".join(f"{s}->{t}" for s, t in enumerate(self.mapping))
        return f"RepFn({arrows})"


class TransitionMonoid:
    """The monoid ``F_M^≡`` of a complete DFA, with composition support.

    Parameters
    ----------
    machine:
        A complete :class:`~repro.dfa.automaton.DFA`.  It should normally
        be minimized — the paper's results (Theorem 2.1, the pruning of
        necessarily non-accepting annotations) rely on minimality.
    eager:
        When true, :meth:`elements` enumerates the full monoid up front
        (mirroring BANSHEE's specializer).  When false, composition is
        memoized lazily and :meth:`elements` enumerates on first use.
    max_size:
        Guard against superexponential monoids during eager enumeration.
    """

    def __init__(self, machine: DFA, eager: bool = True, max_size: int = 500_000):
        self.machine = machine
        self.max_size = max_size
        states = range(machine.n_states)
        self.identity = RepresentativeFunction(tuple(states))
        self._generators: dict[Symbol, RepresentativeFunction] = {
            sym: RepresentativeFunction(
                tuple(machine.delta[(s, sym)] for s in states)
            )
            for sym in machine.alphabet
        }
        self._reachable = machine.reachable_states()
        self._coreachable = machine.coreachable_states()
        self._elements: frozenset[RepresentativeFunction] | None = None
        self._compose_memo: dict[
            tuple[RepresentativeFunction, RepresentativeFunction],
            RepresentativeFunction,
        ] = {}
        if eager:
            self._enumerate()

    # -- basic algebra ------------------------------------------------------

    def generator(self, symbol: Symbol) -> RepresentativeFunction:
        """Representative function ``f_σ`` for a single alphabet symbol."""
        return self._generators[symbol]

    @property
    def generators(self) -> dict[Symbol, RepresentativeFunction]:
        return dict(self._generators)

    def of_word(self, word: Iterable[Symbol]) -> RepresentativeFunction:
        """Representative function of an arbitrary word over the alphabet."""
        fn = self.identity
        for sym in word:
            fn = fn.then(self._generators[sym])
        return fn

    def then(
        self, first: RepresentativeFunction, second: RepresentativeFunction
    ) -> RepresentativeFunction:
        """Memoized composition in word order (``second ∘ first``)."""
        key = (first, second)
        cached = self._compose_memo.get(key)
        if cached is None:
            cached = first.then(second)
            self._compose_memo[key] = cached
        return cached

    def compose(
        self, outer: RepresentativeFunction, inner: RepresentativeFunction
    ) -> RepresentativeFunction:
        """Paper-notation composition ``outer ∘ inner`` (inner word first)."""
        return self.then(inner, outer)

    # -- enumeration (the specializer's job) --------------------------------

    def _enumerate(self) -> None:
        seen: set[RepresentativeFunction] = {self.identity}
        order: list[RepresentativeFunction] = [self.identity]
        work = deque(order)
        gens = list(self._generators.values())
        while work:
            fn = work.popleft()
            for gen in gens:
                nxt = fn.then(gen)
                if nxt not in seen:
                    if len(seen) >= self.max_size:
                        raise MonoidSizeExceeded(
                            f"|F_M| exceeds max_size={self.max_size}"
                        )
                    seen.add(nxt)
                    order.append(nxt)
                    work.append(nxt)
        self._elements = frozenset(seen)

    def elements(self) -> frozenset[RepresentativeFunction]:
        """All of ``F_M^≡`` (including the identity ``f_ε``)."""
        if self._elements is None:
            self._enumerate()
        assert self._elements is not None
        return self._elements

    def size(self) -> int:
        """``|F_M^≡|`` — the number of distinct representative functions."""
        return len(self.elements())

    def composition_table(self) -> tuple[list[RepresentativeFunction], list[list[int]]]:
        """The specializer's output (§8): indexed elements plus a dense
        ``table[i][j] = index of elements[i] then elements[j]`` lookup.

        This is what BANSHEE compiles from an annotation specification:
        with the table in hand, the transitive-closure rule's annotation
        composition is a constant-time array access.
        """
        elements = sorted(self.elements(), key=lambda f: f.mapping)
        index = {fn: i for i, fn in enumerate(elements)}
        table = [
            [index[first.then(second)] for second in elements]
            for first in elements
        ]
        return elements, table

    # -- semantic predicates -------------------------------------------------

    def is_accepting(self, fn: RepresentativeFunction) -> bool:
        """Does ``fn`` represent full words of ``L(M)``?

        ``F_accept = { f | f(s0) ∈ S_accept }`` (Section 3.2).
        """
        return fn(self.machine.start) in self.machine.accepting

    def accepting_functions(self) -> frozenset[RepresentativeFunction]:
        """The set ``F_accept`` used by entailment queries."""
        return frozenset(f for f in self.elements() if self.is_accepting(f))

    def is_live(self, fn: RepresentativeFunction) -> bool:
        """Can ``fn``'s words still take part in an accepted word?

        A representative function is *live* when it is the class of some
        substring of ``L(M)``: there is a reachable state that ``fn``
        carries into a coreachable state.  Dead annotations are
        "necessarily non-accepting" and the solver drops them — the
        paper notes minimality of ``M`` makes this pruning sound.
        """
        return any(fn(s) in self._coreachable for s in self._reachable)

    def is_prefix_live(self, fn: RepresentativeFunction) -> bool:
        """Is ``fn`` the class of some prefix of ``L(M)``?"""
        return fn(self.machine.start) in self._coreachable

    # -- coarser congruences for unidirectional solving ----------------------

    def forward_class(self, fn: RepresentativeFunction) -> int:
        """Right-congruence class of ``fn`` — the state ``f(s0)``.

        ``w ≡_r w'`` iff ``δ(w, s0) = δ(w', s0)``; a forward solver only
        needs this state, giving at most ``|S|`` derived annotations
        (Section 5.1).
        """
        return fn(self.machine.start)

    def backward_class(self, fn: RepresentativeFunction) -> frozenset[int]:
        """Left-congruence class of ``fn`` — the accepting preimage.

        ``w ≡_l w'`` iff they are interchangeable as suffixes, which is
        determined by ``{ s | δ(w, s) ∈ S_accept }``.
        """
        return frozenset(
            s
            for s in range(self.machine.n_states)
            if fn(s) in self.machine.accepting
        )

    def forward_classes(self) -> frozenset[int]:
        """All right-congruence classes realized by the monoid."""
        return frozenset(self.forward_class(f) for f in self.elements())

    def backward_classes(self) -> frozenset[frozenset[int]]:
        """All left-congruence classes realized by the monoid."""
        return frozenset(self.backward_class(f) for f in self.elements())


def monoid_size_lower_bound(machine: DFA, budget: int) -> int:
    """Count monoid elements up to ``budget`` without storing a table.

    Used by benchmarks to probe superexponential monoids (Fig 2) without
    committing to full enumeration: returns the exact size if it is at
    most ``budget``, else ``budget``.
    """
    states = range(machine.n_states)
    identity = RepresentativeFunction(tuple(states))
    gens = [
        RepresentativeFunction(tuple(machine.delta[(s, sym)] for s in states))
        for sym in machine.alphabet
    ]
    seen = {identity}
    work = deque([identity])
    while work:
        fn = work.popleft()
        for gen in gens:
            nxt = fn.then(gen)
            if nxt not in seen:
                seen.add(nxt)
                if len(seen) >= budget:
                    return budget
                work.append(nxt)
    return len(seen)
