"""The annotation specification language of Section 8.

BANSHEE specializes the solver from a static description of the property
automaton, written in a small language "loosely based on ML pattern
matching syntax".  The paper's example::

    start state Unpriv :
        | seteuid_zero -> Priv;

    state Priv :
        | seteuid_nonzero -> Unpriv
        | execl -> Error;

    accept state Error;

We reproduce that language, extended with the *parametric* symbols of
Section 6.4, written ``open(x)`` / ``close(x)`` where ``x`` is a
parameter to be matched against concrete labels at analysis time::

    start state Closed :
        | open(x) -> Opened;

    state Opened :
        | close(x) -> Closed
        | open(x) -> Error;

    accept state Error;

Symbols without an explicit transition in a state are self-loops (the
property automaton monitors the program, ignoring irrelevant events) —
this makes the compiled machine complete, as the formalism requires.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.dfa.automaton import DFA


class SpecSyntaxError(ValueError):
    """Raised when an automaton specification fails to parse."""


@dataclass(frozen=True)
class SymbolSpec:
    """An (optionally parametric) alphabet symbol such as ``open(x)``."""

    name: str
    params: tuple[str, ...] = ()

    @property
    def is_parametric(self) -> bool:
        return bool(self.params)

    def __str__(self) -> str:
        if self.params:
            return f"{self.name}({', '.join(self.params)})"
        return self.name


@dataclass
class MachineSpec:
    """A parsed automaton specification.

    ``transitions`` maps ``(state, symbol name)`` to a successor state;
    symbols are identified by name (their parameter lists are recorded in
    ``symbols``).  Compile to a DFA with :meth:`to_dfa`.
    """

    states: list[str]
    start: str
    accepting: set[str]
    symbols: dict[str, SymbolSpec]
    transitions: dict[tuple[str, str], str] = field(default_factory=dict)

    def state_index(self, name: str) -> int:
        return self.states.index(name)

    @property
    def parametric_symbols(self) -> set[str]:
        return {name for name, spec in self.symbols.items() if spec.is_parametric}

    def unparse(self) -> str:
        """Render back to the specification language (round-trippable)."""
        lines: list[str] = []
        for state in self.states:
            keywords = []
            if state == self.start:
                keywords.append("start")
            if state in self.accepting:
                keywords.append("accept")
            keywords.append("state")
            header = f"{' '.join(keywords)} {state}"
            transitions = [
                (str(self.symbols[symbol]), target)
                for (source, symbol), target in sorted(self.transitions.items())
                if source == state
            ]
            if not transitions:
                lines.append(f"{header};")
                continue
            lines.append(f"{header} :")
            for index, (symbol, target) in enumerate(transitions):
                terminator = ";" if index == len(transitions) - 1 else ""
                lines.append(f"    | {symbol} -> {target}{terminator}")
        return "\n".join(lines) + "\n"

    def to_dfa(self) -> DFA:
        """Compile to a complete DFA; unspecified transitions self-loop."""
        index = {name: i for i, name in enumerate(self.states)}
        edges = []
        for state in self.states:
            for sym in self.symbols:
                target = self.transitions.get((state, sym), state)
                edges.append((index[state], sym, index[target]))
        return DFA.from_partial(
            n_states=len(self.states),
            alphabet=set(self.symbols),
            start=index[self.start],
            accepting={index[s] for s in self.accepting},
            edges=edges,
        )


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<kw>start|accept|state)\b"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<arrow>->)"
    r"|(?P<punct>[:;|(),]))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    # Strip comments (``# ...`` and ``// ...`` to end of line).
    text = re.sub(r"(#|//)[^\n]*", "", text)
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise SpecSyntaxError(f"unexpected input near {remainder[:20]!r}")
        pos = match.end()
        for kind in ("kw", "ident", "arrow", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _SpecParser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def take(self, kind: str | None = None, value: str | None = None) -> str:
        token = self.peek()
        if token is None:
            raise SpecSyntaxError("unexpected end of specification")
        if kind is not None and token[0] != kind:
            raise SpecSyntaxError(f"expected {kind}, found {token[1]!r}")
        if value is not None and token[1] != value:
            raise SpecSyntaxError(f"expected {value!r}, found {token[1]!r}")
        self.pos += 1
        return token[1]

    def parse(self) -> MachineSpec:
        states: list[str] = []
        start: str | None = None
        accepting: set[str] = set()
        symbols: dict[str, SymbolSpec] = {}
        transitions: dict[tuple[str, str], str] = {}
        pending: list[tuple[str, str, str]] = []

        while self.peek() is not None:
            is_start = is_accept = False
            while self.peek() is not None and self.peek()[1] in ("start", "accept"):
                flag = self.take("kw")
                is_start = is_start or flag == "start"
                is_accept = is_accept or flag == "accept"
            self.take("kw", "state")
            name = self.take("ident")
            if name in states:
                raise SpecSyntaxError(f"duplicate state {name!r}")
            states.append(name)
            if is_start:
                if start is not None:
                    raise SpecSyntaxError("multiple start states")
                start = name
            if is_accept:
                accepting.add(name)
            token = self.peek()
            if token is not None and token[1] == ":":
                self.take("punct", ":")
                while self.peek() is not None and self.peek()[1] == "|":
                    self.take("punct", "|")
                    sym = self._parse_symbol(symbols)
                    self.take("arrow")
                    target = self.take("ident")
                    pending.append((name, sym, target))
            self.take("punct", ";")

        if start is None:
            raise SpecSyntaxError("no start state declared")
        for src, sym, dst in pending:
            if dst not in states:
                raise SpecSyntaxError(f"transition targets unknown state {dst!r}")
            if (src, sym) in transitions:
                raise SpecSyntaxError(f"duplicate transition on {sym!r} from {src!r}")
            transitions[(src, sym)] = dst
        return MachineSpec(
            states=states,
            start=start,
            accepting=accepting,
            symbols=symbols,
            transitions=transitions,
        )

    def _parse_symbol(self, symbols: dict[str, SymbolSpec]) -> str:
        name = self.take("ident")
        params: tuple[str, ...] = ()
        token = self.peek()
        if token is not None and token[1] == "(":
            self.take("punct", "(")
            names: list[str] = [self.take("ident")]
            while self.peek() is not None and self.peek()[1] == ",":
                self.take("punct", ",")
                names.append(self.take("ident"))
            self.take("punct", ")")
            params = tuple(names)
        spec = SymbolSpec(name, params)
        existing = symbols.get(name)
        if existing is not None and existing != spec:
            raise SpecSyntaxError(
                f"symbol {name!r} used with inconsistent parameters"
            )
        symbols[name] = spec
        return name


def parse_spec(text: str) -> MachineSpec:
    """Parse a Section 8 automaton specification into a :class:`MachineSpec`."""
    return _SpecParser(_tokenize(text)).parse()
