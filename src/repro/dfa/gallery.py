"""The paper's gallery of concrete property automata.

Every machine that appears in a figure of the paper is constructed here:

* :func:`one_bit_machine` — ``M_1bit`` for a single dataflow fact
  (Fig 1); :func:`bit_vector_machine` builds the n-bit product.
* :func:`adversarial_machine` — the rotate/swap/merge machine whose
  transition monoid is all ``|S|^|S|`` functions (Fig 2, Section 4).
* :func:`privilege_machine` — the three-state process-privilege property
  (Fig 3), built from the paper's own Section 8 specification text.
* :func:`full_privilege_machine` — a reconstruction of MOPS "Property 1"
  (the paper reports 11 states, 9 alphabet symbols, 58 representative
  functions); the original automaton was never published, so we model
  POSIX uid-juggling semantics directly (see DESIGN.md §5).
* :func:`file_state_machine` — the parametric open/close property
  (Fig 5, Section 6.4).
* :func:`bracket_machine` — bounded-depth bracket matching, the
  annotation language for type-constructor matching in the flow analysis
  (Fig 10, Section 7.2.2).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Hashable, Iterable, Sequence

from repro.dfa.automaton import DFA
from repro.dfa.spec import MachineSpec, parse_spec

# ---------------------------------------------------------------------------
# Fig 1: the 1-bit gen/kill language
# ---------------------------------------------------------------------------


def one_bit_machine(gen: str = "g", kill: str = "k") -> DFA:
    """``M_1bit`` (Fig 1): is the dataflow fact live after the word?

    State 0 = fact absent (start), state 1 = fact present (accepting).
    ``gen`` forces the fact on, ``kill`` forces it off — both idempotent,
    and the transition monoid is exactly ``{f_eps, f_g, f_k}``.
    """
    return DFA.from_partial(
        n_states=2,
        alphabet={gen, kill},
        start=0,
        accepting={1},
        edges=[(0, gen, 1), (0, kill, 0), (1, gen, 1), (1, kill, 0)],
    )


def bit_vector_machine(n_bits: int) -> DFA:
    """Explicit ``2^n``-state product machine for an n-bit language.

    Alphabet symbols are ``("g", i)`` and ``("k", i)`` per bit.  The
    machine accepts words after which **bit 0** holds (each bit's
    acceptance is a separate query; see :mod:`repro.dataflow.bitvector`
    for the lazy product representation used in practice).
    """
    if n_bits < 1:
        raise ValueError("n_bits must be positive")
    states = list(itertools.product((0, 1), repeat=n_bits))
    index = {s: i for i, s in enumerate(states)}
    alphabet = {("g", i) for i in range(n_bits)} | {("k", i) for i in range(n_bits)}
    edges = []
    for state in states:
        for i in range(n_bits):
            on = list(state)
            on[i] = 1
            off = list(state)
            off[i] = 0
            edges.append((index[state], ("g", i), index[tuple(on)]))
            edges.append((index[state], ("k", i), index[tuple(off)]))
    accepting = {index[s] for s in states if s[0] == 1}
    return DFA.from_partial(
        n_states=len(states),
        alphabet=alphabet,
        start=index[tuple([0] * n_bits)],
        accepting=accepting,
        edges=edges,
    )


# ---------------------------------------------------------------------------
# Fig 2: the adversarial rotate/swap/merge machine
# ---------------------------------------------------------------------------


def adversarial_machine(n_states: int) -> DFA:
    """The Fig 2 machine: ``F_M^≡`` contains all ``n^n`` functions.

    * ``rotate`` maps state i to i+1 (with wraparound),
    * ``swap`` exchanges states 0 and 1,
    * ``merge`` maps state 1 to state 0 (an information-losing map).

    Rotations and the transposition generate every permutation; adding a
    single rank-reducing idempotent generates the full transformation
    monoid, so ``|F_M^≡| = n^n`` for n >= 1 (for n <= 2 some of the three
    generators coincide, and the monoid is the full ``n^n`` anyway).
    """
    if n_states < 1:
        raise ValueError("n_states must be positive")
    n = n_states
    edges = []
    for s in range(n):
        edges.append((s, "rotate", (s + 1) % n))
        if s == 0:
            swap_to, merge_to = (1 % n), 0
        elif s == 1:
            swap_to, merge_to = 0, 0
        else:
            swap_to, merge_to = s, s
        edges.append((s, "swap", swap_to))
        edges.append((s, "merge", merge_to))
    return DFA.from_partial(
        n_states=n,
        alphabet={"rotate", "swap", "merge"},
        start=0,
        accepting={0},
        edges=edges,
    )


# ---------------------------------------------------------------------------
# Fig 3: process privilege (teaching version) — built from the paper's
# own specification-language text (Section 8).
# ---------------------------------------------------------------------------

PRIVILEGE_SPEC = """
start state Unpriv :
    | seteuid_zero -> Priv;

state Priv :
    | seteuid_nonzero -> Unpriv
    | execl -> Error;

accept state Error;
"""


def privilege_spec() -> MachineSpec:
    """Parsed Section 8 specification for the Fig 3 property."""
    return parse_spec(PRIVILEGE_SPEC)


def privilege_machine() -> DFA:
    """The Fig 3 three-state process-privilege automaton."""
    return privilege_spec().to_dfa()


# ---------------------------------------------------------------------------
# MOPS "Property 1": full process-privilege model (11 states, 9 symbols)
# ---------------------------------------------------------------------------

_UID_SYMBOLS: dict[str, Callable[[tuple[str, str, str]], tuple[str, str, str] | str]] = {}


def _uid_symbol(name: str):
    def register(fn):
        _UID_SYMBOLS[name] = fn
        return fn

    return register


def _apply_setuid(uids: tuple[str, str, str], target: str) -> tuple[str, str, str]:
    ruid, euid, suid = uids
    if euid == "0":
        # Privileged setuid sets all three ids.
        return (target, target, target)
    if target in (ruid, suid):
        return (ruid, target, suid)
    return uids  # failed call: no effect


@_uid_symbol("setuid_zero")
def _setuid_zero(uids):
    return _apply_setuid(uids, "0")


@_uid_symbol("setuid_user")
def _setuid_user(uids):
    return _apply_setuid(uids, "u")


def _apply_seteuid(uids: tuple[str, str, str], target: str) -> tuple[str, str, str]:
    ruid, euid, suid = uids
    if euid == "0" or target in (ruid, suid):
        return (ruid, target, suid)
    return uids


@_uid_symbol("seteuid_zero")
def _seteuid_zero(uids):
    return _apply_seteuid(uids, "0")


@_uid_symbol("seteuid_user")
def _seteuid_user(uids):
    return _apply_seteuid(uids, "u")


def _apply_setreuid(
    uids: tuple[str, str, str], new_r: str | None, new_e: str | None
) -> tuple[str, str, str]:
    ruid, euid, suid = uids
    privileged = euid == "0"
    r = ruid if new_r is None else new_r
    e = euid if new_e is None else new_e
    if not privileged:
        allowed = {ruid, euid, suid}
        if r not in allowed or e not in allowed:
            return uids
    # If the real uid is changed, or the effective uid is set to a value
    # other than the previous real uid, the saved uid is set to the new
    # effective uid (POSIX).
    s = suid
    if new_r is not None or (new_e is not None and new_e != ruid):
        s = e
    return (r, e, s)


@_uid_symbol("setreuid_user_user")
def _setreuid_user_user(uids):
    return _apply_setreuid(uids, "u", "u")


@_uid_symbol("setreuid_zero_zero")
def _setreuid_zero_zero(uids):
    return _apply_setreuid(uids, "0", "0")


@_uid_symbol("setreuid_user_zero")
def _setreuid_user_zero(uids):
    return _apply_setreuid(uids, "u", "0")


@_uid_symbol("exec")
def _exec(uids):
    _ruid, euid, _suid = uids
    if euid == "0":
        # Executing an untrusted program with effective root privilege.
        return "error"
    return uids


@_uid_symbol("system")
def _system(uids):
    _ruid, euid, suid = uids
    if euid == "0" or suid == "0":
        # system() runs a shell; privilege recoverable through the saved
        # uid is also exploitable (the shell can call seteuid(0)).
        return "error"
    return uids


FULL_PRIVILEGE_SYMBOLS = tuple(sorted(_UID_SYMBOLS))


def full_privilege_machine() -> DFA:
    """Reconstruction of MOPS Property 1 (see DESIGN.md §5).

    States abstract the process's (real, effective, saved) uid triple,
    each component being root (``0``) or the invoking user (``u``), plus
    a Start state (uids not yet observed, assumed the setuid-root
    configuration ``(u, 0, 0)``) and an Error state: 10 states in total.
    Nine symbols model the uid-setting system calls plus the exec/system
    sinks.  The paper reports 11 states, 9 symbols and 58 representative
    functions for the (unpublished) original; this reconstruction has
    10 states, 9 symbols and 52 representative functions — the same
    order, demonstrating the same point that ``|F_M^≡|`` stays tiny
    compared to ``|S|^|S|``.

    The machine is deliberately *not* minimized: state counts reported
    for property automata refer to the model as specified, and the
    benchmark that reproduces the paper's monoid-size claim measures
    this specification-level machine (its language-minimal DFA has only
    4 states).
    """
    uid_values = ("0", "u")
    triples = list(itertools.product(uid_values, repeat=3))
    states: list[tuple[str, str, str] | str] = ["start", *triples, "error"]
    index = {s: i for i, s in enumerate(states)}
    edges = []
    for state in states:
        for name, action in _UID_SYMBOLS.items():
            if state == "error":
                target: tuple[str, str, str] | str = "error"
            elif state == "start":
                target = action(("u", "0", "0"))
            else:
                target = action(state)
            edges.append((index[state], name, index[target]))
    return DFA.from_partial(
        n_states=len(states),
        alphabet=set(_UID_SYMBOLS),
        start=index["start"],
        accepting={index["error"]},
        edges=edges,
    )


# ---------------------------------------------------------------------------
# Fig 5: parametric file-state property
# ---------------------------------------------------------------------------

FILE_STATE_SPEC = """
start state Closed :
    | open(x) -> Opened
    | close(x) -> Error;

state Opened :
    | close(x) -> Closed
    | open(x) -> Error;

accept state Error;
"""


def file_state_spec() -> MachineSpec:
    """Parsed specification of the Fig 5 open/close property.

    Both symbols are parametric in the descriptor ``x``; the accepting
    Error state flags double-open and double-close.  Queries about a
    descriptor being *left open* target the ``Opened`` state instead of
    the accept set (the query machinery allows any target states).
    """
    return parse_spec(FILE_STATE_SPEC)


def file_state_machine() -> DFA:
    return file_state_spec().to_dfa()


# ---------------------------------------------------------------------------
# Fig 10: bounded-depth bracket languages for type-constructor matching
# ---------------------------------------------------------------------------


def open_bracket(kind: Hashable) -> tuple[str, Hashable]:
    """Alphabet symbol for ``[_kind`` (flow *into* a constructor)."""
    return ("[", kind)


def close_bracket(kind: Hashable) -> tuple[str, Hashable]:
    """Alphabet symbol for ``]_kind`` (flow *out of* a constructor)."""
    return ("]", kind)


def bracket_machine(
    kinds: Iterable[Hashable],
    depth: int,
    can_nest: Callable[[Hashable | None, Hashable], bool] | None = None,
) -> DFA:
    """Bounded-depth matched-bracket language (Fig 10 generalized).

    States are stacks of currently-open bracket kinds, up to ``depth``
    deep; ``[k`` pushes, a matching ``]k`` pops, anything else is dead.
    The empty stack is both start and accept, so the accepted language is
    exactly the *matched* flow words.  ``can_nest(top, k)`` restricts
    which kinds may open in a given context (``top is None`` at the
    outermost level) — the flow analysis uses the type structure here,
    which is what keeps the state count linear in practice.

    For the paper's single-level-pair example (Fig 10) use
    ``bracket_machine([(1, "int"), (2, "int")], depth=1)``.
    """
    kinds = list(kinds)
    alphabet = {open_bracket(k) for k in kinds} | {close_bracket(k) for k in kinds}
    start: tuple[Hashable, ...] = ()
    states: dict[tuple[Hashable, ...], int] = {start: 0}
    order: list[tuple[Hashable, ...]] = [start]
    edges: list[tuple[int, tuple[str, Hashable], int]] = []
    work = deque([start])
    while work:
        stack = work.popleft()
        src = states[stack]
        top = stack[-1] if stack else None
        for kind in kinds:
            if len(stack) < depth and (can_nest is None or can_nest(top, kind)):
                nxt = stack + (kind,)
                if nxt not in states:
                    states[nxt] = len(order)
                    order.append(nxt)
                    work.append(nxt)
                edges.append((src, open_bracket(kind), states[nxt]))
            if top == kind:
                nxt = stack[:-1]
                edges.append((src, close_bracket(kind), states[nxt]))
    return DFA.from_partial(
        n_states=len(order),
        alphabet=alphabet,
        start=0,
        accepting={0},
        edges=edges,
    )


def pair_machine(component_types: Sequence[Hashable] = ("int", "int")) -> DFA:
    """The Fig 10 automaton for single-level pairs.

    ``component_types`` names the type at each pair position, giving the
    ``τ`` superscripts of the ``[_τ^i`` symbols.
    """
    kinds = [(i + 1, tau) for i, tau in enumerate(component_types)]
    return bracket_machine(kinds, depth=1)
