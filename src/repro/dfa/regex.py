"""A small regular-expression front end.

Annotation languages in the paper are specified either directly as
automata (Section 8's specification language, :mod:`repro.dfa.spec`) or
constructed programmatically.  For tests and examples it is convenient to
also build machines from textual regular expressions; this module
implements a classic Thompson construction over the grammar::

    regex  ::= term ('|' term)*
    term   ::= factor*
    factor ::= atom ('*' | '+' | '?')*
    atom   ::= symbol | '(' regex ')'

Symbols are single characters, or arbitrary multi-character names written
in angle brackets, e.g. ``<seteuid_zero>``.  The empty word is written
``()`` or by an empty alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfa.automaton import DFA, EPSILON, NFA, Symbol


class RegexSyntaxError(ValueError):
    """Raised when a regular expression fails to parse."""


@dataclass
class _Fragment:
    """An NFA fragment with a single start and single accept state."""

    start: int
    accept: int


class _Builder:
    """Accumulates NFA states and epsilon/symbol edges."""

    def __init__(self) -> None:
        self.n_states = 0
        self.edges: list[tuple[int, Symbol, int]] = []
        self.alphabet: set[Symbol] = set()

    def new_state(self) -> int:
        self.n_states += 1
        return self.n_states - 1

    def add_edge(self, src: int, sym: Symbol, dst: int) -> None:
        self.edges.append((src, sym, dst))
        if sym is not EPSILON:
            self.alphabet.add(sym)

    def symbol(self, sym: Symbol) -> _Fragment:
        start, accept = self.new_state(), self.new_state()
        self.add_edge(start, sym, accept)
        return _Fragment(start, accept)

    def empty(self) -> _Fragment:
        start, accept = self.new_state(), self.new_state()
        self.add_edge(start, EPSILON, accept)
        return _Fragment(start, accept)

    def concat(self, a: _Fragment, b: _Fragment) -> _Fragment:
        self.add_edge(a.accept, EPSILON, b.start)
        return _Fragment(a.start, b.accept)

    def alternate(self, a: _Fragment, b: _Fragment) -> _Fragment:
        start, accept = self.new_state(), self.new_state()
        self.add_edge(start, EPSILON, a.start)
        self.add_edge(start, EPSILON, b.start)
        self.add_edge(a.accept, EPSILON, accept)
        self.add_edge(b.accept, EPSILON, accept)
        return _Fragment(start, accept)

    def star(self, a: _Fragment) -> _Fragment:
        start, accept = self.new_state(), self.new_state()
        self.add_edge(start, EPSILON, a.start)
        self.add_edge(start, EPSILON, accept)
        self.add_edge(a.accept, EPSILON, a.start)
        self.add_edge(a.accept, EPSILON, accept)
        return _Fragment(start, accept)

    def plus(self, a: _Fragment) -> _Fragment:
        starred = self.star(_Fragment(a.start, a.accept))
        self.add_edge(a.accept, EPSILON, starred.start)
        # a then a*: build explicitly to avoid sharing subtleties.
        return _Fragment(a.start, starred.accept)

    def optional(self, a: _Fragment) -> _Fragment:
        start, accept = self.new_state(), self.new_state()
        self.add_edge(start, EPSILON, a.start)
        self.add_edge(start, EPSILON, accept)
        self.add_edge(a.accept, EPSILON, accept)
        return _Fragment(start, accept)


class _Parser:
    def __init__(self, text: str, builder: _Builder) -> None:
        self.text = text
        self.pos = 0
        self.builder = builder

    def peek(self) -> str | None:
        if self.pos < len(self.text):
            return self.text[self.pos]
        return None

    def take(self) -> str:
        char = self.text[self.pos]
        self.pos += 1
        return char

    def parse(self) -> _Fragment:
        fragment = self.parse_alternation()
        if self.pos != len(self.text):
            raise RegexSyntaxError(
                f"unexpected character {self.text[self.pos]!r} at {self.pos}"
            )
        return fragment

    def parse_alternation(self) -> _Fragment:
        fragment = self.parse_term()
        while self.peek() == "|":
            self.take()
            fragment = self.builder.alternate(fragment, self.parse_term())
        return fragment

    def parse_term(self) -> _Fragment:
        fragment: _Fragment | None = None
        while self.peek() not in (None, "|", ")"):
            factor = self.parse_factor()
            fragment = (
                factor if fragment is None else self.builder.concat(fragment, factor)
            )
        return fragment if fragment is not None else self.builder.empty()

    def parse_factor(self) -> _Fragment:
        fragment = self.parse_atom()
        while self.peek() in ("*", "+", "?"):
            op = self.take()
            if op == "*":
                fragment = self.builder.star(fragment)
            elif op == "+":
                fragment = self.builder.plus(fragment)
            else:
                fragment = self.builder.optional(fragment)
        return fragment

    def parse_atom(self) -> _Fragment:
        char = self.peek()
        if char is None:
            raise RegexSyntaxError("unexpected end of pattern")
        if char == "(":
            self.take()
            fragment = self.parse_alternation()
            if self.peek() != ")":
                raise RegexSyntaxError("unbalanced parenthesis")
            self.take()
            return fragment
        if char == "<":
            self.take()
            name_chars: list[str] = []
            while self.peek() not in (">", None):
                name_chars.append(self.take())
            if self.peek() != ">":
                raise RegexSyntaxError("unterminated <name> symbol")
            self.take()
            if not name_chars:
                raise RegexSyntaxError("empty <name> symbol")
            return self.builder.symbol("".join(name_chars))
        if char in "*+?)|":
            raise RegexSyntaxError(f"unexpected operator {char!r} at {self.pos}")
        if char == "\\":
            self.take()
            if self.peek() is None:
                raise RegexSyntaxError("dangling escape")
            return self.builder.symbol(self.take())
        return self.builder.symbol(self.take())


def regex_to_nfa(pattern: str, alphabet: set[Symbol] | None = None) -> NFA:
    """Compile ``pattern`` to an :class:`NFA`.

    ``alphabet`` may supply extra symbols not mentioned in the pattern
    (the machine must still reject words containing them, so they become
    part of the automaton's alphabet).
    """
    builder = _Builder()
    fragment = _Parser(pattern, builder).parse()
    symbols = set(builder.alphabet)
    if alphabet:
        symbols |= set(alphabet)
    return NFA.build(
        n_states=builder.n_states,
        alphabet=symbols,
        start=[fragment.start],
        accepting=[fragment.accept],
        edges=builder.edges,
    )


def regex_to_dfa(pattern: str, alphabet: set[Symbol] | None = None) -> DFA:
    """Compile ``pattern`` to a minimal complete :class:`DFA`."""
    return regex_to_nfa(pattern, alphabet).determinize().minimize()
