"""Deterministic and nondeterministic finite automata.

The paper (Section 2.2) works with a *minimized deterministic* finite
automaton ``M = (Sigma, S, s0, delta, S_accept)`` whose transition
function is total.  This module provides:

* :class:`NFA` — nondeterministic automata with epsilon moves, the
  convenient intermediate representation for regex compilation, reversal
  and the substring constructions.
* :class:`DFA` — deterministic automata over integer states ``0..n-1``
  with a total transition function (a *dead* non-accepting sink is added
  on completion).  DFAs support Hopcroft minimization, products,
  complement, reversal, and language queries.

States are always plain integers; symbols may be any hashable value
(strings in all of the paper's applications).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping, Sequence

Symbol = Hashable

#: Sentinel used as the label of epsilon transitions in :class:`NFA`.
EPSILON = object()


class AutomatonError(ValueError):
    """Raised for malformed automaton constructions."""


# ---------------------------------------------------------------------------
# NFA
# ---------------------------------------------------------------------------


@dataclass
class NFA:
    """A nondeterministic finite automaton with epsilon transitions.

    ``transitions`` maps ``(state, symbol)`` to a set of successor states;
    ``symbol`` may be :data:`EPSILON`.  States are integers but need not
    be contiguous.
    """

    n_states: int
    alphabet: frozenset[Symbol]
    start: frozenset[int]
    accepting: frozenset[int]
    transitions: dict[tuple[int, Symbol], frozenset[int]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        n_states: int,
        alphabet: Iterable[Symbol],
        start: Iterable[int],
        accepting: Iterable[int],
        edges: Iterable[tuple[int, Symbol, int]],
    ) -> "NFA":
        """Construct an NFA from an edge list ``(src, symbol, dst)``."""
        table: dict[tuple[int, Symbol], set[int]] = {}
        for src, sym, dst in edges:
            table.setdefault((src, sym), set()).add(dst)
        return cls(
            n_states=n_states,
            alphabet=frozenset(alphabet),
            start=frozenset(start),
            accepting=frozenset(accepting),
            transitions={key: frozenset(v) for key, v in table.items()},
        )

    def successors(self, state: int, symbol: Symbol) -> frozenset[int]:
        return self.transitions.get((state, symbol), frozenset())

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        """All states reachable from ``states`` via epsilon moves."""
        seen = set(states)
        work = deque(seen)
        while work:
            state = work.popleft()
            for nxt in self.successors(state, EPSILON):
                if nxt not in seen:
                    seen.add(nxt)
                    work.append(nxt)
        return frozenset(seen)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        current = self.epsilon_closure(self.start)
        for sym in word:
            moved = set()
            for state in current:
                moved.update(self.successors(state, sym))
            current = self.epsilon_closure(moved)
            if not current:
                return False
        return bool(current & self.accepting)

    def determinize(self) -> "DFA":
        """Subset construction; the result is complete but not minimal."""
        alphabet = tuple(sorted(self.alphabet, key=repr))
        start_set = self.epsilon_closure(self.start)
        index: dict[frozenset[int], int] = {start_set: 0}
        order: list[frozenset[int]] = [start_set]
        delta: dict[tuple[int, Symbol], int] = {}
        work = deque([start_set])
        while work:
            current = work.popleft()
            src = index[current]
            for sym in alphabet:
                moved: set[int] = set()
                for state in current:
                    moved.update(self.successors(state, sym))
                closure = self.epsilon_closure(moved)
                if closure not in index:
                    index[closure] = len(order)
                    order.append(closure)
                    work.append(closure)
                delta[(src, sym)] = index[closure]
        accepting = frozenset(
            i for i, subset in enumerate(order) if subset & self.accepting
        )
        return DFA(
            n_states=len(order),
            alphabet=frozenset(alphabet),
            start=0,
            accepting=accepting,
            delta=delta,
        )

    def reverse(self) -> "NFA":
        """NFA for the reversal of this automaton's language."""
        table: dict[tuple[int, Symbol], set[int]] = {}
        for (src, sym), dsts in self.transitions.items():
            for dst in dsts:
                table.setdefault((dst, sym), set()).add(src)
        return NFA(
            n_states=self.n_states,
            alphabet=self.alphabet,
            start=self.accepting,
            accepting=self.start,
            transitions={key: frozenset(v) for key, v in table.items()},
        )


# ---------------------------------------------------------------------------
# DFA
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DFA:
    """A deterministic finite automaton with a **total** transition map.

    States are ``0 .. n_states - 1``.  ``delta`` must define a successor
    for every ``(state, symbol)`` pair; use :meth:`from_partial` to build
    from a partial description (a dead sink is added as needed).
    """

    n_states: int
    alphabet: frozenset[Symbol]
    start: int
    accepting: frozenset[int]
    delta: Mapping[tuple[int, Symbol], int]

    def __post_init__(self) -> None:
        for state in range(self.n_states):
            for sym in self.alphabet:
                if (state, sym) not in self.delta:
                    raise AutomatonError(
                        f"transition function is partial: missing delta({state}, {sym!r})"
                    )
        if not (0 <= self.start < self.n_states):
            raise AutomatonError(f"start state {self.start} out of range")
        for state in self.accepting:
            if not (0 <= state < self.n_states):
                raise AutomatonError(f"accepting state {state} out of range")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_partial(
        cls,
        n_states: int,
        alphabet: Iterable[Symbol],
        start: int,
        accepting: Iterable[int],
        edges: Iterable[tuple[int, Symbol, int]],
    ) -> "DFA":
        """Build a DFA from a partial edge list, completing with a dead sink.

        If every ``(state, symbol)`` pair is covered by ``edges`` no sink
        is added.
        """
        alphabet = frozenset(alphabet)
        delta: dict[tuple[int, Symbol], int] = {}
        for src, sym, dst in edges:
            if sym not in alphabet:
                raise AutomatonError(f"edge symbol {sym!r} not in alphabet")
            if (src, sym) in delta and delta[(src, sym)] != dst:
                raise AutomatonError(f"nondeterministic edge from ({src}, {sym!r})")
            delta[(src, sym)] = dst
        missing = [
            (state, sym)
            for state in range(n_states)
            for sym in alphabet
            if (state, sym) not in delta
        ]
        total_states = n_states
        if missing:
            dead = n_states
            total_states = n_states + 1
            for key in missing:
                delta[key] = dead
            for sym in alphabet:
                delta[(dead, sym)] = dead
        return cls(
            n_states=total_states,
            alphabet=alphabet,
            start=start,
            accepting=frozenset(accepting),
            delta=dict(delta),
        )

    # -- basic queries ------------------------------------------------------

    def step(self, state: int, symbol: Symbol) -> int:
        """``delta(state, symbol)`` for a single input symbol."""
        return self.delta[(state, symbol)]

    def run(self, word: Sequence[Symbol], state: int | None = None) -> int:
        """Extended transition function ``delta(word, state)``."""
        current = self.start if state is None else state
        for sym in word:
            current = self.delta[(current, sym)]
        return current

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Language membership; symbols outside the alphabet reject."""
        current = self.start
        for sym in word:
            nxt = self.delta.get((current, sym))
            if nxt is None:
                return False
            current = nxt
        return current in self.accepting

    def is_empty(self) -> bool:
        """True iff the accepted language is empty."""
        return not (self.reachable_states() & self.accepting)

    def reachable_states(self) -> frozenset[int]:
        """States reachable from the start state."""
        seen = {self.start}
        work = deque(seen)
        while work:
            state = work.popleft()
            for sym in self.alphabet:
                nxt = self.delta[(state, sym)]
                if nxt not in seen:
                    seen.add(nxt)
                    work.append(nxt)
        return frozenset(seen)

    def coreachable_states(self) -> frozenset[int]:
        """States from which some accepting state is reachable."""
        inverse: dict[int, set[int]] = {s: set() for s in range(self.n_states)}
        for (src, _sym), dst in self.delta.items():
            inverse[dst].add(src)
        seen = set(self.accepting)
        work = deque(seen)
        while work:
            state = work.popleft()
            for prev in inverse[state]:
                if prev not in seen:
                    seen.add(prev)
                    work.append(prev)
        return frozenset(seen)

    def live_states(self) -> frozenset[int]:
        """States both reachable and coreachable (on some accepting path)."""
        return self.reachable_states() & self.coreachable_states()

    # -- transformations ----------------------------------------------------

    def map_states(self, rename: Mapping[int, int], n_states: int, start: int) -> "DFA":
        """Quotient/relabel this DFA through the ``rename`` map."""
        delta: dict[tuple[int, Symbol], int] = {}
        for (src, sym), dst in self.delta.items():
            if src in rename:
                delta[(rename[src], sym)] = rename[dst]
        accepting = frozenset(rename[s] for s in self.accepting if s in rename)
        return DFA(
            n_states=n_states,
            alphabet=self.alphabet,
            start=start,
            accepting=accepting,
            delta=delta,
        )

    def minimize(self) -> "DFA":
        """Hopcroft minimization (restricted to reachable states).

        The result is the canonical minimal complete DFA for the
        language; state ``0`` is its start state.
        """
        reachable = sorted(self.reachable_states())
        index = {s: i for i, s in enumerate(reachable)}
        n = len(reachable)
        alphabet = tuple(sorted(self.alphabet, key=repr))
        delta = [
            [index[self.delta[(s, sym)]] for sym in alphabet] for s in reachable
        ]
        accepting = {index[s] for s in self.accepting if s in index}

        inverse: list[list[set[int]]] = [
            [set() for _ in alphabet] for _ in range(n)
        ]
        for state in range(n):
            for k in range(len(alphabet)):
                inverse[delta[state][k]][k].add(state)

        non_accepting = set(range(n)) - accepting
        partition: list[set[int]] = [b for b in (accepting, non_accepting) if b]
        block_of = [0] * n
        for block_id, block in enumerate(partition):
            for state in block:
                block_of[state] = block_id
        work: deque[tuple[int, int]] = deque(
            (block_id, k)
            for block_id in range(len(partition))
            for k in range(len(alphabet))
        )
        while work:
            block_id, k = work.popleft()
            splitter = partition[block_id]
            preimage: set[int] = set()
            for state in splitter:
                preimage |= inverse[state][k]
            touched: dict[int, set[int]] = {}
            for state in preimage:
                touched.setdefault(block_of[state], set()).add(state)
            for victim_id, inside in touched.items():
                victim = partition[victim_id]
                if len(inside) == len(victim):
                    continue
                outside = victim - inside
                smaller, larger = (
                    (inside, outside) if len(inside) <= len(outside) else (outside, inside)
                )
                partition[victim_id] = larger
                new_id = len(partition)
                partition.append(smaller)
                for state in smaller:
                    block_of[state] = new_id
                for sym_index in range(len(alphabet)):
                    work.append((new_id, sym_index))

        # Renumber blocks so the start block is state 0 and numbering is
        # canonical (BFS order over symbols sorted by repr).
        start_block = block_of[index[self.start]]
        renumber = {start_block: 0}
        order = deque([start_block])
        while order:
            block = order.popleft()
            representative = next(iter(partition[block]))
            for k in range(len(alphabet)):
                succ = block_of[delta[representative][k]]
                if succ not in renumber:
                    renumber[succ] = len(renumber)
                    order.append(succ)
        new_n = len(renumber)
        new_delta: dict[tuple[int, Symbol], int] = {}
        new_accepting: set[int] = set()
        for block, new_id in renumber.items():
            representative = next(iter(partition[block]))
            for k, sym in enumerate(alphabet):
                new_delta[(new_id, sym)] = renumber[block_of[delta[representative][k]]]
            if representative in accepting:
                new_accepting.add(new_id)
        return DFA(
            n_states=new_n,
            alphabet=self.alphabet,
            start=0,
            accepting=frozenset(new_accepting),
            delta=new_delta,
        )

    def complement(self) -> "DFA":
        """DFA for the complement language (same alphabet)."""
        return DFA(
            n_states=self.n_states,
            alphabet=self.alphabet,
            start=self.start,
            accepting=frozenset(range(self.n_states)) - self.accepting,
            delta=dict(self.delta),
        )

    def product(
        self, other: "DFA", accept: Callable[[bool, bool], bool]
    ) -> "DFA":
        """Product construction; ``accept`` combines the acceptance bits.

        Use ``lambda a, b: a and b`` for intersection, ``or`` for union.
        Both machines must share an alphabet.
        """
        if self.alphabet != other.alphabet:
            raise AutomatonError("product requires identical alphabets")
        index: dict[tuple[int, int], int] = {(self.start, other.start): 0}
        order = [(self.start, other.start)]
        delta: dict[tuple[int, Symbol], int] = {}
        work = deque(order)
        while work:
            pair = work.popleft()
            src = index[pair]
            for sym in self.alphabet:
                nxt = (self.delta[(pair[0], sym)], other.delta[(pair[1], sym)])
                if nxt not in index:
                    index[nxt] = len(order)
                    order.append(nxt)
                    work.append(nxt)
                delta[(src, sym)] = index[nxt]
        accepting = frozenset(
            index[pair]
            for pair in order
            if accept(pair[0] in self.accepting, pair[1] in other.accepting)
        )
        return DFA(
            n_states=len(order),
            alphabet=self.alphabet,
            start=0,
            accepting=accepting,
            delta=delta,
        )

    def intersect(self, other: "DFA") -> "DFA":
        return self.product(other, lambda a, b: a and b)

    def union(self, other: "DFA") -> "DFA":
        return self.product(other, lambda a, b: a or b)

    def to_nfa(self) -> NFA:
        table: dict[tuple[int, Symbol], frozenset[int]] = {
            key: frozenset({dst}) for key, dst in self.delta.items()
        }
        return NFA(
            n_states=self.n_states,
            alphabet=self.alphabet,
            start=frozenset({self.start}),
            accepting=self.accepting,
            transitions=table,
        )

    def reverse(self) -> "DFA":
        """Minimal DFA for the reversed language (Brzozowski step)."""
        return self.to_nfa().reverse().determinize().minimize()

    def equivalent(self, other: "DFA") -> bool:
        """Language equivalence via minimization and isomorphism check."""
        a = self.minimize()
        b = other.minimize()
        if a.alphabet != b.alphabet or a.n_states != b.n_states:
            return False
        # Canonical numbering makes minimal DFAs directly comparable.
        return a.accepting == b.accepting and dict(a.delta) == dict(b.delta)

    # -- enumeration --------------------------------------------------------

    def words(self, max_length: int) -> Iterator[tuple[Symbol, ...]]:
        """Yield all accepted words of length at most ``max_length``."""
        alphabet = tuple(sorted(self.alphabet, key=repr))
        for length in range(max_length + 1):
            for word in itertools.product(alphabet, repeat=length):
                if self.accepts(word):
                    yield word

    def shortest_accepted(self) -> tuple[Symbol, ...] | None:
        """A shortest accepted word, or ``None`` for the empty language."""
        if self.start in self.accepting:
            return ()
        alphabet = tuple(sorted(self.alphabet, key=repr))
        parent: dict[int, tuple[int, Symbol]] = {}
        seen = {self.start}
        work = deque([self.start])
        while work:
            state = work.popleft()
            for sym in alphabet:
                nxt = self.delta[(state, sym)]
                if nxt in seen:
                    continue
                seen.add(nxt)
                parent[nxt] = (state, sym)
                if nxt in self.accepting:
                    word: list[Symbol] = []
                    cursor = nxt
                    while cursor != self.start:
                        prev, via = parent[cursor]
                        word.append(via)
                        cursor = prev
                    return tuple(reversed(word))
                work.append(nxt)
        return None


def literal_dfa(word: Sequence[Symbol], alphabet: Iterable[Symbol]) -> DFA:
    """DFA accepting exactly the single word ``word``."""
    edges = [(i, sym, i + 1) for i, sym in enumerate(word)]
    return DFA.from_partial(
        n_states=len(word) + 1,
        alphabet=alphabet,
        start=0,
        accepting=[len(word)],
        edges=edges,
    )
