"""Type-based flow analysis (Section 7).

The paper's novel application: context-sensitive (polymorphically
recursive), field-sensitive label-flow analysis with non-structural
subtyping.  Function call/return matching is the *context-free* side,
encoded with ``o_i`` constructors (the set-constraint/CFL-reachability
reduction of Kodumal & Aiken 2004); type-constructor matching is the
*regular* side, encoded as bounded-depth bracket annotations (Fig 10).

* :mod:`repro.flow.lang` — the Section 7.1 source language with a parser
  (labels are written ``expr@Name``);
* :mod:`repro.flow.types` — labeled types and the ``spread`` operator;
* :mod:`repro.flow.infer` — the Fig 8/9 type rules and constraint
  generation, including the well-labeledness (WL) bracket constraints;
* :mod:`repro.flow.analysis` — the user-facing :class:`FlowAnalysis`
  with ``flows(A, B)`` queries;
* :mod:`repro.flow.dual` — the Section 7.6 dual encoding (terms for
  fields, annotations for monomorphic-recursion call contexts);
* :mod:`repro.flow.alias` — stack-aware alias queries (Section 7.5).
"""

from repro.flow.alias import StackAwareAliasAnalysis
from repro.flow.analysis import FlowAnalysis
from repro.flow.dual import DualFlowAnalysis
from repro.flow.lang import parse_flow_program

__all__ = [
    "DualFlowAnalysis",
    "FlowAnalysis",
    "StackAwareAliasAnalysis",
    "parse_flow_program",
]
