"""The Section 7.1 source language, with a concrete syntax.

Grammar (the paper's language plus ``@Name`` label annotations, so
programs can name the labels their flow queries mention)::

    program := def*
    def     := IDENT '(' (IDENT ':' type)? ')' ':' type '=' expr ';'
    type    := fun
    fun     := pair ('->' pair)?
    pair    := atomt ('*' atomt)*          # left-associative
    atomt   := 'int' | IDENT | '(' type ')'
    expr    := postfix
    postfix := atom (('.' INT) | ('@' IDENT))*
    atom    := INT | IDENT
             | 'if' expr 'then' expr 'else' expr
             | 'let' IDENT '=' expr 'in' expr
             | IDENT '^' IDENT '(' expr ')'   # instantiation f^i(e)
             | '(' expr ',' expr ')'          # pair
             | '(' expr ')'

The Fig 11 program reads::

    pair(y : int) : b = (1@A, y@Y)@P;
    main() : int = (pair^i(2@B)).2@V;
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class FlowSyntaxError(ValueError):
    """Raised when a flow-language program fails to parse."""


# -- types -------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    pass


@dataclass(frozen=True)
class TInt(Type):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class TVar(Type):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TPair(Type):
    left: Type
    right: Type

    def __str__(self) -> str:
        return f"({self.left} * {self.right})"


@dataclass(frozen=True)
class TFun(Type):
    arg: Type
    result: Type

    def __str__(self) -> str:
        return f"({self.arg} -> {self.result})"


# -- expressions ----------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Lit(Expr):
    value: int


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class Pair(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Proj(Expr):
    operand: Expr
    index: int  # 1 or 2


@dataclass(frozen=True)
class Inst(Expr):
    function: str
    site: str
    arg: Expr


@dataclass(frozen=True)
class Cond(Expr):
    """``if e0 then e1 else e2`` — branches join by subtyping.

    The paper omits conditionals "only to simplify the presentation";
    they are what makes terminating recursion expressible.
    """

    cond: Expr
    then: Expr
    orelse: Expr


@dataclass(frozen=True)
class Let(Expr):
    """``let x = e1 in e2`` — a local binding (plain sharing, no
    generalization: only named functions are polymorphic)."""

    name: str
    value: Expr
    body: Expr


@dataclass(frozen=True)
class Labeled(Expr):
    """``e @ Name`` — names the top-level label of ``e`` for queries."""

    operand: Expr
    label: str


@dataclass(frozen=True)
class Def:
    name: str
    param: str | None
    param_type: Type | None
    return_type: Type
    body: Expr


@dataclass(frozen=True)
class FlowProgram:
    defs: tuple[Def, ...]

    def function(self, name: str) -> Def:
        for d in self.defs:
            if d.name == name:
                return d
        raise KeyError(name)


# -- parser -----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<int>\d+)"
    r"|(?P<arrow>->)"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_']*)"
    r"|(?P<punct>[()*,.:;=^@]))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    text = re.sub(r"(#|//)[^\n]*", "", text)
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise FlowSyntaxError(f"cannot tokenize near {remainder[:20]!r}")
        pos = match.end()
        for kind in ("int", "arrow", "ident", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> tuple[str, str] | None:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def at(self, kind: str, value: str | None = None, offset: int = 0) -> bool:
        token = self.peek(offset)
        return (
            token is not None
            and token[0] == kind
            and (value is None or token[1] == value)
        )

    def take(self, kind: str | None = None, value: str | None = None) -> str:
        token = self.peek()
        if token is None:
            raise FlowSyntaxError("unexpected end of program")
        if (kind is not None and token[0] != kind) or (
            value is not None and token[1] != value
        ):
            raise FlowSyntaxError(f"unexpected token {token[1]!r}")
        self.pos += 1
        return token[1]

    # -- types ------------------------------------------------------------------

    def parse_type(self) -> Type:
        left = self._parse_pair_type()
        if self.at("arrow"):
            self.take("arrow")
            return TFun(left, self._parse_pair_type())
        return left

    def _parse_pair_type(self) -> Type:
        left = self._parse_atom_type()
        while self.at("punct", "*"):
            self.take("punct", "*")
            left = TPair(left, self._parse_atom_type())
        return left

    def _parse_atom_type(self) -> Type:
        if self.at("punct", "("):
            self.take("punct", "(")
            inner = self.parse_type()
            self.take("punct", ")")
            return inner
        name = self.take("ident")
        if name == "int":
            return TInt()
        return TVar(name)

    # -- expressions --------------------------------------------------------------

    def parse_expr(self) -> Expr:
        expr = self._parse_atom()
        while True:
            if self.at("punct", "."):
                self.take("punct", ".")
                index = int(self.take("int"))
                if index not in (1, 2):
                    raise FlowSyntaxError(f"projection index {index} must be 1 or 2")
                expr = Proj(expr, index)
            elif self.at("punct", "@"):
                self.take("punct", "@")
                expr = Labeled(expr, self.take("ident"))
            else:
                return expr

    def _parse_atom(self) -> Expr:
        if self.at("int"):
            return Lit(int(self.take("int")))
        if self.at("ident", "if"):
            self.take("ident", "if")
            cond = self.parse_expr()
            self.take("ident", "then")
            then = self.parse_expr()
            self.take("ident", "else")
            orelse = self.parse_expr()
            return Cond(cond, then, orelse)
        if self.at("ident", "let"):
            self.take("ident", "let")
            name = self.take("ident")
            if name in ("if", "then", "else", "let", "in"):
                raise FlowSyntaxError(f"{name!r} is a reserved word")
            self.take("punct", "=")
            value = self.parse_expr()
            self.take("ident", "in")
            body = self.parse_expr()
            return Let(name, value, body)
        if self.at("ident"):
            name = self.take("ident")
            if name in ("then", "else", "in"):
                raise FlowSyntaxError(f"{name!r} is a reserved word")
            if self.at("punct", "^"):
                self.take("punct", "^")
                site = self.take("ident")
                self.take("punct", "(")
                arg = self.parse_expr()
                self.take("punct", ")")
                return Inst(name, site, arg)
            return Var(name)
        if self.at("punct", "("):
            self.take("punct", "(")
            first = self.parse_expr()
            if self.at("punct", ","):
                self.take("punct", ",")
                second = self.parse_expr()
                self.take("punct", ")")
                return Pair(first, second)
            self.take("punct", ")")
            return first
        token = self.peek()
        raise FlowSyntaxError(f"unexpected token {token[1]!r}" if token else "eof")

    # -- definitions --------------------------------------------------------------

    def parse_program(self) -> FlowProgram:
        defs: list[Def] = []
        while self.peek() is not None:
            defs.append(self._parse_def())
        names = [d.name for d in defs]
        if len(set(names)) != len(names):
            raise FlowSyntaxError("duplicate function definition")
        return FlowProgram(tuple(defs))

    def _parse_def(self) -> Def:
        name = self.take("ident")
        self.take("punct", "(")
        param: str | None = None
        param_type: Type | None = None
        if not self.at("punct", ")"):
            param = self.take("ident")
            self.take("punct", ":")
            param_type = self.parse_type()
        self.take("punct", ")")
        self.take("punct", ":")
        return_type = self.parse_type()
        self.take("punct", "=")
        body = self.parse_expr()
        self.take("punct", ";")
        return Def(name, param, param_type, return_type, body)


def parse_flow_program(source: str) -> FlowProgram:
    """Parse a Section 7 flow-language program."""
    return _Parser(_tokenize(source)).parse_program()
