"""User-facing flow analysis: parse, infer, solve, query (Section 7.3).

Flow queries use the fresh-constant technique of Section 7.3: a marker
constant is added below each named label, and ``A`` flows to ``B`` iff
``A``'s marker appears in ``B``'s least solution along a word the
bracket machine accepts (all type-constructor uses matched).  With
``pn=True`` partially matched function paths are also admitted (PN
reachability): values may flow into a function that never returns, and
callee-created values may escape to any caller.
"""

from __future__ import annotations

from repro.core.budget import Budget
from repro.core.queries import Reachability, least_solution_terms
from repro.core.terms import Constructed, Constructor, Variable
from repro.flow import lang
from repro.flow.infer import GeneratedSystem, generate


class FlowAnalysis:
    """Context- and field-sensitive label flow for a Section 7 program."""

    def __init__(
        self,
        program: lang.FlowProgram | str,
        pn: bool = False,
        compiled: bool = False,
        budget: Budget | None = None,
        track_redundant: bool = False,
    ):
        if isinstance(program, str):
            program = lang.parse_flow_program(program)
        self.program = program
        self.pn = pn
        self.system: GeneratedSystem = generate(
            program,
            pn=pn,
            compiled=compiled,
            budget=budget,
            track_redundant=track_redundant,
        )
        self._markers: dict[str, Constructed] = {}
        marker_batch: list[tuple] = []
        for name, label in self.system.labels.items():
            marker = Constructor(f"mk_{name}", 0)()
            self._markers[name] = marker
            marker_batch.append((marker, label))
        self.system.solver.add_many(marker_batch)
        self._reachability = Reachability(
            self.system.solver, through_constructors=pn
        )

    # -- introspection -----------------------------------------------------------

    @property
    def labels(self) -> dict[str, Variable]:
        """The program's ``@Name`` labels, by name."""
        return dict(self.system.labels)

    def label_var(self, name: str) -> Variable:
        if name not in self.system.labels:
            raise KeyError(f"no label named {name!r} in the program")
        return self.system.labels[name]

    @property
    def machine_states(self) -> int:
        """Size of the generated Fig 10 bracket machine."""
        return self.system.machine.n_states

    @property
    def monoid_size(self) -> int:
        return self.system.algebra.monoid.size()

    # -- queries --------------------------------------------------------------------

    def flows(self, source: str, target: str) -> bool:
        """Does label ``source`` flow to label ``target``?

        True iff the source's marker constant reaches the target label
        with an annotation whose words the bracket machine accepts
        (matched type-constructor uses; function call matching is exact
        via the ``o_i`` constructors)."""
        if source not in self._markers:
            raise KeyError(f"no label named {source!r} in the program")
        marker = self._markers[source]
        target_var = self.label_var(target)
        return self._reachability.reaches(target_var, marker)

    def flow_annotations(self, source: str, target: str):
        """All annotation classes with which ``source`` reaches ``target``."""
        marker = self._markers[source]
        return self._reachability.annotations_of(self.label_var(target), marker)

    def flows_assuming(
        self,
        assumptions: "list[tuple[str, str]]",
        source: str,
        target: str,
    ) -> bool:
        """What-if query: does ``source`` flow to ``target`` under extra flows?

        Each ``(a, b)`` assumption is speculatively added as a direct
        subtyping edge ``a ⊆ b`` under a solver :meth:`mark`; online
        solving layers the consequences onto the already-solved system,
        the query is answered, and :meth:`rollback` retracts everything
        — no re-solve of the base program (Section 5's separate-analysis
        motivation, served incrementally)."""
        for name in (source, target):
            if name not in self._markers:
                raise KeyError(f"no label named {name!r} in the program")
        solver = self.system.solver
        solver.mark()
        try:
            for a_src, a_dst in assumptions:
                solver.add(self.label_var(a_src), self.label_var(a_dst))
            speculative = Reachability(solver, through_constructors=self.pn)
            return speculative.reaches(
                self.label_var(target), self._markers[source]
            )
        finally:
            solver.rollback()

    def flow_pairs(self) -> set[tuple[str, str]]:
        """All ``(source, target)`` label pairs with flow — the full matrix."""
        pairs: set[tuple[str, str]] = set()
        for source in self._markers:
            for target in self.system.labels:
                if source != target and self.flows(source, target):
                    pairs.add((source, target))
        return pairs

    def terms_of(self, label: str, max_depth: int = 3):
        """Least-solution terms of a label (annotations are monoid elements)."""
        return least_solution_terms(
            self.system.solver, self.label_var(label), max_depth=max_depth
        )
