"""Type rules and constraint generation (Figures 8 and 9).

Inference runs in two phases:

* **Phase A** walks the program, assigns labeled types, and collects
  constraints *symbolically* — annotations are recorded as bracket
  descriptors ``("[", i, component-shape)`` / ``("]", i, shape)``, and
  call-site wrapping as ``("wrap"/"unwrap", site, ...)``.  It also
  collects every pair shape in the program.
* **Phase B** builds the Fig 10 bracket machine from the collected
  shapes (nesting restricted by the type structure, depth bounded by
  the largest type — the paper's observation that makes the matching
  language regular), then emits everything into a solver.

The generated constraints follow Section 7 exactly:

* every labeled pair type ``σ1 ×^L σ2`` is *well-labeled* (Pair WL):
  ``tl(σi) ⊆^{[i_τ} L`` and ``L ⊆^{]i_τ} tl(σi)``;
* subtyping steps are **non-structural** — only top-level labels are
  related (Sub); component flow is discovered during resolution when
  brackets cancel;
* a call ``f^i(e)`` wraps the argument, ``o_i(tl(σ_e)) ⊆ tl(σ_param)``
  (Neg/Inst), and unwraps the result, ``o_i^{-1}(tl(σ_ret)) ⊆ tl(σ_use)``
  (Pos) — the CFL-reachability encoding of polymorphic recursion;
* a function body flows to its declared result by a top-level
  subtyping step; a type-variable result is *bound* to the body's
  labeled type (how the Fig 11 example acquires
  ``β = int^A ×^P int^Y``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.annotations import CompiledMonoidAlgebra, MonoidAlgebra
from repro.core.budget import Budget
from repro.core.solver import Solver
from repro.core.terms import Constructor, Variable
from repro.dfa.automaton import DFA
from repro.dfa.gallery import bracket_machine, close_bracket, open_bracket
from repro.flow import lang
from repro.flow.types import (
    LabeledType,
    LFun,
    LInt,
    LPair,
    LVar,
    Shape,
    Spreader,
    shape_depth,
    tl,
)


class FlowTypeError(TypeError):
    """Raised on type errors in the flow language (e.g. projecting an int)."""


BracketKind = tuple[int, Shape]  # (position, component shape)


@dataclass
class SymbolicConstraint:
    """A constraint collected during Phase A."""

    kind: str  # "sub" | "wrap" | "unwrap"
    lhs: Variable
    rhs: Variable
    bracket: tuple[str, int, Shape] | None = None  # for "sub"
    site: str | None = None  # for "wrap"/"unwrap"


@dataclass
class InferenceResult:
    """Everything Phase A produces."""

    constraints: list[SymbolicConstraint] = field(default_factory=list)
    labels: dict[str, Variable] = field(default_factory=dict)
    signatures: dict[str, tuple[LabeledType | None, LabeledType]] = field(
        default_factory=dict
    )
    pair_shapes: set[Shape] = field(default_factory=set)
    sites: dict[str, str] = field(default_factory=dict)  # site -> callee


class Inferencer:
    """Phase A: the Fig 8/9 rules, collecting symbolic constraints."""

    def __init__(self, program: lang.FlowProgram):
        self.program = program
        self.spreader = Spreader()
        self.result = InferenceResult()
        self.tvar_bindings: dict[str, LabeledType] = {}

    # -- helpers -----------------------------------------------------------------

    def _register(self, sigma: LabeledType) -> LabeledType:
        """Emit well-labeledness constraints for every pair node (Pair WL)."""
        if isinstance(sigma, LPair):
            self._register(sigma.left)
            self._register(sigma.right)
            shape = sigma.shape
            self.result.pair_shapes.add(shape)
            for index, component in ((1, sigma.left), (2, sigma.right)):
                kind = ("[", index, component.shape)
                self.result.constraints.append(
                    SymbolicConstraint("sub", tl(component), tl(sigma), kind)
                )
                kind_close = ("]", index, component.shape)
                self.result.constraints.append(
                    SymbolicConstraint("sub", tl(sigma), tl(component), kind_close)
                )
        elif isinstance(sigma, LFun):
            self._register(sigma.arg)
            self._register(sigma.result)
        return sigma

    def _spread(self, tau: lang.Type) -> LabeledType:
        return self._register(self.spreader.spread(tau))

    def _spread_shape(self, shape: Shape) -> LabeledType:
        return self._register(self.spreader.spread_shape(shape))

    def _resolve(self, sigma: LabeledType) -> LabeledType:
        """Chase type-variable bindings (identity on structure otherwise)."""
        seen: set[str] = set()
        while isinstance(sigma, LVar) and sigma.name in self.tvar_bindings:
            if sigma.name in seen:
                raise FlowTypeError(f"cyclic type variable {sigma.name!r}")
            seen.add(sigma.name)
            sigma = self.tvar_bindings[sigma.name]
        return sigma

    def _sub(self, src: LabeledType | Variable, dst: LabeledType | Variable) -> None:
        lhs = src if isinstance(src, Variable) else tl(src)
        rhs = dst if isinstance(dst, Variable) else tl(dst)
        self.result.constraints.append(SymbolicConstraint("sub", lhs, rhs))

    # -- inference -----------------------------------------------------------------

    def run(self) -> InferenceResult:
        # Pre-register every signature so recursion and forward calls work.
        for definition in self.program.defs:
            param_sigma = (
                self._spread(definition.param_type)
                if definition.param_type is not None
                else None
            )
            ret_sigma = self._spread(definition.return_type)
            self.result.signatures[definition.name] = (param_sigma, ret_sigma)
        for definition in self.program.defs:
            self._check_def(definition)
        return self.result

    def _check_def(self, definition: lang.Def) -> None:
        param_sigma, ret_sigma = self.result.signatures[definition.name]
        env: dict[str, LabeledType] = {}
        if definition.param is not None:
            assert param_sigma is not None
            env[definition.param] = param_sigma
        body_sigma = self._infer(definition.body, env)
        declared = definition.return_type
        if isinstance(declared, lang.TVar) and declared.name not in self.tvar_bindings:
            # Non-structural subtyping binds the variable to the body's
            # structure (Fig 11: β = int^A ×^P int^Y).
            self.tvar_bindings[declared.name] = body_sigma
        self._sub(body_sigma, ret_sigma)

    def _infer(self, expr: lang.Expr, env: dict[str, LabeledType]) -> LabeledType:
        if isinstance(expr, lang.Lit):
            return LInt(self.spreader.fresh_label())
        if isinstance(expr, lang.Var):
            if expr.name not in env:
                raise FlowTypeError(f"unbound variable {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, lang.Labeled):
            sigma = self._infer(expr.operand, env)
            self.result.labels[expr.label] = tl(sigma)
            return sigma
        if isinstance(expr, lang.Pair):
            left = self._infer(expr.left, env)
            right = self._infer(expr.right, env)
            pair = LPair(self.spreader.fresh_label(), left, right)
            return self._register(pair)
        if isinstance(expr, lang.Proj):
            operand = self._resolve(self._infer(expr.operand, env))
            if not isinstance(operand, LPair):
                raise FlowTypeError(
                    f"projection .{expr.index} applied to non-pair type"
                )
            component = operand.left if expr.index == 1 else operand.right
            # Fig 8's (Proj) returns σ_i itself; we interpose one (Sub)
            # step into a fresh spread so the projection's own label is
            # distinct from the component's (labels denote program
            # points, not type nodes).  Precision is unchanged — (Sub)
            # relates top-level labels and WL covers the components.
            result = self._spread_shape(component.shape)
            self._sub(component, result)
            return result
        if isinstance(expr, lang.Let):
            bound = self._infer(expr.value, env)
            inner_env = dict(env)
            inner_env[expr.name] = bound
            return self._infer(expr.body, inner_env)
        if isinstance(expr, lang.Cond):
            self._infer(expr.cond, env)  # condition value does not flow
            then_sigma = self._resolve(self._infer(expr.then, env))
            else_sigma = self._resolve(self._infer(expr.orelse, env))
            if then_sigma.shape != else_sigma.shape:
                raise FlowTypeError(
                    "conditional branches have different type shapes: "
                    f"{then_sigma.shape} vs {else_sigma.shape}"
                )
            # Join by two (Sub) steps into a fresh spread (non-structural
            # subtyping handles the rest through WL brackets).
            result = self._spread_shape(then_sigma.shape)
            self._sub(then_sigma, result)
            self._sub(else_sigma, result)
            return result
        if isinstance(expr, lang.Inst):
            return self._infer_inst(expr, env)
        raise TypeError(f"unknown expression {expr!r}")

    def _infer_inst(self, expr: lang.Inst, env: dict[str, LabeledType]) -> LabeledType:
        if expr.function not in self.result.signatures:
            raise FlowTypeError(f"call to undefined function {expr.function!r}")
        known_callee = self.result.sites.get(expr.site)
        if known_callee is not None and known_callee != expr.function:
            raise FlowTypeError(f"instantiation site {expr.site!r} reused")
        self.result.sites[expr.site] = expr.function
        param_sigma, ret_sigma = self.result.signatures[expr.function]
        if param_sigma is None:
            raise FlowTypeError(f"{expr.function!r} takes no argument")
        arg_sigma = self._infer(expr.arg, env)
        self.result.constraints.append(
            SymbolicConstraint(
                "wrap", tl(arg_sigma), tl(param_sigma), site=expr.site
            )
        )
        resolved = self._resolve(ret_sigma)
        use_sigma = self._spread_shape(resolved.shape)
        self.result.constraints.append(
            SymbolicConstraint(
                "unwrap", tl(ret_sigma), tl(use_sigma), site=expr.site
            )
        )
        return use_sigma


# -- Phase B: machine construction and emission ------------------------------------


def build_type_bracket_machine(pair_shapes: set[Shape]) -> DFA:
    """The Fig 10 machine for the program's pair types.

    Bracket kinds are ``(position, component shape)``; nesting follows
    the type structure: an open bracket ``[_j^{τ'}`` may sit above
    ``[_i^{τ}`` only when ``τ'`` is a pair shape whose ``i``-th
    component is ``τ`` (i.e. the wrapped value's type matches).  Depth
    is the largest pair-nesting depth, which bounds the stack.
    """
    kinds: set[BracketKind] = set()
    for shape in pair_shapes:
        kinds.add((1, shape[1]))
        kinds.add((2, shape[2]))
    if not kinds:
        return DFA.from_partial(1, [], 0, [0], [])
    depth = max(shape_depth(shape) for shape in pair_shapes)

    def can_nest(top: BracketKind | None, new: BracketKind) -> bool:
        if top is None:
            return True
        inner_index, inner_shape = top
        _new_index, new_shape = new
        return (
            new_shape[0] == "pair" and new_shape[inner_index] == inner_shape
        )

    return bracket_machine(sorted(kinds, key=repr), depth, can_nest)


@dataclass
class GeneratedSystem:
    """Phase B output: a solver loaded with the program's constraints.

    ``algebra`` is a :class:`MonoidAlgebra` by default, or a
    :class:`~repro.core.annotations.CompiledMonoidAlgebra` when the
    system was generated in compiled mode.
    """

    solver: Solver
    algebra: Any
    machine: DFA
    labels: dict[str, Variable]
    sites: dict[str, str]
    constraints: int = 0


def generate(
    program: lang.FlowProgram,
    pn: bool = False,
    compiled: bool = False,
    budget: Budget | None = None,
    track_redundant: bool = False,
) -> GeneratedSystem:
    """Run both phases: infer, build the machine, emit constraints.

    Flow queries are pure reachability (no witness extraction), so the
    solver skips provenance recording.  ``compiled=True`` specializes
    the bracket machine into table-indexed annotations first.
    """
    inference = Inferencer(program).run()
    machine = build_type_bracket_machine(inference.pair_shapes)
    algebra = CompiledMonoidAlgebra(machine) if compiled else MonoidAlgebra(machine)
    solver = Solver(
        algebra,
        pn_projections=pn,
        record_reasons=False,
        budget=budget,
        track_redundant=track_redundant,
    )
    batch: list[tuple] = []
    for constraint in inference.constraints:
        if constraint.kind == "sub":
            if constraint.bracket is None:
                annotation = algebra.identity
            else:
                direction, index, shape = constraint.bracket
                kind = (index, shape)
                symbol = (
                    open_bracket(kind) if direction == "[" else close_bracket(kind)
                )
                annotation = algebra.symbol(symbol)
            batch.append((constraint.lhs, constraint.rhs, annotation))
        elif constraint.kind == "wrap":
            wrapper = Constructor(f"o_{constraint.site}", 1)
            batch.append((wrapper(constraint.lhs), constraint.rhs))
        elif constraint.kind == "unwrap":
            wrapper = Constructor(f"o_{constraint.site}", 1)
            batch.append((wrapper.proj(1, constraint.lhs), constraint.rhs))
        else:  # pragma: no cover - defensive
            raise AssertionError(constraint.kind)
    solver.add_many(batch)
    return GeneratedSystem(
        solver=solver,
        algebra=algebra,
        machine=machine,
        labels=dict(inference.labels),
        sites=dict(inference.sites),
        constraints=len(inference.constraints),
    )
