"""Labeled types and the ``spread`` operator (Section 7.1).

A labeled type ``σ`` mirrors an unlabeled type ``τ`` with a set
variable (a *label*) at every node; ``spread`` introduces fresh labels
throughout, and ``tl(σ)`` is the top-level label.  *Shapes* are the
underlying unlabeled structures, used to name the ``τ`` subscripts of
bracket annotations (``[_τ^i``), so they must be hashable and
canonical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.terms import Variable
from repro.flow.lang import TFun, TInt, TPair, TVar, Type

# Shapes: canonical hashable forms of unlabeled types.
Shape = tuple


def shape_of(tau: Type) -> Shape:
    if isinstance(tau, TInt):
        return ("int",)
    if isinstance(tau, TVar):
        return ("var", tau.name)
    if isinstance(tau, TPair):
        return ("pair", shape_of(tau.left), shape_of(tau.right))
    if isinstance(tau, TFun):
        return ("fun", shape_of(tau.arg), shape_of(tau.result))
    raise TypeError(f"unknown type {tau!r}")


def shape_depth(shape: Shape) -> int:
    """Pair-nesting depth — bounds the bracket machine's stack."""
    if shape[0] == "pair":
        return 1 + max(shape_depth(shape[1]), shape_depth(shape[2]))
    if shape[0] == "fun":
        return max(shape_depth(shape[1]), shape_depth(shape[2]))
    return 0


def shape_str(shape: Shape) -> str:
    if shape[0] == "int":
        return "int"
    if shape[0] == "var":
        return shape[1]
    if shape[0] == "pair":
        return f"({shape_str(shape[1])}*{shape_str(shape[2])})"
    return f"({shape_str(shape[1])}->{shape_str(shape[2])})"


# -- labeled types --------------------------------------------------------------


@dataclass(frozen=True)
class LabeledType:
    label: Variable  # tl(σ)

    @property
    def shape(self) -> Shape:
        raise NotImplementedError


@dataclass(frozen=True)
class LInt(LabeledType):
    @property
    def shape(self) -> Shape:
        return ("int",)


@dataclass(frozen=True)
class LVar(LabeledType):
    name: str = ""

    @property
    def shape(self) -> Shape:
        return ("var", self.name)


@dataclass(frozen=True)
class LPair(LabeledType):
    left: "LabeledType" = None  # type: ignore[assignment]
    right: "LabeledType" = None  # type: ignore[assignment]

    @property
    def shape(self) -> Shape:
        return ("pair", self.left.shape, self.right.shape)


@dataclass(frozen=True)
class LFun(LabeledType):
    arg: "LabeledType" = None  # type: ignore[assignment]
    result: "LabeledType" = None  # type: ignore[assignment]

    @property
    def shape(self) -> Shape:
        return ("fun", self.arg.shape, self.result.shape)


def tl(sigma: LabeledType) -> Variable:
    """The top-level label of a labeled type."""
    return sigma.label


class Spreader:
    """Generates spread labeled types with globally fresh labels."""

    def __init__(self, prefix: str = "L"):
        self._counter = itertools.count()
        self._prefix = prefix

    def fresh_label(self, hint: str = "") -> Variable:
        return Variable(f"{self._prefix}{hint}{next(self._counter)}")

    def spread(self, tau: Type) -> LabeledType:
        """``spread(τ)``: attach a fresh label to every type node."""
        if isinstance(tau, TInt):
            return LInt(self.fresh_label())
        if isinstance(tau, TVar):
            return LVar(self.fresh_label(), tau.name)
        if isinstance(tau, TPair):
            return LPair(
                self.fresh_label(), self.spread(tau.left), self.spread(tau.right)
            )
        if isinstance(tau, TFun):
            return LFun(
                self.fresh_label(), self.spread(tau.arg), self.spread(tau.result)
            )
        raise TypeError(f"unknown type {tau!r}")

    def spread_shape(self, shape: Shape) -> LabeledType:
        """Spread directly from a shape (used at instantiation sites)."""
        if shape[0] == "int":
            return LInt(self.fresh_label())
        if shape[0] == "var":
            return LVar(self.fresh_label(), shape[1])
        if shape[0] == "pair":
            return LPair(
                self.fresh_label(),
                self.spread_shape(shape[1]),
                self.spread_shape(shape[2]),
            )
        if shape[0] == "fun":
            return LFun(
                self.fresh_label(),
                self.spread_shape(shape[1]),
                self.spread_shape(shape[2]),
            )
        raise TypeError(f"unknown shape {shape!r}")
