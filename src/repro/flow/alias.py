"""Stack-aware alias queries (Section 7.5).

In the context-sensitive points-to encoding, points-to sets are *terms*:
a location ``a`` passed to ``foo`` at call site 1 appears in the formal
parameter's solution as ``o_1(a)``, not as bare ``a``.  Intersecting the
term solutions of two pointers therefore compares locations *per calling
context* — the paper's example::

    foo<1>(&a, &b);   =>   X = { o_1(a), o_2(b) }
    foo<2>(&b, &a);   =>   Y = { o_2(a), o_1(b) }

has an empty term intersection (no aliasing inside ``foo``), while the
naive flat points-to sets ``pt(x) = pt(y) = {a, b}`` spuriously report
may-alias.  The constraint solutions already encode this — stack-aware
queries come "with almost no cost".
"""

from __future__ import annotations

from repro.core.queries import Reachability, least_solution_terms
from repro.core.solver import Solver
from repro.core.terms import Constructed, Constructor, GroundTerm, Variable


class StackAwareAliasAnalysis:
    """A small context-sensitive points-to analysis over locations.

    Build the program model with :meth:`points_to` (direct address-of
    assignments), :meth:`copy` (pointer copies), and :meth:`call`
    (parameter passing at a numbered call site, which wraps the actuals
    in the site's ``o_i`` constructor); then compare pointers with
    :meth:`may_alias` (stack-aware) or :meth:`may_alias_naive`.
    """

    def __init__(self) -> None:
        self.solver = Solver()
        self._locations: dict[str, Constructed] = {}
        self._pointers: dict[str, Variable] = {}
        self._sites: dict[int, Constructor] = {}

    # -- model construction ------------------------------------------------------

    def location(self, name: str) -> Constructed:
        """An abstract memory location (a constant)."""
        existing = self._locations.get(name)
        if existing is None:
            existing = Constructor(f"loc_{name}", 0)()
            self._locations[name] = existing
        return existing

    def pointer(self, name: str) -> Variable:
        """A pointer variable's points-to set variable."""
        existing = self._pointers.get(name)
        if existing is None:
            existing = Variable(f"pt_{name}")
            self._pointers[name] = existing
        return existing

    def points_to(self, pointer: str, location: str) -> None:
        """``pointer = &location`` (no call context)."""
        self.solver.add(self.location(location), self.pointer(pointer))

    def copy(self, source: str, target: str) -> None:
        """``target = source`` between pointers."""
        self.solver.add(self.pointer(source), self.pointer(target))

    def _site(self, site: int) -> Constructor:
        existing = self._sites.get(site)
        if existing is None:
            existing = Constructor(f"o{site}", 1)
            self._sites[site] = existing
        return existing

    def call(self, site: int, bindings: dict[str, str]) -> None:
        """Pass pointers at a call site: formal ← ``o_site(actual)``.

        ``bindings`` maps formal parameter pointers to actual pointers;
        use :meth:`call_addresses` when actuals are ``&location``
        expressions (the paper's example)."""
        wrapper = self._site(site)
        for formal, actual in bindings.items():
            self.solver.add(wrapper(self.pointer(actual)), self.pointer(formal))

    def call_addresses(self, site: int, bindings: dict[str, str]) -> None:
        """Pass ``&location`` actuals at a call site (``foo(&a, &b)``)."""
        wrapper = self._site(site)
        for formal, location in bindings.items():
            self.solver.add(wrapper(self.location(location)), self.pointer(formal))

    # -- queries --------------------------------------------------------------------

    def terms(self, pointer: str, max_depth: int = 6) -> set[GroundTerm]:
        """The pointer's points-to set as context-encoding terms."""
        return least_solution_terms(
            self.solver, self.pointer(pointer), max_depth=max_depth
        )

    def flat_points_to(self, pointer: str, max_depth: int = 6) -> set[str]:
        """Context-insensitive points-to set (term leaves, names only)."""
        leaves: set[str] = set()

        def walk(term: GroundTerm) -> None:
            if not term.children:
                leaves.add(term.constructor.name.removeprefix("loc_"))
            for child in term.children:
                walk(child)

        for term in self.terms(pointer, max_depth):
            walk(term)
        return leaves

    def may_alias(self, left: str, right: str, max_depth: int = 6) -> bool:
        """Stack-aware may-alias: do the *term* solutions intersect?"""
        left_terms = {t.erase() for t in self.terms(left, max_depth)}
        right_terms = {t.erase() for t in self.terms(right, max_depth)}
        return bool(left_terms & right_terms)

    def may_alias_naive(self, left: str, right: str, max_depth: int = 6) -> bool:
        """Flat may-alias: do the location sets intersect?"""
        return bool(
            self.flat_points_to(left, max_depth)
            & self.flat_points_to(right, max_depth)
        )
