"""The dual analysis (Section 7.6): swap the two matching languages.

Where the primal analysis models call/return matching with ``o_i``
constructors (context-free, exact — polymorphic recursion) and
type-constructor matching with bracket annotations (regular), the dual
does the opposite:

* pairs become a genuine binary ``pair(·, ·)`` constructor with
  ``pair^{-i}`` projections — field matching is context-free and exact
  (and, as the paper notes, an n-ary constructor discovers component
  edges in one step where unary encodings need two);
* calls and returns become bracket annotations ``[_i`` / ``]_i`` over a
  *regular* approximation of the call language: call sites whose caller
  and callee lie in the same call-graph SCC get the empty annotation —
  exactly "treating mutually recursive functions monomorphically" —
  and the rest form a bounded-depth bracket language whose nesting
  follows the SCC condensation DAG.

The Fig 11 system in this encoding is::

    B ⊆^{[i} Y     pair(A, Y) ⊆ H     H ⊆^{]i} T     pair^{-2}(T) ⊆ V
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.annotations import MonoidAlgebra
from repro.core.queries import Reachability
from repro.core.solver import Solver
from repro.core.terms import Constructed, Constructor, Variable, VariableFactory
from repro.dfa.automaton import DFA
from repro.dfa.gallery import bracket_machine, close_bracket, open_bracket
from repro.flow import lang


def _call_graph_sccs(program: lang.FlowProgram) -> dict[str, int]:
    """Tarjan SCC indices of the call graph (callee edges via Inst nodes)."""
    edges: dict[str, set[str]] = {d.name: set() for d in program.defs}

    def collect(owner: str, expr: lang.Expr) -> None:
        if isinstance(expr, lang.Inst):
            edges[owner].add(expr.function)
            collect(owner, expr.arg)
        elif isinstance(expr, lang.Pair):
            collect(owner, expr.left)
            collect(owner, expr.right)
        elif isinstance(expr, (lang.Proj, lang.Labeled)):
            collect(owner, expr.operand)

    for definition in program.defs:
        collect(definition.name, definition.body)

    index_counter = [0]
    stack: list[str] = []
    on_stack: set[str] = set()
    indices: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    scc_of: dict[str, int] = {}
    scc_counter = [0]

    def strongconnect(node: str) -> None:
        indices[node] = lowlinks[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in edges.get(node, ()):
            if succ not in indices:
                strongconnect(succ)
                lowlinks[node] = min(lowlinks[node], lowlinks[succ])
            elif succ in on_stack:
                lowlinks[node] = min(lowlinks[node], indices[succ])
        if lowlinks[node] == indices[node]:
            scc = scc_counter[0]
            scc_counter[0] += 1
            while True:
                member = stack.pop()
                on_stack.discard(member)
                scc_of[member] = scc
                if member == node:
                    break

    for name in edges:
        if name not in indices:
            strongconnect(name)
    return scc_of


@dataclass
class _SiteInfo:
    name: str
    caller: str
    callee: str
    recursive: bool  # same SCC: annotated with ε (monomorphic)


class DualFlowAnalysis:
    """Field-exact, context-regular label flow (the Section 7.6 dual)."""

    def __init__(self, program: lang.FlowProgram | str, pn: bool = False):
        if isinstance(program, str):
            program = lang.parse_flow_program(program)
        self.program = program
        #: With pn=True, flow queries also accept *prefix* words — open
        #: call brackets with no matching return, i.e. values sitting in
        #: a pending call frame (the PN analog for this encoding).
        self.pn = pn
        self._fresh = VariableFactory("d")
        self.pair = Constructor("pair", 2)
        self._collect_sites()
        self.machine = self._build_call_machine()
        self.algebra = MonoidAlgebra(self.machine)
        self.solver = Solver(self.algebra)
        self.labels: dict[str, Variable] = {}
        self._markers: dict[str, Constructed] = {}
        self._encode()
        for name, label in self.labels.items():
            marker = Constructor(f"mk_{name}", 0)()
            self._markers[name] = marker
            self.solver.add(marker, label)
        # Field matching is exact via constructors, so flow queries must
        # not descend into them — a marker inside pair(...) at H has not
        # flowed to H itself.
        self._reachability = Reachability(self.solver, through_constructors=False)

    # -- call-language machine -------------------------------------------------------

    def _collect_sites(self) -> None:
        scc_of = _call_graph_sccs(self.program)
        self.sites: dict[str, _SiteInfo] = {}

        def walk(owner: str, expr: lang.Expr) -> None:
            if isinstance(expr, lang.Inst):
                recursive = scc_of.get(owner) == scc_of.get(expr.function)
                existing = self.sites.get(expr.site)
                if existing is not None and (
                    existing.caller != owner or existing.callee != expr.function
                ):
                    raise lang.FlowSyntaxError(
                        f"instantiation site {expr.site!r} reused"
                    )
                self.sites[expr.site] = _SiteInfo(
                    expr.site, owner, expr.function, recursive
                )
                walk(owner, expr.arg)
            elif isinstance(expr, lang.Pair):
                walk(owner, expr.left)
                walk(owner, expr.right)
            elif isinstance(expr, (lang.Proj, lang.Labeled)):
                walk(owner, expr.operand)
            elif isinstance(expr, lang.Cond):
                walk(owner, expr.cond)
                walk(owner, expr.then)
                walk(owner, expr.orelse)
            elif isinstance(expr, lang.Let):
                walk(owner, expr.value)
                walk(owner, expr.body)

        for definition in self.program.defs:
            walk(definition.name, definition.body)

    def _build_call_machine(self) -> DFA:
        kinds = sorted(
            site.name for site in self.sites.values() if not site.recursive
        )
        if not kinds:
            return DFA.from_partial(1, [], 0, [0], [])
        # Depth: the longest chain of non-recursive call sites, bounded
        # by the number of functions (the condensation DAG's height).
        depth = max(1, len(self.program.defs))

        def can_nest(top: str | None, new: str) -> bool:
            if top is None:
                # The empty stack is the *source label's* ambient
                # context, which is unknown — any site may open first.
                # Matched words are balanced relative to that context.
                return True
            return self.sites[top].callee == self.sites[new].caller

        return bracket_machine(kinds, depth, can_nest)

    # -- constraint generation ----------------------------------------------------------

    def _annotation(self, site: str, direction: str):
        info = self.sites[site]
        if info.recursive:
            return self.algebra.identity
        symbol = open_bracket if direction == "[" else close_bracket
        return self.algebra.symbol(symbol(site))

    def _encode(self) -> None:
        signatures: dict[str, tuple[Variable | None, Variable]] = {}
        for definition in self.program.defs:
            param_var = (
                self._fresh.fresh(f"{definition.name}.param")
                if definition.param is not None
                else None
            )
            ret_var = self._fresh.fresh(f"{definition.name}.ret")
            signatures[definition.name] = (param_var, ret_var)
        for definition in self.program.defs:
            param_var, ret_var = signatures[definition.name]
            env: dict[str, Variable] = {}
            if definition.param is not None:
                assert param_var is not None
                env[definition.param] = param_var
            body_var = self._infer(definition.body, env, signatures)
            self.solver.add(body_var, ret_var)

    def _infer(
        self,
        expr: lang.Expr,
        env: dict[str, Variable],
        signatures: dict[str, tuple[Variable | None, Variable]],
    ) -> Variable:
        if isinstance(expr, lang.Lit):
            return self._fresh.fresh("lit")
        if isinstance(expr, lang.Var):
            if expr.name not in env:
                raise lang.FlowSyntaxError(f"unbound variable {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, lang.Labeled):
            var = self._infer(expr.operand, env, signatures)
            self.labels[expr.label] = var
            return var
        if isinstance(expr, lang.Pair):
            left = self._infer(expr.left, env, signatures)
            right = self._infer(expr.right, env, signatures)
            result = self._fresh.fresh("pair")
            self.solver.add(self.pair(left, right), result)
            return result
        if isinstance(expr, lang.Proj):
            operand = self._infer(expr.operand, env, signatures)
            result = self._fresh.fresh(f"proj{expr.index}")
            self.solver.add(self.pair.proj(expr.index, operand), result)
            return result
        if isinstance(expr, lang.Let):
            bound = self._infer(expr.value, env, signatures)
            inner_env = dict(env)
            inner_env[expr.name] = bound
            return self._infer(expr.body, inner_env, signatures)
        if isinstance(expr, lang.Cond):
            self._infer(expr.cond, env, signatures)
            then_var = self._infer(expr.then, env, signatures)
            else_var = self._infer(expr.orelse, env, signatures)
            result = self._fresh.fresh("cond")
            self.solver.add(then_var, result)
            self.solver.add(else_var, result)
            return result
        if isinstance(expr, lang.Inst):
            param_var, ret_var = signatures[expr.function]
            if param_var is None:
                raise lang.FlowSyntaxError(f"{expr.function!r} takes no argument")
            arg_var = self._infer(expr.arg, env, signatures)
            self.solver.add(arg_var, param_var, self._annotation(expr.site, "["))
            result = self._fresh.fresh("ret")
            self.solver.add(ret_var, result, self._annotation(expr.site, "]"))
            return result
        raise TypeError(f"unknown expression {expr!r}")

    # -- queries --------------------------------------------------------------------------

    def flows(self, source: str, target: str) -> bool:
        """Does label ``source`` flow to label ``target``?

        Matched by default; with ``pn=True`` words that are prefixes of
        matched words (values inside pending calls) are also accepted.
        """
        if source not in self._markers or target not in self.labels:
            raise KeyError(f"unknown label {source!r} or {target!r}")
        accepting = None
        if self.pn:
            monoid = self.algebra.monoid

            def accepting(annotation):
                return monoid.is_prefix_live(annotation)

        return self._reachability.reaches(
            self.labels[target], self._markers[source], accepting
        )

    def flow_pairs(self) -> set[tuple[str, str]]:
        return {
            (source, target)
            for source in self._markers
            for target in self.labels
            if source != target and self.flows(source, target)
        }
