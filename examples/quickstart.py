#!/usr/bin/env python3
"""Quickstart: regularly annotated set constraints from first principles.

Walks through the paper's Example 2.4 over the 1-bit machine ``M_1bit``
(Fig 1): constructors, annotated inclusion constraints, the solved
form, and entailment queries.

Run:  python examples/quickstart.py
"""

from repro import AnnotatedConstraintSystem
from repro.dfa.gallery import one_bit_machine
from repro.dfa.monoid import TransitionMonoid


def main() -> None:
    machine = one_bit_machine()
    monoid = TransitionMonoid(machine)
    print("The 1-bit machine M_1bit (Fig 1):")
    print(f"  states: {machine.n_states}, alphabet: {sorted(machine.alphabet)}")
    print(f"  representative functions F_M = {monoid.size()} "
          "(f_eps, f_g, f_k — gens and kills are idempotent)")
    print()

    # --- Example 2.4 -------------------------------------------------------
    system = AnnotatedConstraintSystem(machine)
    c = system.constant("c")
    o = system.constructor("o", 1)
    W, X, Y, Z = (system.var(name) for name in "WXYZ")

    print("Adding the Example 2.4 constraints:")
    print("  c ⊆^g W      o(W) ⊆^g X      X ⊆ o(Y)      o(Y) ⊆ Z")
    system.add(c, W, "g")
    system.add(o(W), X, "g")
    system.add(X, o(Y))
    system.add(o(Y), Z)

    f_g = system.algebra.symbol("g")
    print()
    print("Solved form highlights:")
    print(f"  W ⊆^f_g Y derived by decomposition: "
          f"{(Y, f_g) in set(system.solver.edges_from(W))}")
    print(f"  c ⊆^f_g Y derived by transitivity (f_g ∘ f_g = f_g): "
          f"{system.solver.has_lower(Y, c, f_g)}")

    print()
    print("Entailment queries (Section 3.2):")
    print(f"  does c reach Y along a word of L(M)?  {system.reaches(Y, c)}")
    print(f"  does o(c) reach Z (through the constructor)?  "
          f"{system.reaches(Z, c)}")

    # --- a negative case ----------------------------------------------------
    system2 = AnnotatedConstraintSystem(machine)
    c2 = system2.constant("c")
    A, B = system2.var("A"), system2.var("B")
    system2.add(c2, A, "g")
    system2.add(A, B, "k")  # the kill cancels the gen
    print()
    print("After a kill the fact no longer holds:")
    print(f"  c ⊆^g A ⊆^k B — does c reach B acceptingly?  "
          f"{system2.reaches(B, c2)}")

    # --- witnesses ----------------------------------------------------------
    ann = system.annotations_of(Y, c).pop()
    print()
    print(f"A witness for c in Y: annotation {ann!r}")
    print("Done.")


if __name__ == "__main__":
    main()
