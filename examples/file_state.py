#!/usr/bin/env python3
"""Parametric annotations: tracking per-descriptor file state (§6.4).

The open/close property (Fig 5) is written once with a parameter ``x``;
substitution environments instantiate it lazily per descriptor.  This
example reproduces the Fig 6 walkthrough — ``fd2`` remains open at the
end of the program, ``fd1`` does not — and then finds a real
double-close bug.

Run:  python examples/file_state.py
"""

from repro.cfg import build_cfg
from repro.modelcheck import AnnotatedChecker, file_state_property

FIG6_PROGRAM = """
int main() {
  int fd1 = open("file1", 0);
  int fd2 = open("file2", 0);
  close(fd1);
  process_data(fd2);
  return 0;
}
"""

DOUBLE_CLOSE = """
int main() {
  int fd1 = open("file1", 0);
  int fd2 = open("file2", 0);
  close(fd1);
  if (error_path) {
    close(fd1);      // double close!
  }
  close(fd2);
  return 0;
}
"""


def state_names(prop):
    machine = prop.machine
    return {
        machine.start: "Closed",
        machine.run(["open"]): "Opened",
        machine.run(["close"]): "Error",
    }


def main() -> None:
    prop = file_state_property()
    names = state_names(prop)

    print("--- Fig 6: which descriptors are left open? ---")
    cfg = build_cfg(FIG6_PROGRAM)
    checker = AnnotatedChecker(cfg, prop)
    result = checker.check()
    print(f"violations: {len(result.violations)} (expected none)")
    states = checker.states_at(cfg.main.exit)
    for key, state_set in sorted(states.items(), key=lambda kv: sorted(kv[0])):
        if not key:
            continue  # the residual (non-parametric) slot
        label = ", ".join(f"{param}={value}" for param, value in sorted(key))
        pretty = {names.get(s, s) for s in state_set}
        print(f"  [{label}] possible states at exit: {sorted(pretty)}")

    print()
    print("--- double-close detection, per descriptor ---")
    cfg2 = build_cfg(DOUBLE_CLOSE)
    result2 = AnnotatedChecker(cfg2, prop).check()
    print(f"violations found: {result2.has_violation}")
    flagged = {
        violation.instantiation
        for violation in result2.violations
        if violation.instantiation
    }
    for instantiation in sorted(flagged):
        bindings = ", ".join(f"{p}={v}" for p, v in instantiation)
        print(f"  descriptor in error state: [{bindings}]")
    assert (("x", "fd1"),) in flagged
    assert (("x", "fd2"),) not in flagged
    print("fd1 is flagged, fd2 is not — instantiations stay separate.")


if __name__ == "__main__":
    main()
