#!/usr/bin/env python3
"""Type-based flow analysis with polymorphic recursion + non-structural
subtyping (Section 7) — the paper's open-problem application.

Reproduces the Fig 11/12 walkthrough, demonstrates context sensitivity
across instantiation sites, and runs the dual analysis (§7.6) on the
same program for comparison.

Run:  python examples/flow_analysis.py
"""

from repro.flow import DualFlowAnalysis, FlowAnalysis

FIG11 = """
pair(y : int) : b = (1@A, y@Y)@P;
main() : int = (pair^i(2@B)).2@V;
"""

TWO_CALLS = """
id(y : int) : int = y@Y;
main() : int = (id^i(1@A)@RA, id^j(2@B)@RB)@P;
"""

RECURSIVE = """
wrap(y : int) : int * int = (y@Here, (wrap^r(y)).1@Deep)@P;
main() : int = (wrap^c(5@S)).1@R;
"""


def show(title: str, analysis: FlowAnalysis | DualFlowAnalysis, pairs) -> None:
    print(f"--- {title} ---")
    for source, target, expected in pairs:
        got = analysis.flows(source, target)
        marker = "OK " if got == expected else "BUG"
        print(f"  [{marker}] {source} -> {target}: {got} (expected {expected})")
        assert got == expected
    print()


def main() -> None:
    fig11 = FlowAnalysis(FIG11)
    print(f"Fig 10 bracket machine: {fig11.machine_states} states, "
          f"monoid {fig11.monoid_size}")
    show(
        "Fig 11/12: non-structural subtyping",
        fig11,
        [
            ("B", "V", True),   # the paper's derived fact B ⊆ V
            ("A", "V", False),  # field sensitivity: .2 rejects comp 1
            ("B", "Y", False),  # matched-only: B sits in a pending call
        ],
    )

    show(
        "PN queries (partially matched paths)",
        FlowAnalysis(FIG11, pn=True),
        [
            ("B", "Y", True),   # B visible inside the unreturned call
            ("A", "V", False),  # field sensitivity is kept
        ],
    )

    show(
        "context sensitivity across instantiation sites",
        FlowAnalysis(TWO_CALLS),
        [
            ("A", "RA", True),
            ("B", "RB", True),
            ("A", "RB", False),  # no cross-site smearing
            ("B", "RA", False),
        ],
    )

    show(
        "polymorphic recursion (terminates, stays precise)",
        FlowAnalysis(RECURSIVE),
        [
            ("S", "R", True),    # y returned through the 2nd component
        ],
    )

    show(
        "the dual analysis (§7.6) agrees on matched flow",
        DualFlowAnalysis(FIG11),
        [
            ("B", "V", True),
            ("A", "V", False),
        ],
    )
    print("All flow facts reproduced.")


if __name__ == "__main__":
    main()
