#!/usr/bin/env python3
"""Checking several regular properties in one pass (§2.2's product).

"Because regular languages are closed under products, it is sufficient
to deal only with a single machine representing the product of all the
regular reachability properties" — this example combines the privilege
property with the chroot-jail property, checks a program once, and
attributes each error to its component property.

Run:  python examples/combined_properties.py
"""

from repro.cfg import build_cfg
from repro.dfa.monoid import TransitionMonoid
from repro.modelcheck import (
    AnnotatedChecker,
    chroot_property,
    combine_properties,
    component_errors,
    simple_privilege_property,
)

PROGRAM = """
int main() {
  seteuid(0);                // acquire privilege
  chroot("/var/jail");       // enter the jail ... but no chdir("/")
  execl("/bin/sh", "sh", 0); // violates BOTH properties at once
  return 0;
}
"""


def main() -> None:
    privilege = simple_privilege_property()
    jail = chroot_property()
    combo = combine_properties([privilege, jail])

    print("component machines: "
          f"{privilege.machine.n_states} and {jail.machine.n_states} states")
    print(f"product machine: {combo.machine.n_states} states, "
          f"{len(combo.machine.alphabet)} joint symbols, "
          f"|F_M| = {TransitionMonoid(combo.machine).size()}")
    print()

    cfg = build_cfg(PROGRAM)
    checker = AnnotatedChecker(cfg, combo)
    result = checker.check()
    print(f"one solve over the product: "
          f"{'VIOLATION' if result.has_violation else 'clean'}")

    blamed: set[str] = set()
    for state in checker.states_at(cfg.main.exit):
        blamed.update(component_errors(combo, state))
    print(f"properties in error at program exit: {sorted(blamed)}")
    assert blamed == {"simple-privilege", "chroot-jail"}

    print()
    print("--- fixing only the jail half ---")
    fixed = PROGRAM.replace('chroot("/var/jail");',
                            'chroot("/var/jail"); chdir("/");')
    cfg2 = build_cfg(fixed)
    checker2 = AnnotatedChecker(cfg2, combo)
    assert checker2.check().has_violation
    blamed2: set[str] = set()
    for state in checker2.states_at(cfg2.main.exit):
        blamed2.update(component_errors(combo, state))
    print(f"properties still in error: {sorted(blamed2)}")
    assert blamed2 == {"simple-privilege"}


if __name__ == "__main__":
    main()
