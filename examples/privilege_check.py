#!/usr/bin/env python3
"""Pushdown model checking for Unix privilege bugs (Section 6).

Checks the paper's Section 6.3 example — a setuid program that forgets
to drop privileges on one branch before exec — with both engines:

* the annotated-constraint checker (the paper's contribution), and
* the MOPS-style PDA/post* baseline,

prints the violation with its witness path, then checks the corrected
program.

Run:  python examples/privilege_check.py
"""

from repro.cfg import build_cfg
from repro.modelcheck import AnnotatedChecker, simple_privilege_property
from repro.mops import MopsChecker

VULNERABLE = """
void audit() { log_event(1); }
int main() {
  seteuid(0);             // acquire root privilege
  if (interactive) {
    seteuid(getuid());    // drop privilege ... on this branch only
  } else {
    audit();              // oops: still privileged here
  }
  execl("/bin/sh", "sh", 0);  // root shell for the user
  return 0;
}
"""

FIXED = VULNERABLE.replace("audit();", "audit(); seteuid(getuid());")


def check(source: str, title: str) -> None:
    print(f"--- {title} ---")
    cfg = build_cfg(source)
    prop = simple_privilege_property()

    annotated = AnnotatedChecker(cfg, prop)
    result = annotated.check(traces=True)
    mops = MopsChecker(cfg, prop).check()

    print(f"annotated-constraint checker: "
          f"{'VIOLATION' if result.has_violation else 'clean'}")
    print(f"MOPS-style PDA baseline:      "
          f"{'VIOLATION' if mops.has_violation else 'clean'}")
    assert result.has_violation == mops.has_violation

    if result.has_violation:
        violation = min(result.violations, key=lambda v: v.node.id)
        print(f"first error point: {violation.node.describe()}")
        print("witness path:")
        for step in violation.trace:
            print(f"    {step.describe()}")
    print()


def main() -> None:
    check(VULNERABLE, "vulnerable program (Section 6.3)")
    check(FIXED, "fixed program (privilege dropped on both branches)")


if __name__ == "__main__":
    main()
