#!/usr/bin/env python3
"""Stack-aware alias queries (Section 7.5).

Points-to sets computed with annotated constraints are *terms* whose
constructor spines encode the call stack.  Intersecting term solutions
instead of flat location sets refutes spurious aliases — including the
classic malloc-wrapper precision loss — at essentially no extra cost.

Run:  python examples/stack_aware_alias.py
"""

from repro.flow import StackAwareAliasAnalysis


def paper_example() -> None:
    print("--- the §7.5 example ---")
    print("void main() { foo<1>(&a, &b); foo<2>(&b, &a); }")
    analysis = StackAwareAliasAnalysis()
    analysis.call_addresses(1, {"x": "a", "y": "b"})
    analysis.call_addresses(2, {"x": "b", "y": "a"})

    print(f"flat pt(x) = {sorted(analysis.flat_points_to('x'))}")
    print(f"flat pt(y) = {sorted(analysis.flat_points_to('y'))}")
    print(f"naive may-alias(x, y):       {analysis.may_alias_naive('x', 'y')}")
    print("term solutions:")
    print(f"  X = {{ {', '.join(sorted(str(t) for t in analysis.terms('x')))} }}")
    print(f"  Y = {{ {', '.join(sorted(str(t) for t in analysis.terms('y')))} }}")
    print(f"stack-aware may-alias(x, y): {analysis.may_alias('x', 'y')}")
    assert analysis.may_alias_naive("x", "y")
    assert not analysis.may_alias("x", "y")
    print()


def malloc_wrapper() -> None:
    print("--- the malloc-wrapper problem ---")
    print("xalloc() wraps one allocation site; p and q call it separately.")
    analysis = StackAwareAliasAnalysis()
    analysis.points_to("xalloc_ret", "heap@xalloc")
    analysis.call(1, {"p": "xalloc_ret"})
    analysis.call(2, {"q": "xalloc_ret"})
    print(f"naive may-alias(p, q):       {analysis.may_alias_naive('p', 'q')}")
    print(f"stack-aware may-alias(p, q): {analysis.may_alias('p', 'q')}")
    assert analysis.may_alias_naive("p", "q")
    assert not analysis.may_alias("p", "q")
    print("the call stack disambiguates the shared allocation site.")
    print()


def genuine_alias() -> None:
    print("--- a genuine alias is still reported ---")
    analysis = StackAwareAliasAnalysis()
    analysis.call_addresses(1, {"x": "shared", "y": "shared"})
    print(f"stack-aware may-alias(x, y): {analysis.may_alias('x', 'y')}")
    assert analysis.may_alias("x", "y")


def main() -> None:
    paper_example()
    malloc_wrapper()
    genuine_alias()


if __name__ == "__main__":
    main()
